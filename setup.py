"""Legacy setup shim: the environment has no `wheel`, so the PEP 517
editable path fails; `pip install -e . --no-use-pep517` uses this file."""

from setuptools import setup

setup()
