"""Metric instruments: counters, gauges, fixed-bucket histograms.

The paper reports operational numbers — per-component computation time,
online throughput (§IV-D4) — that a deployed system would expose through a
metrics endpoint.  This module is the dependency-free core of such an
endpoint: three instrument kinds behind one thread-safe registry whose
:meth:`MetricsRegistry.snapshot` returns a plain dict suitable for
printing, JSON-encoding, or asserting on in tests.

Two registry flavours share one surface:

* :class:`MetricsRegistry` — the live implementation;
* :class:`NullRegistry` — the off-by-default no-op.  Every accessor
  returns a shared null instrument whose methods do nothing, so
  instrumented hot paths cost one attribute call when observability is
  disabled (the component-time bench pins the overhead at <= 5 % even
  with a *live* registry).
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "RegistryLike",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency buckets in seconds: microseconds through tens of seconds,
#: roughly log-spaced — tick ingest sits at the bottom, a full worker
#: round-trip over a big batch at the top.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Last-written value plus the maximum ever observed.

    Queue depths are the main consumer: the instantaneous value tells the
    operator where the system is now, the max tells them how close to the
    bound the backlog ever got.
    """

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._max:
                self._max = float(value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value, "max": self._max}


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max.

    Bucket ``i`` stores observations in ``(bounds[i-1], bounds[i]]``; one
    implicit overflow bucket catches everything above ``bounds[-1]``.
    The Prometheus exporter re-accumulates these per-interval counts into
    the cumulative ``_bucket{le=...}`` form at render time.
    """

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left on the sorted bounds finds the first bound >= value,
        # i.e. the (bounds[i-1], bounds[i]] interval bucket; values above
        # bounds[-1] land on the overflow index.  C-level search keeps the
        # hot span-exit path cheap.
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> "_Timer":
        """Context manager recording the elapsed wall-clock seconds."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q``-th percentile.

        Linear interpolation inside the bucket the rank falls in, with the
        recorded min / max tightening the first and overflow buckets.  The
        estimate is exact at bucket boundaries and conservative (never
        below the bucket's lower bound) elsewhere — the usual trade of
        fixed-bucket latency histograms.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            observed_min = self._min if self._min is not None else 0.0
            observed_max = self._max if self._max is not None else 0.0
            rank = (q / 100.0) * self._count
            cumulative = 0
            estimate = observed_max
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    if i < len(self.bounds):
                        lower = self.bounds[i - 1] if i > 0 else 0.0
                        upper = self.bounds[i]
                    else:  # overflow bucket: bounded by the observed max
                        lower = self.bounds[-1]
                        upper = observed_max
                    fraction = (rank - previous) / bucket_count
                    estimate = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                    break
            # The observed range always brackets the true value.
            return min(max(estimate, observed_min), observed_max)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self.mean,
                "min": self._min,
                "max": self._max,
                "buckets": dict(zip(
                    [f"le_{b:g}" for b in self.bounds] + ["overflow"],
                    list(self._counts),
                )),
            }


class _Timer:
    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``registry.counter("ticks_ingested").increment()`` is the whole API:
    asking twice for the same name returns the same instrument, asking for
    a name already registered as a different kind raises.
    """

    #: Distinguishes live registries from :class:`NullRegistry` without
    #: isinstance checks on the hot path.
    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = kind(name, **kwargs)
                self._metrics[name] = existing
            elif not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds=bounds)

    def instruments(self) -> Dict[str, object]:
        """Name -> live instrument, sorted by name (for exposition)."""
        with self._lock:
            return dict(sorted(self._metrics.items()))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self) -> Dict[str, object]:
        """One plain dict of every instrument's current state."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}


class _NullCounter:
    """Counter that forgets; shared by every disabled call site."""

    name = ""
    value = 0

    def increment(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class _NullGauge:
    name = ""
    value = 0.0
    max = 0.0

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, float]:
        return {"value": 0.0, "max": 0.0}


class _NullTimer:
    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _NullHistogram:
    name = ""
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0

    _timer = _NullTimer()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return self._timer

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": None, "max": None,
                "buckets": {}}


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op.

    Instrumented code never branches on whether observability is on; it
    asks the ambient registry for an instrument and uses it.  When the
    ambient registry is this one, the ask returns a singleton whose
    methods do nothing — no allocation, no locking, no dict growth.
    """

    enabled = False

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str) -> _NullCounter:
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        return self._gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> _NullHistogram:
        return self._histogram

    def instruments(self) -> Dict[str, object]:
        return {}

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> Dict[str, object]:
        return {}


RegistryLike = Union[MetricsRegistry, NullRegistry]
