"""Observability layer: metrics, tracing spans, exposition, HTTP endpoint.

The paper attributes ~70 % of DBCatcher's detection time to correlation
computation (§IV-D4); keeping that claim honest in a living codebase needs
continuous measurement of the pipeline's own hot paths.  This package is
that measurement layer, dependency-free and off by default:

* :mod:`~repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  (with percentile estimates) behind :class:`MetricsRegistry`, plus the
  no-op :class:`NullRegistry`;
* :mod:`~repro.obs.spans` — nestable, thread-safe tracing spans recording
  wall and per-thread CPU seconds, with a profiling-hook API;
* :mod:`~repro.obs.runtime` — the ambient process-wide runtime every
  instrumented call site asks for instruments (``obs.span(...)``,
  ``obs.counter(...)``); disabled means shared no-op objects;
* :mod:`~repro.obs.export` — Prometheus text and JSON exposition;
* :mod:`~repro.obs.http` — an optional stdlib HTTP snapshot endpoint.

Quick start::

    from repro.obs import runtime as obs
    from repro.obs import to_prometheus

    registry = obs.enable()            # instrumentation now records
    ...                                # run detection
    print(to_prometheus(registry))     # scrape-ready exposition
    obs.disable()

``python -m repro obs`` wraps exactly this flow around a detection run.
"""

from repro.obs.export import metric_name, snapshot, to_json, to_prometheus
from repro.obs.http import ObsServer
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import SpanRecord, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "ObsServer",
    "SpanRecord",
    "Tracer",
    "metric_name",
    "snapshot",
    "to_json",
    "to_prometheus",
]
