"""Exposition: render a registry as Prometheus text or a JSON snapshot.

Two formats cover the two consumers a deployed DBCatcher has:

* :func:`to_prometheus` — the Prometheus text format (v0.0.4), ready for
  a scrape target or ``curl | promtool check metrics``.  Counters map to
  ``counter`` families, gauges to a pair of ``gauge`` families (value and
  high-water mark), histograms to the standard cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.
* :func:`to_json` / :func:`snapshot` — the registry's plain-dict snapshot
  (JSON-encoded or raw), for dashboards, tests and artifact files.

Metric names such as ``span.detector.correlate.wall_seconds`` are
sanitized to Prometheus' ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar (dots and
other separators become underscores) and prefixed with ``repro_``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from repro.obs.metrics import Counter, Gauge, Histogram, RegistryLike

__all__ = ["metric_name", "to_prometheus", "to_json", "snapshot"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize one registry name into a legal Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _render_histogram(name: str, histogram: Histogram) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    snap = histogram.snapshot()
    counts = list(snap["buckets"].values())
    for bound, count in zip(histogram.bounds, counts):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
    total = snap["count"]
    lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
    lines.append(f"{name}_sum {_format_value(snap['sum'])}")
    lines.append(f"{name}_count {total}")
    return lines


def to_prometheus(registry: RegistryLike, prefix: str = "repro") -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines: List[str] = []
    for raw_name, instrument in registry.instruments().items():
        name = metric_name(raw_name, prefix=prefix)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {instrument.value}")
        elif isinstance(instrument, Gauge):
            snap = instrument.snapshot()
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(snap['value'])}")
            lines.append(f"# TYPE {name}_max gauge")
            lines.append(f"{name}_max {_format_value(snap['max'])}")
        elif isinstance(instrument, Histogram):
            lines.extend(_render_histogram(name, instrument))
        else:  # pragma: no cover - registries only hold the three kinds
            continue
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: RegistryLike) -> Dict[str, object]:
    """The registry's plain-dict snapshot (alias for ``registry.snapshot``)."""
    return registry.snapshot()


def to_json(registry: RegistryLike, indent: int = 2) -> str:
    """JSON-encode the registry snapshot (stable key order)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)
