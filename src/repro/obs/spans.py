"""Lightweight tracing spans: nestable, thread-safe, wall + CPU time.

A *span* wraps one pipeline stage — ``span("detector.correlate")`` around
the correlation-measurement module, ``span("kcd.profile")`` around one
profile computation — and on exit records the stage's wall-clock and
per-thread CPU seconds into the ambient registry:

* histogram ``span.<name>.wall_seconds`` — latency distribution;
* histogram ``span.<name>.cpu_seconds`` — CPU burn distribution.

Spans nest: each thread keeps its own stack, so a span opened inside
another records its parent and depth without any cross-thread locking.
Finished spans are also handed to any registered *hooks* — the profiling
hook API — as plain :class:`SpanRecord` values, which is how ad-hoc
profilers, flame-dump scripts or tests tap the stream without touching
the instrumented code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.metrics import RegistryLike

__all__ = ["SpanRecord", "Tracer", "NULL_SPAN"]

#: Histogram buckets for span durations: spans cover stages from a single
#: KCD profile (microseconds) up to a whole dispatch round (seconds).
SPAN_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

SpanHook = Callable[["SpanRecord"], None]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as delivered to profiling hooks."""

    name: str
    wall_seconds: float
    cpu_seconds: float
    parent: Optional[str]
    depth: int


class _Span:
    """Context manager for one span instance (cheap, slotted)."""

    __slots__ = ("_tracer", "name", "_wall_started", "_cpu_started")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self.name = name
        self._wall_started = 0.0
        self._cpu_started = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack().append(self.name)
        self._wall_started = time.perf_counter()
        self._cpu_started = time.thread_time()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - self._wall_started
        cpu = time.thread_time() - self._cpu_started
        stack = self._tracer._stack()
        stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                wall_seconds=wall,
                cpu_seconds=cpu,
                parent=stack[-1] if stack else None,
                depth=len(stack),
            )
        )


class _NullSpan:
    """Shared no-op span for the disabled runtime."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Turns ``span(name)`` calls into histogram observations and hooks.

    Parameters
    ----------
    registry:
        Where span histograms live; a :class:`~repro.obs.metrics.NullRegistry`
        makes every observation a no-op (but spans still nest, so hooks
        remain usable against a null registry).
    hooks:
        Initial profiling hooks; more can be added with :meth:`add_hook`.
    """

    def __init__(
        self,
        registry: RegistryLike,
        hooks: Sequence[SpanHook] = (),
    ):
        self.registry = registry
        self._hooks: List[SpanHook] = list(hooks)
        self._local = threading.local()
        #: Span-name -> (registry, wall histogram, cpu histogram) cache.
        #: Span exits are the instrumentation hot path (one per KCD matrix
        #: per KPI per round); caching skips the f-string build and the
        #: registry's locked name lookup on every exit.  Entries are
        #: validated against the current registry identity, so a runtime
        #: enable()/disable()/scoped() swap naturally invalidates them.
        self._span_instruments: dict = {}

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str) -> _Span:
        """Open a span; use as ``with tracer.span("kcd.profile"):``."""
        return _Span(self, name)

    def current(self) -> Optional[str]:
        """Name of the calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add_hook(self, hook: SpanHook) -> None:
        self._hooks.append(hook)

    def remove_hook(self, hook: SpanHook) -> None:
        self._hooks.remove(hook)

    def _finish(self, record: SpanRecord) -> None:
        registry = self.registry
        cached = self._span_instruments.get(record.name)
        if cached is None or cached[0] is not registry:
            cached = (
                registry,
                registry.histogram(
                    f"span.{record.name}.wall_seconds", bounds=SPAN_BUCKETS
                ),
                registry.histogram(
                    f"span.{record.name}.cpu_seconds", bounds=SPAN_BUCKETS
                ),
            )
            self._span_instruments[record.name] = cached
        cached[1].observe(record.wall_seconds)
        cached[2].observe(record.cpu_seconds)
        for hook in self._hooks:
            hook(record)
