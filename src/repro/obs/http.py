"""Optional HTTP snapshot endpoint for a live service run.

A tiny stdlib server (one daemon thread, ``http.server``) exposing the
ambient registry of a running process:

* ``GET /metrics``       — Prometheus text exposition;
* ``GET /metrics.json``  — JSON snapshot;
* ``GET /healthz``       — liveness probe (``ok``).

``repro serve --obs-port 9178`` starts one next to the detection service;
``port=0`` picks a free ephemeral port (reported via :attr:`ObsServer.port`),
which is what the tests use.  The server reads shared thread-safe
instruments and never blocks the detection path.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.export import to_json, to_prometheus
from repro.obs.metrics import RegistryLike

__all__ = ["ObsServer"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsServer:
    """Serve a registry's exposition formats over HTTP.

    Parameters
    ----------
    registry:
        The registry to expose; usually the service's shared one.
    host, port:
        Bind address.  ``port=0`` (default) picks a free ephemeral port.
    """

    def __init__(
        self,
        registry: RegistryLike,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        obs_registry = registry

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = to_prometheus(obs_registry).encode("utf-8")
                    content_type = PROMETHEUS_CONTENT_TYPE
                elif path == "/metrics.json":
                    body = to_json(obs_registry).encode("utf-8")
                    content_type = "application/json"
                elif path == "/healthz":
                    body = b"ok\n"
                    content_type = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                pass  # scrapers would flood stderr otherwise

        self.registry = registry
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
