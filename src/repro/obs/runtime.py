"""The ambient observability runtime: one process-wide registry + tracer.

Instrumented code throughout the library asks *this module* for its
instruments::

    from repro.obs import runtime as obs

    obs.counter("kcd.matrix_calls").increment()
    with obs.span("detector.correlate"):
        ...

By default the ambient registry is a shared
:class:`~repro.obs.metrics.NullRegistry` and ``span`` returns a shared
no-op context manager, so an uninstrumented-feeling cost — one module
attribute load and one method call per site — is all a disabled process
pays (the §IV-D4 bench pins the *enabled* overhead at <= 5 % too).

:func:`enable` swaps in a live registry; :func:`scoped` does so
temporarily (what the ``repro obs`` CLI command and the chaos runner
use); :func:`disable` restores the null runtime.  Worker processes
inherit the parent's state at fork time — enabling after the pool is up
only instruments the parent, which is why the serial pool is the
recommended profile for deep traces.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Sequence

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    RegistryLike,
)
from repro.obs.spans import NULL_SPAN, SpanHook, Tracer

__all__ = [
    "enable",
    "disable",
    "scoped",
    "is_enabled",
    "get_registry",
    "get_tracer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "add_span_hook",
    "remove_span_hook",
]

_NULL_REGISTRY = NullRegistry()
_registry: RegistryLike = _NULL_REGISTRY
_tracer = Tracer(_NULL_REGISTRY)
_lock = threading.Lock()


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch the ambient runtime to a live registry and return it.

    Hooks registered on the tracer survive the swap; metrics recorded so
    far do not move (they belong to whichever registry was live).
    """
    global _registry
    with _lock:
        if registry is None:
            registry = (
                _registry if isinstance(_registry, MetricsRegistry)
                else MetricsRegistry()
            )
        _registry = registry
        _tracer.registry = registry
        return registry


def disable() -> None:
    """Restore the no-op runtime (the default state)."""
    global _registry
    with _lock:
        _registry = _NULL_REGISTRY
        _tracer.registry = _NULL_REGISTRY


@contextlib.contextmanager
def scoped(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily enable observability; restores the prior state on exit."""
    global _registry
    previous = _registry
    live = enable(registry if registry is not None else MetricsRegistry())
    try:
        yield live
    finally:
        with _lock:
            _registry = previous
            _tracer.registry = previous


def is_enabled() -> bool:
    return _registry.enabled


def get_registry() -> RegistryLike:
    return _registry


def get_tracer() -> Tracer:
    return _tracer


def counter(name: str):
    """The ambient counter ``name`` (a shared no-op when disabled)."""
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
    return _registry.histogram(name, bounds=bounds)


def span(name: str):
    """Open an ambient span; a shared no-op when disabled."""
    if not _registry.enabled:
        return NULL_SPAN
    return _tracer.span(name)


def add_span_hook(hook: SpanHook) -> None:
    """Register a profiling hook fed every finished (enabled) span."""
    _tracer.add_hook(hook)


def remove_span_hook(hook: SpanHook) -> None:
    _tracer.remove_hook(hook)
