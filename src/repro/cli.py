"""Command-line interface: ``python -m repro <command>``.

Three commands cover the library's everyday entry points without writing
code:

* ``simulate`` — build a labelled unit/dataset and save it as ``.npz``;
* ``detect``   — run DBCatcher over a saved dataset and print verdicts
  plus detection scores;
* ``info``     — show the KPI registry and the default configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.cluster.kpis import KPI_REGISTRY
from repro.core.detector import DBCatcher
from repro.eval.adjust import adjusted_confusion_from_records
from repro.eval.metrics import scores_from_confusion
from repro.eval.tables import render_table
from repro.presets import default_config

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBCatcher reproduction: simulate, detect, inspect.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="build a labelled dataset and save it as .npz"
    )
    simulate.add_argument("output", help="path of the .npz archive to write")
    simulate.add_argument(
        "--family", choices=("tencent", "sysbench", "tpcc"), default="tencent"
    )
    simulate.add_argument("--units", type=int, default=4)
    simulate.add_argument("--ticks", type=int, default=800)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--abnormal-ratio", type=float, default=0.04,
        help="target fraction of abnormal (database, tick) points",
    )

    detect = commands.add_parser(
        "detect", help="run DBCatcher over a saved dataset"
    )
    detect.add_argument("dataset", help="path of a .npz archive from `simulate`")
    detect.add_argument("--initial-window", type=int, default=20)
    detect.add_argument("--max-window", type=int, default=60)
    detect.add_argument(
        "--alpha", type=float, default=None,
        help="uniform correlation threshold (default: paper mid-range)",
    )
    detect.add_argument(
        "--quiet", action="store_true",
        help="print only the summary scores, not per-round verdicts",
    )

    commands.add_parser("info", help="show the KPI registry and defaults")
    return parser


def _cmd_simulate(args) -> int:
    from repro.datasets import build_mixed_dataset, save_dataset

    dataset = build_mixed_dataset(
        args.family,
        seed=args.seed,
        n_units=args.units,
        ticks_per_unit=args.ticks,
    )
    path = save_dataset(dataset, args.output)
    stats = dataset.statistics()
    print(f"wrote {path}")
    print(f"  {stats['n_units']} units x {args.ticks} ticks, "
          f"{stats['total_points']:,} labelled points, "
          f"{stats['abnormal_ratio']:.2%} abnormal")
    return 0


def _cmd_detect(args) -> int:
    from repro.datasets import load_dataset

    dataset = load_dataset(args.dataset)
    config = default_config(
        initial_window=args.initial_window, max_window=args.max_window
    )
    if args.alpha is not None:
        config = config.with_thresholds(
            [args.alpha] * config.n_kpis, config.theta,
            config.max_tolerance_deviations,
        )
    counts = None
    for unit in dataset.units:
        detector = DBCatcher(config, n_databases=unit.n_databases)
        for result in detector.detect_series(unit.values):
            if result.abnormal_databases and not args.quiet:
                flagged = ", ".join(
                    f"D{db + 1}" for db in result.abnormal_databases
                )
                print(f"{unit.name} ticks [{result.start}, {result.end}): "
                      f"abnormal {flagged}")
        unit_counts = adjusted_confusion_from_records(
            detector.history, unit.labels
        )
        counts = unit_counts if counts is None else counts + unit_counts
    scores = scores_from_confusion(counts)
    print(f"\nPrecision={scores.precision:.3f} Recall={scores.recall:.3f} "
          f"F-Measure={scores.f_measure:.3f} "
          f"(segment-adjusted, {counts.total} window verdicts)")
    return 0


def _cmd_info(args) -> int:
    rows = [
        [kpi.display_name, kpi.name, ", ".join(kpi.correlation_type)]
        for kpi in KPI_REGISTRY
    ]
    print(render_table(
        ["Indicator", "key", "UKPIC type"], rows,
        title="Table II KPI registry",
    ))
    config = default_config()
    print(f"\ndefault config: W={config.initial_window}, "
          f"W_M={config.max_window}, alpha={config.alphas[0]:.2f}, "
          f"theta={config.theta}, tolerance={config.max_tolerance_deviations}, "
          f"interval={config.interval_seconds}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "detect": _cmd_detect,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
