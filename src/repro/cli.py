"""Command-line interface: ``python -m repro <command>``.

Four commands cover the library's everyday entry points without writing
code:

* ``simulate`` — build a labelled unit/dataset and save it as ``.npz``;
* ``detect``   — run DBCatcher over a saved dataset and print verdicts
  plus detection scores (``--jobs N`` fans the fleet out over worker
  processes);
* ``serve``    — run the online multi-unit detection service over a saved
  dataset replay, a live simulated fleet, or — with ``--ingest-port`` —
  ticks POSTed over HTTP by external collectors, with alert sinks and a
  metrics summary;
* ``push``     — the collector side: replay a saved dataset over HTTP
  against a running ``serve --ingest-port`` endpoint, honouring
  backpressure and reconnecting across service restarts;
* ``chaos``    — replay a fault-injection scenario (preset or JSON file)
  against the service and report the detection-quality delta versus the
  clean run;
* ``obs``      — run one instrumented detection pass and emit the
  observability exposition (Prometheus text or JSON), including the
  per-stage detection latency histograms;
* ``rca``      — replay a recorded run (saved dataset or alert JSONL)
  into a ranked root-cause report: culprit databases/KPIs per incident,
  severities and lifecycle, without the live service; ``--accuracy``
  instead runs the chaos-based attribution precision harness;
* ``tune``     — learn detection thresholds over a saved labelled
  dataset with the genetic searcher (vectorized objective, ``--jobs``
  parallel fitness, ``--checkpoint``/``--resume`` for long runs);
* ``info``     — show the KPI registry, the default detector
  configuration and the service defaults.

``serve`` additionally accepts ``--obs-port`` (live ``/metrics`` endpoint
while the service runs) and ``--obs-snapshot PATH`` (write the final
exposition to a file; JSON when the path ends in ``.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.cluster.kpis import KPI_REGISTRY
from repro.eval.adjust import adjusted_confusion_from_records
from repro.eval.metrics import scores_from_confusion
from repro.eval.tables import render_table
from repro.presets import default_config

__all__ = ["main", "build_parser"]


def _add_detector_flags(parser: argparse.ArgumentParser) -> None:
    """Detector flags shared by detect / serve / chaos / obs.

    Each flag is the kebab-case spelling of the
    :class:`~repro.core.config.DBCatcherConfig` field it sets, so the CLI
    surface stays derivable from the config dataclass.
    """
    from repro.core.config import BACKENDS

    parser.add_argument("--initial-window", type=int, default=20,
                        help="initial observation window W, in ticks")
    parser.add_argument("--max-window", type=int, default=60,
                        help="expansion ceiling W_M, in ticks")
    parser.add_argument("--backend", choices=BACKENDS, default="batched",
                        help="KCD compute engine (DBCatcherConfig.backend)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DBCatcher reproduction: simulate, detect, inspect.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="build a labelled dataset and save it as .npz"
    )
    simulate.add_argument("output", help="path of the .npz archive to write")
    simulate.add_argument(
        "--family", choices=("tencent", "sysbench", "tpcc"), default="tencent"
    )
    simulate.add_argument("--units", type=int, default=4)
    simulate.add_argument("--ticks", type=int, default=800)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--abnormal-ratio", type=float, default=0.04,
        help="target fraction of abnormal (database, tick) points",
    )

    detect = commands.add_parser(
        "detect", help="run DBCatcher over a saved dataset"
    )
    detect.add_argument("dataset", help="path of a .npz archive from `simulate`")
    _add_detector_flags(detect)
    detect.add_argument(
        "--alpha", type=float, default=None,
        help="uniform correlation threshold (default: paper mid-range)",
    )
    detect.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the fleet scheduler (1 = serial; "
             "verdicts are identical either way)",
    )
    detect.add_argument(
        "--transport", choices=("pickle", "shm"), default="pickle",
        help="how tick blocks reach the workers: pickled pipe messages "
             "or shared-memory rings (verdicts are identical either way)",
    )
    detect.add_argument(
        "--quiet", action="store_true",
        help="print only the summary scores, not per-round verdicts",
    )
    detect.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable-state directory (snapshots + WAL); rerunning with "
             "the same directory resumes an interrupted pass mid-stream",
    )
    detect.add_argument(
        "--snapshot-every", type=int, default=8, metavar="ROUNDS",
        help="completed rounds per unit between snapshots "
             "(with --state-dir; default 8)",
    )

    serve = commands.add_parser(
        "serve", help="run the online multi-unit detection service"
    )
    serve.add_argument(
        "dataset", nargs="?", default=None,
        help="path of a .npz archive to replay (omit with --live)",
    )
    serve.add_argument(
        "--live", action="store_true",
        help="feed the service from live simulated units through the "
             "bypass monitor instead of a saved dataset",
    )
    serve.add_argument("--family", choices=("tencent", "sysbench", "tpcc"),
                       default="tencent", help="workload family for --live")
    serve.add_argument("--units", type=int, default=4,
                       help="fleet size for --live")
    serve.add_argument("--databases", type=int, default=5,
                       help="databases per unit for --live")
    serve.add_argument("--ticks", type=int, default=400,
                       help="ticks per unit for --live")
    serve.add_argument("--seed", type=int, default=0, help="seed for --live")
    serve.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = serial in-process)")
    serve.add_argument("--transport", choices=("pickle", "shm"),
                       default="pickle",
                       help="worker tick transport: pickled pipe messages "
                            "or shared-memory rings")
    serve.add_argument("--batch-ticks", type=int, default=32,
                       help="ticks buffered per unit per worker round-trip")
    serve.add_argument("--queue-capacity", type=int, default=256,
                       help="per-unit ingest queue bound, in ticks")
    serve.add_argument("--backpressure", choices=("block", "drop-oldest"),
                       default="block",
                       help="what a full ingest queue does to the producer")
    serve.add_argument("--sink", action="append", default=None,
                       metavar="SPEC",
                       help="alert sink: stdout, null, or jsonl:<path> "
                            "(repeatable; default stdout)")
    serve.add_argument("--max-ticks", type=int, default=None,
                       help="stop after this many ticks per unit")
    serve.add_argument("--log-ensemble", action="store_true",
                       help="run the log-frequency channel alongside "
                            "correlation detection and fuse the verdicts "
                            "(provenance-tagged alerts)")
    serve.add_argument("--log-scenario", default=None, metavar="NAME",
                       help="replay a KPI-blind log scenario preset "
                            "(error-burst, replication-lag, noisy-neighbor) "
                            "instead of a dataset; implies --log-ensemble")
    _add_detector_flags(serve)
    serve.add_argument("--history-limit", type=int, default=None,
                       metavar="ROUNDS",
                       help="completed rounds each worker detector retains "
                            "(default: the service's bounded-memory default)")
    serve.add_argument("--obs-port", type=int, default=None, metavar="PORT",
                       help="serve /metrics and /metrics.json on this port "
                            "while the service runs (0 = any free port)")
    serve.add_argument("--obs-snapshot", default=None, metavar="PATH",
                       help="write the final observability exposition here "
                            "(JSON when PATH ends in .json, else Prometheus "
                            "text)")
    serve.add_argument("--rca", action="store_true",
                       help="attach culprit attributions to alerts and "
                            "correlate them into incidents")
    serve.add_argument("--topology", default=None, metavar="PATH",
                       help="JSON topology file for incident correlation "
                            "({\"groups\": {label: [unit, ...]}}); default "
                            "one all-units group")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="durable-state directory (snapshots + WAL); "
                            "restarting with the same directory resumes "
                            "warm from the last durable round")
    serve.add_argument("--snapshot-every", type=int, default=8,
                       metavar="ROUNDS",
                       help="completed rounds per unit between snapshots "
                            "(with --state-dir; default 8)")
    serve.add_argument("--wal-sync", choices=("commit", "snapshot"),
                       default="snapshot",
                       help="WAL fsync discipline: every group-commit, or "
                            "deferred to snapshot boundaries (default)")
    serve.add_argument("--ingest-port", type=int, default=None, metavar="PORT",
                       help="accept ticks from external collectors over HTTP "
                            "on this port instead of a dataset/--live feed "
                            "(0 = any free port)")
    serve.add_argument("--ingest-capacity", type=int, default=None,
                       metavar="TICKS",
                       help="network ingest queue bound before 429 "
                            "backpressure (default: the service default)")
    serve.add_argument("--ingest-max-batch", type=int, default=None,
                       metavar="TICKS",
                       help="most ticks one POST /v1/ticks may carry "
                            "(default: the service default)")
    serve.add_argument("--ingest-timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="how long to wait for a collector handshake "
                            "before giving up (default 600)")
    serve.add_argument("--ingest-url-file", default=None, metavar="PATH",
                       help="write the bound ingestion URL to this file once "
                            "listening (lets scripts find an ephemeral port)")

    push = commands.add_parser(
        "push",
        help="replay a dataset over HTTP to a running serve --ingest-port",
    )
    push.add_argument("dataset", help="path of a .npz archive from `simulate`")
    push.add_argument("--url", default=None, metavar="URL",
                      help="ingestion endpoint (http://host:port)")
    push.add_argument("--url-file", default=None, metavar="PATH",
                      help="read the endpoint URL from this file (written by "
                           "serve --ingest-url-file); re-read before every "
                           "request, so it follows a restarted service")
    push.add_argument("--batch-ticks", type=int, default=32,
                      help="most ticks per POST (batches also flush on every "
                           "unit switch to preserve the replay interleaving)")
    push.add_argument("--max-ticks", type=int, default=None,
                      help="stop after this many ticks per unit")
    push.add_argument("--reconnects", type=int, default=8,
                      help="transport failures tolerated before giving up")
    push.add_argument("--backoff", type=float, default=0.2, metavar="SECONDS",
                      help="base reconnect backoff (doubles per attempt)")
    push.add_argument("--throttle", type=float, default=0.0, metavar="SECONDS",
                      help="sleep between batches (0 = replay at full speed)")
    push.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                      help="per-request socket timeout")
    push.add_argument("--encoding", choices=("b64", "json"), default="b64",
                      help="sample wire encoding: b64 (compact, cheap to "
                           "decode) or json (nested arrays, eyeballable); "
                           "both are bit-exact")
    push.add_argument("--no-close", action="store_true",
                      help="leave the stream open after the replay (the "
                           "serving run keeps waiting for more ticks)")

    chaos = commands.add_parser(
        "chaos",
        help="replay a fault scenario and report detection-quality deltas",
    )
    chaos.add_argument(
        "dataset", nargs="?", default=None,
        help="path of a .npz archive to replay (omit with --list)",
    )
    chaos.add_argument(
        "--scenario", default="kitchen-sink", metavar="NAME|FILE",
        help="preset scenario name or path to a JSON scenario file "
             "(default kitchen-sink)",
    )
    chaos.add_argument(
        "--list", action="store_true",
        help="list the preset scenarios and exit",
    )
    chaos.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = serial; kill drills only "
                            "fell real processes when > 0)")
    chaos.add_argument("--transport", choices=("pickle", "shm"),
                       default="pickle",
                       help="worker tick transport: pickled pipe messages "
                            "or shared-memory rings")
    chaos.add_argument("--max-ticks", type=int, default=None,
                       help="stop after this many ticks per unit")
    _add_detector_flags(chaos)

    obs_cmd = commands.add_parser(
        "obs",
        help="run one instrumented detection pass and emit the "
             "observability exposition",
    )
    obs_cmd.add_argument(
        "dataset", nargs="?", default=None,
        help="path of a .npz archive to replay (omit with --live)",
    )
    obs_cmd.add_argument(
        "--live", action="store_true",
        help="feed the run from live simulated units instead of a dataset",
    )
    obs_cmd.add_argument("--family", choices=("tencent", "sysbench", "tpcc"),
                         default="tencent", help="workload family for --live")
    obs_cmd.add_argument("--units", type=int, default=2,
                         help="fleet size for --live")
    obs_cmd.add_argument("--databases", type=int, default=5,
                         help="databases per unit for --live")
    obs_cmd.add_argument("--ticks", type=int, default=200,
                         help="ticks per unit for --live")
    obs_cmd.add_argument("--seed", type=int, default=0, help="seed for --live")
    obs_cmd.add_argument("--max-ticks", type=int, default=None,
                         help="stop after this many ticks per unit")
    _add_detector_flags(obs_cmd)
    obs_cmd.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus",
                         help="exposition format printed to stdout")
    obs_cmd.add_argument("--output", default=None, metavar="PATH",
                         help="write the exposition here instead of stdout")

    rca = commands.add_parser(
        "rca",
        help="replay a recorded run into a ranked root-cause report",
    )
    rca.add_argument(
        "input", nargs="?", default=None,
        help="a .npz dataset to replay through detection, or an alert "
             "JSONL file from `serve --sink jsonl:<path>` (omit with "
             "--accuracy)",
    )
    rca.add_argument("--topology", default=None, metavar="PATH",
                     help="JSON topology file ({\"groups\": ...}); default: "
                          "dataset workload groups / one all-units group")
    rca.add_argument("--window-ticks", type=int, default=60,
                     help="max tick gap for a verdict to join an incident")
    rca.add_argument("--resolve-after", type=int, default=60, metavar="TICKS",
                     help="quiet ticks before an open incident resolves")
    rca.add_argument("--top", type=int, default=3,
                     help="culprits listed per incident")
    rca.add_argument("--json", default=None, metavar="PATH",
                     help="also write the full report as JSON here")
    rca.add_argument("--accuracy", action="store_true",
                     help="run the chaos attribution-accuracy harness "
                          "instead of a replay (known faults, precision@k)")
    rca.add_argument("--trials", type=int, default=3,
                     help="trials per fault kind for --accuracy")
    rca.add_argument("--seed", type=int, default=0,
                     help="harness seed for --accuracy")
    _add_detector_flags(rca)
    rca.add_argument(
        "--alpha", type=float, default=None,
        help="uniform correlation threshold for dataset replay",
    )

    tune = commands.add_parser(
        "tune",
        help="learn detection thresholds over a saved labelled dataset",
    )
    tune.add_argument("dataset", help="path of a .npz archive from `simulate`")
    _add_detector_flags(tune)
    tune.add_argument("--population", type=int, default=16,
                      help="GA population size M")
    tune.add_argument("--generations", type=int, default=10,
                      help="GA generations N")
    tune.add_argument("--seed", type=int, default=0,
                      help="search seed (the result is identical for every "
                           "--jobs value and across checkpoint/resume splits)")
    tune.add_argument("--jobs", type=int, default=1,
                      help="fitness-evaluation worker processes (1 = serial)")
    tune.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="snapshot the search state to this JSON file")
    tune.add_argument("--checkpoint-every", type=int, default=1,
                      metavar="GENS",
                      help="generations between snapshots (with --checkpoint)")
    tune.add_argument("--resume", action="store_true",
                      help="continue the run saved at --checkpoint")
    tune.add_argument("--no-vectorize", action="store_true",
                      help="use the per-genome detector-replay objective "
                           "instead of the vectorized one (debugging aid)")

    commands.add_parser("info", help="show the KPI registry and defaults")
    return parser


def _cmd_simulate(args) -> int:
    from repro.datasets import build_mixed_dataset, save_dataset

    dataset = build_mixed_dataset(
        args.family,
        seed=args.seed,
        n_units=args.units,
        ticks_per_unit=args.ticks,
    )
    path = save_dataset(dataset, args.output)
    stats = dataset.statistics()
    print(f"wrote {path}")
    print(f"  {stats['n_units']} units x {args.ticks} ticks, "
          f"{stats['total_points']:,} labelled points, "
          f"{stats['abnormal_ratio']:.2%} abnormal")
    return 0


def _detect_config(args):
    import dataclasses

    config = default_config(
        initial_window=args.initial_window, max_window=args.max_window
    )
    if getattr(args, "backend", None) is not None:
        config = dataclasses.replace(config, backend=args.backend)
    if getattr(args, "alpha", None) is not None:
        config = config.with_thresholds(
            [args.alpha] * config.n_kpis, config.theta,
            config.max_tolerance_deviations,
        )
    return config


def _cmd_detect(args) -> int:
    from repro.datasets import load_dataset
    from repro.service import detect_fleet

    dataset = load_dataset(args.dataset)
    config = _detect_config(args)
    from repro.service import ServiceConfig

    report = detect_fleet(
        dataset, config=config, jobs=args.jobs,
        service_config=ServiceConfig(transport=args.transport),
        state_dir=args.state_dir, snapshot_every=args.snapshot_every,
    )
    counts = None
    for unit in dataset.units:
        for result in report.results[unit.name]:
            if result.abnormal_databases and not args.quiet:
                flagged = ", ".join(
                    f"D{db + 1}" for db in result.abnormal_databases
                )
                print(f"{unit.name} ticks [{result.start}, {result.end}): "
                      f"abnormal {flagged}")
        unit_counts = adjusted_confusion_from_records(
            report.records_for(unit.name), unit.labels
        )
        counts = unit_counts if counts is None else counts + unit_counts
    scores = scores_from_confusion(counts)
    print(f"\nPrecision={scores.precision:.3f} Recall={scores.recall:.3f} "
          f"F-Measure={scores.f_measure:.3f} "
          f"(segment-adjusted, {counts.total} window verdicts)")
    return 0


def _build_tick_source(args):
    """Shared ``serve`` / ``obs`` source selection (dataset or --live)."""
    from repro.service import MonitorSource, ReplaySource

    if args.live:
        return MonitorSource.simulate(
            n_units=args.units,
            family=args.family,
            n_databases=args.databases,
            n_ticks=args.ticks,
            seed=args.seed,
        )
    if args.dataset is not None:
        return ReplaySource(args.dataset)
    return None


def _write_exposition(registry, path) -> None:
    """Write one exposition file; JSON when the suffix says so."""
    from pathlib import Path

    from repro.obs import to_json, to_prometheus

    target = Path(path)
    text = (
        to_json(registry) if target.suffix == ".json" else to_prometheus(registry)
    )
    if not text.endswith("\n"):
        text += "\n"
    target.write_text(text)


def _cmd_serve(args) -> int:
    import contextlib

    from repro.obs import ObsServer
    from repro.obs import runtime as obs
    from repro.service import DetectionService, ServiceConfig

    source = _build_tick_source(args)
    if args.log_scenario is not None:
        if source is not None or args.ingest_port is not None:
            print("serve: --log-scenario replaces the dataset/--live/"
                  "--ingest-port feed; pass one or the other",
                  file=sys.stderr)
            return 2
        from repro.logs import log_scenario
        from repro.service import ReplaySource

        try:
            scenario = log_scenario(args.log_scenario, seed=args.seed)
        except ValueError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        source = ReplaySource(scenario.dataset, logbook=scenario.logbooks)
        print(f"log scenario {scenario.name}: {scenario.description}",
              file=sys.stderr)
    if args.ingest_port is not None and source is not None:
        print("serve: --ingest-port replaces the dataset/--live feed; "
              "pass one or the other", file=sys.stderr)
        return 2
    if args.ingest_port is None and source is None:
        print("serve needs a dataset path, --live, --log-scenario, or "
              "--ingest-port", file=sys.stderr)
        return 2
    service_kwargs = dict(
        n_workers=args.jobs,
        batch_ticks=args.batch_ticks,
        queue_capacity=args.queue_capacity,
        backpressure=args.backpressure.replace("-", "_"),
        transport=args.transport,
        log_ensemble=bool(args.log_ensemble or args.log_scenario),
    )
    if args.history_limit is not None:
        service_kwargs["history_limit"] = args.history_limit
    if args.state_dir is not None:
        service_kwargs["state_dir"] = args.state_dir
        service_kwargs["snapshot_every"] = args.snapshot_every
        service_kwargs["wal_sync"] = args.wal_sync
    if args.ingest_capacity is not None:
        service_kwargs["ingest_capacity"] = args.ingest_capacity
    if args.ingest_max_batch is not None:
        service_kwargs["ingest_max_batch"] = args.ingest_max_batch
    service_config = ServiceConfig(**service_kwargs)
    observing = args.obs_port is not None or args.obs_snapshot is not None
    scope = obs.scoped() if observing else contextlib.nullcontext()
    with scope as registry:
        server = None
        ingest_server = None
        view = None
        if args.obs_port is not None:
            server = ObsServer(registry, port=args.obs_port)
            print(f"observability endpoint: {server.url}/metrics "
                  f"(and /metrics.json)", file=sys.stderr)
        try:
            if args.ingest_port is not None:
                from repro.service.api import (
                    ApiState,
                    IngestServer,
                    NetworkSource,
                )

                source = NetworkSource(
                    capacity=service_config.ingest_capacity,
                    handshake_timeout_seconds=args.ingest_timeout,
                    retry_after_seconds=(
                        service_config.ingest_retry_after_seconds
                    ),
                )
                view = ApiState()
                ingest_server = IngestServer(
                    source,
                    view=view,
                    port=args.ingest_port,
                    state_dir=args.state_dir,
                    max_batch=service_config.ingest_max_batch,
                )
                print(f"ingestion endpoint: {ingest_server.url}/v1 "
                      f"(PUT /v1/stream, POST /v1/ticks, GET /v1/units)",
                      file=sys.stderr)
                if args.ingest_url_file is not None:
                    from pathlib import Path

                    Path(args.ingest_url_file).write_text(
                        ingest_server.url + "\n"
                    )
            topology = None
            if args.topology is not None:
                from repro.rca import Topology

                topology = Topology.load(args.topology)
            sinks = tuple(args.sink) if args.sink else ("stdout",)
            if view is not None:
                sinks = sinks + (view,)
            service = DetectionService(
                _detect_config(args),
                service_config=service_config,
                sinks=sinks,
                rca=args.rca,
                topology=topology,
                result_listener=view.record_result if view else None,
            )
            report = service.run(source, max_ticks=args.max_ticks)
        finally:
            if ingest_server is not None:
                ingest_server.close()
            if server is not None:
                server.close()
        if args.obs_snapshot is not None:
            _write_exposition(registry, args.obs_snapshot)
            print(f"wrote observability snapshot to {args.obs_snapshot}",
                  file=sys.stderr)
    # Each ingested tick carries one (n_databases, n_kpis) matrix; the
    # fleet is homogeneous in KPI count but may not be in database count,
    # so average the per-tick point load over the fleet.
    mean_databases = sum(source.units.values()) / len(source.units)
    points = report.ticks_ingested * len(source.kpi_names) * mean_databases
    mode = f"{args.jobs} workers" if args.jobs > 0 else "serial"
    print(f"\nserved {len(source.units)} units ({mode}): "
          f"{report.ticks_ingested:,} ticks in {report.elapsed_seconds:.2f}s, "
          f"{report.rounds_completed} rounds, "
          f"{report.alerts_emitted} alerts")
    if args.rca:
        severities = {}
        for incident in report.incidents:
            severities[incident.severity] = severities.get(incident.severity, 0) + 1
        summary = ", ".join(
            f"{count} {severity}" for severity, count in sorted(severities.items())
        ) or "none"
        print(f"  incidents: {summary}")
    print(f"  backpressure: {report.ticks_dropped} dropped, "
          f"{sum(report.sequence_gaps.values())} sequence gaps; "
          f"{report.ticks_lost} lost to crashes, "
          f"{report.worker_restarts} worker restarts")
    if report.elapsed_seconds > 0:
        print(f"  throughput: ~{points / report.elapsed_seconds:,.0f} "
              f"KPI points/s")
    comp = report.component_seconds
    if comp.get("correlation") or comp.get("observation"):
        print(f"  detection time: correlation {comp.get('correlation', 0.0):.2f}s, "
              f"observation {comp.get('observation', 0.0):.2f}s")
    for name in ("ingest_latency_seconds", "dispatch_latency_seconds"):
        snap = report.metrics.get(name)
        if snap and snap["count"]:
            print(f"  {name}: mean {snap['mean'] * 1e3:.3f}ms "
                  f"max {snap['max'] * 1e3:.3f}ms over {snap['count']}")
    return 0


def _cmd_push(args) -> int:
    from repro.service.api import ApiError, push_dataset

    if (args.url is None) == (args.url_file is None):
        print("push: pass exactly one of --url / --url-file", file=sys.stderr)
        return 2
    url_provider = None
    if args.url_file is not None:
        from pathlib import Path

        url_file = Path(args.url_file)

        def url_provider():
            return url_file.read_text().strip()

    try:
        stats = push_dataset(
            args.dataset,
            url=args.url,
            url_provider=url_provider,
            batch_ticks=args.batch_ticks,
            max_ticks=args.max_ticks,
            timeout_seconds=args.timeout,
            max_reconnects=args.reconnects,
            backoff_seconds=args.backoff,
            throttle_seconds=args.throttle,
            close=not args.no_close,
            encoding=args.encoding,
        )
    except ApiError as exc:
        print(f"push: {exc}", file=sys.stderr)
        return 1
    print(f"pushed {stats.posted:,} ticks in {stats.batches} batches: "
          f"{stats.accepted:,} accepted, {stats.stale:,} stale, "
          f"{stats.backpressure_waits} backpressure waits, "
          f"{stats.reconnects} reconnects")
    return 0


def _cmd_chaos(args) -> int:
    from pathlib import Path

    from repro.chaos import PRESETS, load_scenario, preset_scenario, run_scenario
    from repro.service import ServiceConfig

    if args.list:
        for name in sorted(PRESETS):
            scenario = PRESETS[name]
            print(f"{name:16s} {scenario.description}")
        return 0
    if args.dataset is None:
        print("chaos needs a dataset path (or --list)", file=sys.stderr)
        return 2
    if Path(args.scenario).is_file():
        scenario = load_scenario(args.scenario)
    else:
        scenario = preset_scenario(args.scenario)
    report = run_scenario(
        args.dataset,
        scenario=scenario,
        config=_detect_config(args),
        service_config=ServiceConfig(
            n_workers=args.jobs, transport=args.transport
        ),
        max_ticks=args.max_ticks,
    )
    print(report.render())
    if not report.survived:
        print(
            f"\nFAILED: {report.invalid_verdicts} verdicts left the valid "
            "domain under fault injection",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nsurvived: quality delta {report.diff.quality_delta} "
        f"({len(report.diff.missed)} missed, "
        f"{len(report.diff.spurious)} spurious) over "
        f"{report.chaos_rounds} rounds"
    )
    return 0


def _cmd_obs(args) -> int:
    from repro.obs import runtime as obs
    from repro.obs import to_json, to_prometheus
    from repro.service import DetectionService, ServiceConfig

    source = _build_tick_source(args)
    if source is None:
        print("obs needs a dataset path or --live", file=sys.stderr)
        return 2
    # Serial pool: detector spans and KCD counters are recorded in-process,
    # so the exposition carries the full per-stage latency picture (forked
    # workers would keep their spans to themselves).
    with obs.scoped() as registry:
        service = DetectionService(
            _detect_config(args),
            service_config=ServiceConfig(n_workers=0),
            sinks=("null",),
        )
        report = service.run(source, max_ticks=args.max_ticks)
    text = to_prometheus(registry) if args.format == "prometheus" else (
        to_json(registry)
    )
    if not text.endswith("\n"):
        text += "\n"
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.format} exposition to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(f"instrumented run: {len(source.units)} units, "
          f"{report.ticks_ingested:,} ticks, "
          f"{report.rounds_completed} rounds in "
          f"{report.elapsed_seconds:.2f}s", file=sys.stderr)
    return 0


def _cmd_rca(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.rca import (
        Topology,
        replay_alerts,
        replay_dataset,
        run_attribution_harness,
    )

    if args.accuracy:
        report = run_attribution_harness(
            trials_per_kind=args.trials, seed=args.seed
        )
        print(report.render())
        if args.json is not None:
            Path(args.json).write_text(
                json_module.dumps(report.to_dict(), indent=2, sort_keys=True)
                + "\n"
            )
            print(f"wrote {args.json}", file=sys.stderr)
        return 0 if report.precision_at(1) >= 0.8 else 1

    if args.input is None:
        print("rca needs an input path (or --accuracy)", file=sys.stderr)
        return 2
    topology = Topology.load(args.topology) if args.topology else None
    if Path(args.input).suffix == ".npz":
        from repro.datasets import load_dataset

        report = replay_dataset(
            load_dataset(args.input),
            _detect_config(args),
            topology=topology,
            window_ticks=args.window_ticks,
            resolve_after_ticks=args.resolve_after,
        )
    else:
        report = replay_alerts(
            args.input,
            topology=topology,
            window_ticks=args.window_ticks,
            resolve_after_ticks=args.resolve_after,
        )
    print(report.render(top=args.top))
    if args.json is not None:
        Path(args.json).write_text(
            json_module.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_tune(args) -> int:
    import time

    from repro.datasets import load_dataset
    from repro.tuning import GeneticThresholdLearner

    if args.resume and args.checkpoint is None:
        print("tune: --resume needs --checkpoint", file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset)
    config = _detect_config(args)
    values = [unit.values for unit in dataset.units]
    labels = [unit.labels for unit in dataset.units]
    learner = GeneticThresholdLearner(
        population_size=args.population,
        n_iterations=args.generations,
        seed=args.seed,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        vectorize=not args.no_vectorize,
    )
    started = time.perf_counter()
    tuned = learner(config, values, labels)
    elapsed = time.perf_counter() - started
    trace = learner.last_trace
    objective = "replay" if args.no_vectorize else "vectorized"
    mode = f"{args.jobs} jobs" if args.jobs > 1 else "serial"
    print(f"tuned over {len(dataset.units)} units "
          f"({objective} objective, {mode}): "
          f"best F-Measure {trace.final:.3f} "
          f"after {len(trace.best_fitness)} generations in {elapsed:.2f}s")
    print(f"  alphas: {' '.join(f'{a:.3f}' for a in tuned.alphas)}")
    print(f"  theta: {tuned.theta:.3f}  "
          f"tolerance: {tuned.max_tolerance_deviations}")
    if args.checkpoint is not None:
        print(f"  checkpoint: {args.checkpoint}")
    return 0


def _cmd_info(args) -> int:
    rows = [
        [kpi.display_name, kpi.name, ", ".join(kpi.correlation_type)]
        for kpi in KPI_REGISTRY
    ]
    print(render_table(
        ["Indicator", "key", "UKPIC type"], rows,
        title="Table II KPI registry",
    ))
    config = default_config()
    print(f"\ndefault config: W={config.initial_window}, "
          f"W_M={config.max_window}, alpha={config.alphas[0]:.2f}, "
          f"theta={config.theta}, tolerance={config.max_tolerance_deviations}, "
          f"interval={config.interval_seconds}s")
    from repro.service import ServiceConfig

    service = ServiceConfig()
    pool = "serial in-process" if service.n_workers == 0 else (
        f"{service.n_workers} workers"
    )
    print(f"service defaults: pool={pool}, "
          f"batch_ticks={service.batch_ticks}, "
          f"queue_capacity={service.queue_capacity}, "
          f"backpressure={service.backpressure}, "
          f"sinks=stdout|jsonl:<path>|null, "
          f"restart_budget={service.max_worker_restarts}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "detect": _cmd_detect,
        "serve": _cmd_serve,
        "push": _cmd_push,
        "chaos": _cmd_chaos,
        "obs": _cmd_obs,
        "rca": _cmd_rca,
        "tune": _cmd_tune,
        "info": _cmd_info,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
