"""Convenience presets wiring the core detector to the cluster's KPI set.

The core package is substrate-agnostic; this module provides the standard
configuration for data produced by :mod:`repro.cluster` /
:mod:`repro.datasets`: the 14 Table II KPIs, the R-R-only exclusions, and
the paper's default window geometry.
"""

from __future__ import annotations

from repro.cluster.kpis import KPI_REGISTRY
from repro.core.config import DBCatcherConfig

__all__ = ["default_config", "RR_ONLY_KPI_NAMES"]

#: Table II KPIs whose correlation type is R-R only.
RR_ONLY_KPI_NAMES = tuple(
    kpi.name for kpi in KPI_REGISTRY if not kpi.primary_correlated
)


def default_config(
    initial_window: int = 20,
    max_window: int = 60,
    primary_index: int = 0,
    **overrides,
) -> DBCatcherConfig:
    """The standard DBCatcher configuration for simulated unit series.

    Parameters
    ----------
    initial_window, max_window:
        Flexible-window geometry (paper defaults W=20, W_M=60).
    primary_index:
        Index of the primary database in each unit (the builders put it
        at 0).
    overrides:
        Any other :class:`~repro.core.config.DBCatcherConfig` field.
    """
    return DBCatcherConfig(
        kpi_names=tuple(kpi.name for kpi in KPI_REGISTRY),
        initial_window=initial_window,
        max_window=max_window,
        primary_index=primary_index,
        rr_only_kpis=RR_ONLY_KPI_NAMES,
        **overrides,
    )
