"""Production-like workload profiles (the Tencent dataset substitute).

The Tencent dataset covers databases backing social networks, e-commerce,
games and finance.  Each scenario here pairs a load *shape* (periodic
diurnal curves, bursts, random walks, regime switches) with a statement
*profile* typical of that business, so the generated unit series reproduce
the statistics the paper's preliminary study describes: frequent
large-magnitude changes, a mix of periodic and extensively irregular
series, and burst coupling between request volume and CPU (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.requests import RequestMix
from repro.workloads.patterns import (
    BurstyPattern,
    CompositePattern,
    LoadPattern,
    PeriodicPattern,
    RandomWalkPattern,
    RegimeSwitchingPattern,
)
from repro.workloads.profile import StatementProfile, mixes_from_rates

__all__ = ["TencentScenario", "TENCENT_SCENARIOS", "tencent_workload"]

#: Diurnal period in ticks: with 5 s ticks a real day is 17 280 ticks; the
#: generator compresses a "day" so laptop-scale horizons still contain
#: multiple cycles, preserving the periodic/irregular distinction.
_DAY_TICKS = 240


@dataclass(frozen=True)
class TencentScenario:
    """One business scenario: load shapes plus a statement profile."""

    name: str
    periodic_pattern: LoadPattern
    irregular_pattern: LoadPattern
    profile: StatementProfile

    def pattern(self, periodic: bool) -> LoadPattern:
        return self.periodic_pattern if periodic else self.irregular_pattern


def _social() -> TencentScenario:
    base = 9_000.0
    return TencentScenario(
        name="social",
        periodic_pattern=CompositePattern(
            [
                PeriodicPattern(base, amplitude=0.55, period=_DAY_TICKS,
                                harmonics=(0.35,)),
                BurstyPattern(base * 0.08, burst_probability=0.01,
                              burst_scale=2.0),
            ]
        ),
        irregular_pattern=CompositePattern(
            [
                RandomWalkPattern(base, sigma=0.06, reversion=0.03),
                BurstyPattern(base * 0.1, burst_probability=0.02,
                              burst_scale=2.5),
            ]
        ),
        profile=StatementProfile(
            select_fraction=0.85,
            insert_fraction=0.08,
            update_fraction=0.05,
            delete_fraction=0.02,
            statements_per_transaction=6.0,
            rows_per_select=8.0,
            bytes_per_row=180.0,
        ),
    )


def _ecommerce() -> TencentScenario:
    base = 7_000.0
    return TencentScenario(
        name="ecommerce",
        periodic_pattern=CompositePattern(
            [
                PeriodicPattern(base, amplitude=0.6, period=_DAY_TICKS,
                                harmonics=(0.2, 0.1)),
                BurstyPattern(base * 0.15, burst_probability=0.015,
                              burst_scale=4.0, decay=0.6),
            ]
        ),
        irregular_pattern=CompositePattern(
            [
                RegimeSwitchingPattern(base, levels=(0.6, 1.0, 1.7, 2.4),
                                       switch_probability=0.015),
                BurstyPattern(base * 0.2, burst_probability=0.02,
                              burst_scale=5.0, decay=0.55),
            ]
        ),
        profile=StatementProfile(
            select_fraction=0.72,
            insert_fraction=0.12,
            update_fraction=0.12,
            delete_fraction=0.04,
            statements_per_transaction=12.0,
            rows_per_select=15.0,
            bytes_per_row=260.0,
        ),
    )


def _game() -> TencentScenario:
    base = 11_000.0
    return TencentScenario(
        name="game",
        periodic_pattern=CompositePattern(
            [
                # Sharp evening peaks: strong second harmonic.
                PeriodicPattern(base, amplitude=0.7, period=_DAY_TICKS,
                                harmonics=(0.5, 0.25)),
                BurstyPattern(base * 0.12, burst_probability=0.02,
                              burst_scale=3.0),
            ]
        ),
        irregular_pattern=CompositePattern(
            [
                RandomWalkPattern(base, sigma=0.08, reversion=0.02,
                                  ceiling=3.0),
                BurstyPattern(base * 0.15, burst_probability=0.03,
                              burst_scale=3.5),
            ]
        ),
        profile=StatementProfile(
            select_fraction=0.6,
            insert_fraction=0.15,
            update_fraction=0.22,
            delete_fraction=0.03,
            statements_per_transaction=4.0,
            rows_per_select=5.0,
            bytes_per_row=150.0,
        ),
    )


def _finance() -> TencentScenario:
    base = 4_000.0
    return TencentScenario(
        name="finance",
        periodic_pattern=CompositePattern(
            [
                # Business-hours plateau: fundamental plus strong harmonics
                # approximate a square-ish wave.
                PeriodicPattern(base, amplitude=0.65, period=_DAY_TICKS,
                                harmonics=(0.4, 0.0, 0.15)),
            ]
        ),
        irregular_pattern=CompositePattern(
            [
                RegimeSwitchingPattern(base, levels=(0.4, 1.0, 1.5),
                                       switch_probability=0.008),
                RandomWalkPattern(base * 0.3, sigma=0.05, reversion=0.05),
            ]
        ),
        profile=StatementProfile(
            select_fraction=0.65,
            insert_fraction=0.14,
            update_fraction=0.18,
            delete_fraction=0.03,
            statements_per_transaction=20.0,
            rows_per_select=12.0,
            bytes_per_row=350.0,
        ),
    )


#: Scenario registry; dataset builders draw from it round-robin.
TENCENT_SCENARIOS: Dict[str, TencentScenario] = {
    scenario.name: scenario
    for scenario in (_social(), _ecommerce(), _game(), _finance())
}


def tencent_workload(
    n_ticks: int,
    scenario: str = "social",
    periodic: bool = True,
    rng: Optional[np.random.Generator] = None,
    interval_seconds: float = 5.0,
    rate_scale: float = 1.0,
) -> List[RequestMix]:
    """Production-like demand series for one unit.

    Parameters
    ----------
    n_ticks:
        Series length.
    scenario:
        One of :data:`TENCENT_SCENARIOS` (social, ecommerce, game,
        finance).
    periodic:
        Pick the scenario's periodic or irregular load shape — datasets
        mix these 40 %/60 % as the paper measured.
    rng:
        Random generator; a fresh one is created when omitted.
    interval_seconds:
        Monitoring interval.
    rate_scale:
        Scales the scenario's base demand (unit size heterogeneity).
    """
    if scenario not in TENCENT_SCENARIOS:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from "
            f"{sorted(TENCENT_SCENARIOS)}"
        )
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    generator = rng if rng is not None else np.random.default_rng()
    spec = TENCENT_SCENARIOS[scenario]
    rates = spec.pattern(periodic).sample(n_ticks, generator) * rate_scale
    return mixes_from_rates(rates, spec.profile, interval_seconds)
