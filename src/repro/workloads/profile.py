"""Statement profiles: turning a scalar rate into a SQL request mix.

A :class:`StatementProfile` describes *what* a workload's statements look
like (read/write proportions, rows examined, payload sizes, statements per
transaction); a rate series from :mod:`repro.workloads.patterns` describes
*how much*.  :func:`mixes_from_rates` combines the two into the per-tick
:class:`~repro.cluster.requests.RequestMix` list the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.requests import RequestMix

__all__ = ["StatementProfile", "mixes_from_rates"]


@dataclass(frozen=True)
class StatementProfile:
    """Statement composition of a workload.

    Fractions must sum to 1 across selects/inserts/updates/deletes.

    Parameters
    ----------
    select_fraction, insert_fraction, update_fraction, delete_fraction:
        Statement type proportions.
    statements_per_transaction:
        Average statements grouped per transaction commit.
    rows_per_select:
        Average rows examined per read statement.
    bytes_per_row:
        Average row payload in bytes.
    """

    select_fraction: float = 0.8
    insert_fraction: float = 0.07
    update_fraction: float = 0.1
    delete_fraction: float = 0.03
    statements_per_transaction: float = 10.0
    rows_per_select: float = 10.0
    bytes_per_row: float = 200.0

    def __post_init__(self) -> None:
        fractions = (
            self.select_fraction,
            self.insert_fraction,
            self.update_fraction,
            self.delete_fraction,
        )
        if any(f < 0 for f in fractions):
            raise ValueError("statement fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(f"statement fractions must sum to 1, got {sum(fractions)}")
        if self.statements_per_transaction <= 0:
            raise ValueError("statements_per_transaction must be positive")
        if self.rows_per_select <= 0:
            raise ValueError("rows_per_select must be positive")
        if self.bytes_per_row <= 0:
            raise ValueError("bytes_per_row must be positive")

    def mix_for_rate(
        self, rate: float, interval_seconds: float = 5.0
    ) -> RequestMix:
        """Request mix for one tick at ``rate`` statements/second."""
        if rate < 0:
            raise ValueError("rate must be non-negative")
        statements = rate * interval_seconds
        return RequestMix(
            selects=statements * self.select_fraction,
            inserts=statements * self.insert_fraction,
            updates=statements * self.update_fraction,
            deletes=statements * self.delete_fraction,
            transactions=statements / self.statements_per_transaction,
            rows_per_select=self.rows_per_select,
            bytes_per_row=self.bytes_per_row,
        )


def mixes_from_rates(
    rates: Sequence[float],
    profile: StatementProfile,
    interval_seconds: float = 5.0,
) -> List[RequestMix]:
    """Per-tick request mixes from a rate series and a profile."""
    return [
        profile.mix_for_rate(float(rate), interval_seconds) for rate in rates
    ]
