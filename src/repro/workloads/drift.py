"""Workload drift composition (Table IX).

Cloud database workloads are user-determined and can change at any time;
the Table IX experiment measures each method's retraining cost when the
workload drifts from one family to another (Tencent -> Sysbench,
Tencent -> TPCC, Sysbench -> TPCC).  :func:`drift_workload` builds the
demand series for such an experiment: the first family up to the drift
point, the second after it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.requests import RequestMix
from repro.workloads.sysbench import sysbench_irregular
from repro.workloads.tencent import tencent_workload
from repro.workloads.tpcc import tpcc_irregular

__all__ = ["WORKLOAD_FAMILIES", "drift_workload"]


def _tencent(n_ticks: int, rng: np.random.Generator) -> List[RequestMix]:
    return tencent_workload(n_ticks, scenario="social", periodic=False, rng=rng)


#: Family name -> generator used by the drift experiments.
WORKLOAD_FAMILIES: Dict[str, Callable[[int, np.random.Generator], List[RequestMix]]] = {
    "tencent": _tencent,
    "sysbench": lambda n, rng: sysbench_irregular(n, rng),
    "tpcc": lambda n, rng: tpcc_irregular(n, rng),
}


def drift_workload(
    before: str,
    after: str,
    n_ticks: int,
    drift_tick: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[RequestMix]:
    """Demand series that switches workload family mid-stream.

    Parameters
    ----------
    before, after:
        Family names from :data:`WORKLOAD_FAMILIES`.
    n_ticks:
        Total series length.
    drift_tick:
        Tick at which the drift occurs; defaults to the midpoint.
    rng:
        Random generator; a fresh one is created when omitted.
    """
    for name in (before, after):
        if name not in WORKLOAD_FAMILIES:
            raise KeyError(
                f"unknown workload family {name!r}; choose from "
                f"{sorted(WORKLOAD_FAMILIES)}"
            )
    if drift_tick is None:
        drift_tick = n_ticks // 2
    if not 0 < drift_tick < n_ticks:
        raise ValueError("drift_tick must lie strictly inside the series")
    generator = rng if rng is not None else np.random.default_rng()
    head = WORKLOAD_FAMILIES[before](drift_tick, generator)
    tail = WORKLOAD_FAMILIES[after](n_ticks - drift_tick, generator)
    return head + tail
