"""Sysbench OLTP read/write workload model (Table IV).

Models the statement stream a ``sysbench oltp_read_write`` run generates
against a unit.  One transaction issues 10 point selects, 4 range selects,
2 updates, 1 delete and 1 insert (the tool's defaults); throughput scales
with thread count into saturation, and the Table IV parameter space is
encoded verbatim so datasets sample the exact grid the paper used:

* **Sysbench I** (irregular): tables 5–20, threads 4–64, 100 000 items,
  0.5–1 minute runs, concatenated back to back;
* **Sysbench II** (periodic): 10 tables, the 4-8-16-32 thread ladder at
  0.5 minutes per step, cycled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.requests import RequestMix
from repro.workloads.profile import StatementProfile

__all__ = [
    "SysbenchConfig",
    "SYSBENCH_I_SPACE",
    "SYSBENCH_II_SPACE",
    "sysbench_run",
    "sysbench_irregular",
    "sysbench_periodic",
]

#: Statements per oltp_read_write transaction: 14 reads, 2 updates,
#: 1 delete, 1 insert.
_STATEMENTS_PER_TX = 18.0
#: Rows examined per read statement: 10 point selects return 1 row, the 4
#: range selects scan ~100 rows each.
_ROWS_PER_SELECT = (10 * 1 + 4 * 100) / 14.0
#: sbtest row payload (int id, int k, char(120) c, char(60) pad).
_BYTES_PER_ROW = 220.0
#: Transactions/second one uncontended thread sustains on the 4C/8G boxes.
_TPS_PER_THREAD = 120.0
#: Thread count at which contention halves per-thread throughput.
_THREAD_HALF_SATURATION = 48.0

#: The Table IV "Sysbench I" parameter space.
SYSBENCH_I_SPACE = {
    "tables": (5, 20),
    "threads": (4, 64),
    "items": 100_000,
    "time_minutes": (0.5, 1.0),
}

#: The Table IV "Sysbench II" parameter space.
SYSBENCH_II_SPACE = {
    "tables": 10,
    "thread_ladder": (4, 8, 16, 32),
    "items": 100_000,
    "time_minutes": 0.5,
}


@dataclass(frozen=True)
class SysbenchConfig:
    """One sysbench run's parameters (a cell of Table IV)."""

    tables: int = 10
    threads: int = 16
    items: int = 100_000
    time_minutes: float = 0.5

    def __post_init__(self) -> None:
        if self.tables < 1:
            raise ValueError("tables must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.items < 1:
            raise ValueError("items must be >= 1")
        if self.time_minutes <= 0:
            raise ValueError("time_minutes must be positive")

    @property
    def transactions_per_second(self) -> float:
        """Saturating throughput model: contention flattens the curve."""
        return (
            _TPS_PER_THREAD
            * self.threads
            / (1.0 + self.threads / _THREAD_HALF_SATURATION)
        )

    def duration_ticks(self, interval_seconds: float = 5.0) -> int:
        return max(1, int(round(self.time_minutes * 60.0 / interval_seconds)))

    def profile(self) -> StatementProfile:
        """Statement profile of oltp_read_write for this table/item shape."""
        # Bigger tables make range scans a touch wider (B-tree depth and
        # fill factor), a second-order but realistic effect.
        rows = _ROWS_PER_SELECT * (1.0 + 0.01 * self.tables)
        return StatementProfile(
            select_fraction=14.0 / _STATEMENTS_PER_TX,
            update_fraction=2.0 / _STATEMENTS_PER_TX,
            delete_fraction=1.0 / _STATEMENTS_PER_TX,
            insert_fraction=1.0 / _STATEMENTS_PER_TX,
            statements_per_transaction=_STATEMENTS_PER_TX,
            rows_per_select=rows,
            bytes_per_row=_BYTES_PER_ROW,
        )


def sysbench_run(
    config: SysbenchConfig,
    rng: np.random.Generator,
    interval_seconds: float = 5.0,
    rate_noise: float = 0.04,
) -> List[RequestMix]:
    """Request mixes for one sysbench run.

    Throughput ramps over the first couple of ticks (connection setup and
    buffer-pool warmup) then holds steady with small noise.
    """
    ticks = config.duration_ticks(interval_seconds)
    tps = config.transactions_per_second
    profile = config.profile()
    statement_rate = tps * _STATEMENTS_PER_TX
    mixes = []
    for t in range(ticks):
        warmup = min(1.0, (t + 1) / 2.0)
        rate = statement_rate * warmup * max(0.0, rng.normal(1.0, rate_noise))
        mixes.append(profile.mix_for_rate(rate, interval_seconds))
    return mixes


def _sample_irregular_config(rng: np.random.Generator) -> SysbenchConfig:
    lo_tab, hi_tab = SYSBENCH_I_SPACE["tables"]
    lo_thr, hi_thr = SYSBENCH_I_SPACE["threads"]
    lo_t, hi_t = SYSBENCH_I_SPACE["time_minutes"]
    return SysbenchConfig(
        tables=int(rng.integers(lo_tab, hi_tab + 1)),
        threads=int(rng.integers(lo_thr, hi_thr + 1)),
        items=SYSBENCH_I_SPACE["items"],
        time_minutes=float(rng.uniform(lo_t, hi_t)),
    )


def sysbench_irregular(
    n_ticks: int,
    rng: Optional[np.random.Generator] = None,
    interval_seconds: float = 5.0,
) -> List[RequestMix]:
    """Sysbench I: random runs from the Table IV grid, concatenated.

    Thread and table counts jump between runs, producing the irregular
    step-shaped load the paper's irregular datasets exhibit.
    """
    generator = rng if rng is not None else np.random.default_rng()
    mixes: List[RequestMix] = []
    while len(mixes) < n_ticks:
        config = _sample_irregular_config(generator)
        mixes.extend(sysbench_run(config, generator, interval_seconds))
    return mixes[:n_ticks]


def sysbench_periodic(
    n_ticks: int,
    rng: Optional[np.random.Generator] = None,
    interval_seconds: float = 5.0,
) -> List[RequestMix]:
    """Sysbench II: the 4-8-16-32 thread ladder cycled periodically."""
    generator = rng if rng is not None else np.random.default_rng()
    ladder: Tuple[int, ...] = SYSBENCH_II_SPACE["thread_ladder"]
    mixes: List[RequestMix] = []
    step = 0
    while len(mixes) < n_ticks:
        config = SysbenchConfig(
            tables=SYSBENCH_II_SPACE["tables"],
            threads=ladder[step % len(ladder)],
            items=SYSBENCH_II_SPACE["items"],
            time_minutes=SYSBENCH_II_SPACE["time_minutes"],
        )
        mixes.extend(sysbench_run(config, generator, interval_seconds))
        step += 1
    return mixes[:n_ticks]
