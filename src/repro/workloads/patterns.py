"""Load-rate patterns: the temporal shapes workloads are built from.

A pattern maps tick indices to a request rate (statements per second at the
unit level).  Patterns compose additively via :class:`CompositePattern`.
Random patterns take the generator at sampling time so a pattern object is
a pure description and stays reusable across seeds.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = [
    "LoadPattern",
    "FlatPattern",
    "PeriodicPattern",
    "BurstyPattern",
    "RandomWalkPattern",
    "RegimeSwitchingPattern",
    "CompositePattern",
]


class LoadPattern(abc.ABC):
    """Maps a tick range to a non-negative rate series."""

    @abc.abstractmethod
    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        """Rate per tick over ``n_ticks`` ticks."""

    def __add__(self, other: "LoadPattern") -> "CompositePattern":
        return CompositePattern([self, other])


class FlatPattern(LoadPattern):
    """Constant rate with optional relative noise."""

    def __init__(self, level: float, noise: float = 0.0):
        if level < 0:
            raise ValueError("level must be non-negative")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.level = level
        self.noise = noise

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        rates = np.full(n_ticks, self.level, dtype=np.float64)
        if self.noise > 0:
            rates *= rng.normal(1.0, self.noise, n_ticks)
        return np.clip(rates, 0.0, None)


class PeriodicPattern(LoadPattern):
    """Sinusoidal (diurnal-like) rate with optional harmonics.

    Parameters
    ----------
    base:
        Mean rate.
    amplitude:
        Relative swing of the fundamental (0..1).
    period:
        Fundamental period in ticks.
    harmonics:
        Relative amplitudes of successive harmonics (e.g. a sharper
        morning/evening double peak).
    phase:
        Phase offset in radians.
    noise:
        Relative multiplicative noise.
    """

    def __init__(
        self,
        base: float,
        amplitude: float = 0.5,
        period: int = 240,
        harmonics: Sequence[float] = (),
        phase: float = 0.0,
        noise: float = 0.02,
    ):
        if base <= 0:
            raise ValueError("base must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must lie in [0, 1]")
        if period < 2:
            raise ValueError("period must be >= 2 ticks")
        self.base = base
        self.amplitude = amplitude
        self.period = period
        self.harmonics = tuple(harmonics)
        self.phase = phase
        self.noise = noise

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(n_ticks, dtype=np.float64)
        omega = 2.0 * np.pi / self.period
        wave = np.sin(omega * t + self.phase)
        for order, rel in enumerate(self.harmonics, start=2):
            wave += rel * np.sin(order * omega * t + self.phase)
        peak = np.abs(wave).max() or 1.0
        rates = self.base * (1.0 + self.amplitude * wave / peak)
        if self.noise > 0:
            rates *= rng.normal(1.0, self.noise, n_ticks)
        return np.clip(rates, 0.0, None)


class BurstyPattern(LoadPattern):
    """Background rate plus exponentially decaying random bursts.

    Models the Figure 1 behaviour: e-commerce or game users generating a
    burst of requests at some point in time.
    """

    def __init__(
        self,
        base: float,
        burst_probability: float = 0.01,
        burst_scale: float = 3.0,
        decay: float = 0.7,
        noise: float = 0.03,
    ):
        if base <= 0:
            raise ValueError("base must be positive")
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError("burst_probability must lie in [0, 1]")
        if burst_scale < 0:
            raise ValueError("burst_scale must be non-negative")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must lie in [0, 1)")
        self.base = base
        self.burst_probability = burst_probability
        self.burst_scale = burst_scale
        self.decay = decay
        self.noise = noise

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        rates = np.empty(n_ticks, dtype=np.float64)
        excitation = 0.0
        for t in range(n_ticks):
            if rng.random() < self.burst_probability:
                excitation += self.burst_scale * rng.exponential(1.0)
            rates[t] = self.base * (1.0 + excitation)
            excitation *= self.decay
        if self.noise > 0:
            rates *= rng.normal(1.0, self.noise, n_ticks)
        return np.clip(rates, 0.0, None)


class RandomWalkPattern(LoadPattern):
    """Mean-reverting random walk (irregular production traffic)."""

    def __init__(
        self,
        base: float,
        sigma: float = 0.05,
        reversion: float = 0.02,
        floor: float = 0.1,
        ceiling: float = 4.0,
    ):
        if base <= 0:
            raise ValueError("base must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 <= reversion <= 1.0:
            raise ValueError("reversion must lie in [0, 1]")
        if not 0.0 < floor < ceiling:
            raise ValueError("need 0 < floor < ceiling")
        self.base = base
        self.sigma = sigma
        self.reversion = reversion
        self.floor = floor
        self.ceiling = ceiling

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        level = 1.0
        rates = np.empty(n_ticks, dtype=np.float64)
        for t in range(n_ticks):
            level += self.reversion * (1.0 - level) + rng.normal(0.0, self.sigma)
            level = float(np.clip(level, self.floor, self.ceiling))
            rates[t] = self.base * level
        return rates


class RegimeSwitchingPattern(LoadPattern):
    """Rate jumping between discrete levels (deploys, feature flags)."""

    def __init__(
        self,
        base: float,
        levels: Sequence[float] = (0.5, 1.0, 1.8),
        switch_probability: float = 0.01,
        noise: float = 0.03,
    ):
        if base <= 0:
            raise ValueError("base must be positive")
        if not levels or any(level <= 0 for level in levels):
            raise ValueError("levels must be positive")
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError("switch_probability must lie in [0, 1]")
        self.base = base
        self.levels = tuple(levels)
        self.switch_probability = switch_probability
        self.noise = noise

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        current = int(rng.integers(0, len(self.levels)))
        rates = np.empty(n_ticks, dtype=np.float64)
        for t in range(n_ticks):
            if rng.random() < self.switch_probability:
                current = int(rng.integers(0, len(self.levels)))
            rates[t] = self.base * self.levels[current]
        if self.noise > 0:
            rates *= rng.normal(1.0, self.noise, n_ticks)
        return np.clip(rates, 0.0, None)


class CompositePattern(LoadPattern):
    """Sum of patterns (e.g. diurnal baseline + bursts)."""

    def __init__(self, parts: Sequence[LoadPattern]):
        if not parts:
            raise ValueError("composite needs at least one part")
        self.parts = list(parts)

    def sample(self, n_ticks: int, rng: np.random.Generator) -> np.ndarray:
        total = np.zeros(n_ticks, dtype=np.float64)
        for part in self.parts:
            total += part.sample(n_ticks, rng)
        return total
