"""TPC-C workload model (Table IV).

Models the aggregate statement stream of a TPC-C driver: the five
transaction types at their spec mix (NewOrder 45 %, Payment 43 %,
OrderStatus 4 %, Delivery 4 %, StockLevel 4 %), with per-type row-operation
footprints folded into one weighted profile.  Throughput scales with
threads into warehouse-bound contention, and a warmup ramp precedes the
measured interval, as the Table IV grid specifies:

* **TPCC I** (irregular): warehouses 5–20, threads 4–24, 0.5–1 minute
  warmup and runtime, concatenated;
* **TPCC II** (periodic): 10 warehouses, the 4-8-16-24 thread ladder at
  0.5 minutes per step, cycled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.requests import RequestMix
from repro.workloads.profile import StatementProfile

__all__ = [
    "TPCCConfig",
    "TPCC_I_SPACE",
    "TPCC_II_SPACE",
    "tpcc_run",
    "tpcc_irregular",
    "tpcc_periodic",
]

#: Aggregate statements per transaction, weighted over the five TPC-C
#: transaction types (NewOrder ~46 statements dominates the average).
_STATEMENTS_PER_TX = 32.0
#: Fractions by statement kind across the weighted transaction mix.
_SELECT_FRACTION = 0.66
_INSERT_FRACTION = 0.14
_UPDATE_FRACTION = 0.18
_DELETE_FRACTION = 0.02
#: Rows examined per read (StockLevel range scans pull the average up).
_ROWS_PER_SELECT = 12.0
#: Average TPC-C row payload (order lines, stock rows, customer rows).
_BYTES_PER_ROW = 310.0
#: Transactions/second per uncontended thread.
_TPS_PER_THREAD = 35.0

#: The Table IV "TPCC I" parameter space.
TPCC_I_SPACE = {
    "warehouses": (5, 20),
    "threads": (4, 24),
    "warmup_minutes": (0.5, 1.0),
    "time_minutes": (0.5, 1.0),
}

#: The Table IV "TPCC II" parameter space.
TPCC_II_SPACE = {
    "warehouses": 10,
    "thread_ladder": (4, 8, 16, 24),
    "warmup_minutes": 0.5,
    "time_minutes": 0.5,
}


@dataclass(frozen=True)
class TPCCConfig:
    """One TPC-C run's parameters (a cell of Table IV)."""

    warehouses: int = 10
    threads: int = 8
    warmup_minutes: float = 0.5
    time_minutes: float = 0.5

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise ValueError("warehouses must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.warmup_minutes < 0:
            raise ValueError("warmup_minutes must be >= 0")
        if self.time_minutes <= 0:
            raise ValueError("time_minutes must be positive")

    @property
    def transactions_per_second(self) -> float:
        """Threads saturate once they outnumber warehouse home districts."""
        half_saturation = 2.0 * self.warehouses
        return (
            _TPS_PER_THREAD * self.threads / (1.0 + self.threads / half_saturation)
        )

    def warmup_ticks(self, interval_seconds: float = 5.0) -> int:
        return int(round(self.warmup_minutes * 60.0 / interval_seconds))

    def duration_ticks(self, interval_seconds: float = 5.0) -> int:
        return max(1, int(round(self.time_minutes * 60.0 / interval_seconds)))

    def profile(self) -> StatementProfile:
        return StatementProfile(
            select_fraction=_SELECT_FRACTION,
            insert_fraction=_INSERT_FRACTION,
            update_fraction=_UPDATE_FRACTION,
            delete_fraction=_DELETE_FRACTION,
            statements_per_transaction=_STATEMENTS_PER_TX,
            rows_per_select=_ROWS_PER_SELECT,
            bytes_per_row=_BYTES_PER_ROW,
        )


def tpcc_run(
    config: TPCCConfig,
    rng: np.random.Generator,
    interval_seconds: float = 5.0,
    rate_noise: float = 0.05,
) -> List[RequestMix]:
    """Request mixes for one TPC-C run: warmup ramp + measured plateau."""
    warmup = config.warmup_ticks(interval_seconds)
    ticks = config.duration_ticks(interval_seconds)
    statement_rate = config.transactions_per_second * _STATEMENTS_PER_TX
    profile = config.profile()
    mixes = []
    for t in range(warmup + ticks):
        ramp = min(1.0, (t + 1) / max(warmup, 1))
        rate = statement_rate * ramp * max(0.0, rng.normal(1.0, rate_noise))
        mixes.append(profile.mix_for_rate(rate, interval_seconds))
    return mixes


def _sample_irregular_config(rng: np.random.Generator) -> TPCCConfig:
    lo_wh, hi_wh = TPCC_I_SPACE["warehouses"]
    lo_thr, hi_thr = TPCC_I_SPACE["threads"]
    lo_w, hi_w = TPCC_I_SPACE["warmup_minutes"]
    lo_t, hi_t = TPCC_I_SPACE["time_minutes"]
    return TPCCConfig(
        warehouses=int(rng.integers(lo_wh, hi_wh + 1)),
        threads=int(rng.integers(lo_thr, hi_thr + 1)),
        warmup_minutes=float(rng.uniform(lo_w, hi_w)),
        time_minutes=float(rng.uniform(lo_t, hi_t)),
    )


def tpcc_irregular(
    n_ticks: int,
    rng: Optional[np.random.Generator] = None,
    interval_seconds: float = 5.0,
) -> List[RequestMix]:
    """TPCC I: random grid cells concatenated into an irregular stream."""
    generator = rng if rng is not None else np.random.default_rng()
    mixes: List[RequestMix] = []
    while len(mixes) < n_ticks:
        config = _sample_irregular_config(generator)
        mixes.extend(tpcc_run(config, generator, interval_seconds))
    return mixes[:n_ticks]


def tpcc_periodic(
    n_ticks: int,
    rng: Optional[np.random.Generator] = None,
    interval_seconds: float = 5.0,
) -> List[RequestMix]:
    """TPCC II: the 4-8-16-24 thread ladder cycled periodically."""
    generator = rng if rng is not None else np.random.default_rng()
    ladder: Tuple[int, ...] = TPCC_II_SPACE["thread_ladder"]
    mixes: List[RequestMix] = []
    step = 0
    while len(mixes) < n_ticks:
        config = TPCCConfig(
            warehouses=TPCC_II_SPACE["warehouses"],
            threads=ladder[step % len(ladder)],
            warmup_minutes=TPCC_II_SPACE["warmup_minutes"],
            time_minutes=TPCC_II_SPACE["time_minutes"],
        )
        mixes.extend(tpcc_run(config, generator, interval_seconds))
        step += 1
    return mixes[:n_ticks]
