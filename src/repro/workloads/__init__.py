"""Workload models: demand series that drive the cluster simulator.

Three families, matching the paper's datasets:

* :mod:`repro.workloads.sysbench` — Sysbench OLTP read/write runs over the
  Table IV parameter grid (Sysbench I irregular, Sysbench II periodic);
* :mod:`repro.workloads.tpcc` — TPC-C runs over the Table IV grid
  (TPCC I irregular, TPCC II periodic);
* :mod:`repro.workloads.tencent` — production-like profiles for the
  business scenarios the Tencent dataset covers (social networks,
  e-commerce, games, finance), mixed 40 % periodic / 60 % irregular.

Every generator returns a list of per-tick
:class:`~repro.cluster.requests.RequestMix` objects ready for
:meth:`repro.cluster.unit.Unit.run`.
"""

from repro.workloads.patterns import (
    BurstyPattern,
    CompositePattern,
    FlatPattern,
    LoadPattern,
    PeriodicPattern,
    RandomWalkPattern,
    RegimeSwitchingPattern,
)
from repro.workloads.profile import StatementProfile, mixes_from_rates
from repro.workloads.sysbench import (
    SYSBENCH_I_SPACE,
    SYSBENCH_II_SPACE,
    SysbenchConfig,
    sysbench_irregular,
    sysbench_periodic,
    sysbench_run,
)
from repro.workloads.tencent import TENCENT_SCENARIOS, tencent_workload
from repro.workloads.tpcc import (
    TPCC_I_SPACE,
    TPCC_II_SPACE,
    TPCCConfig,
    tpcc_irregular,
    tpcc_periodic,
    tpcc_run,
)
from repro.workloads.drift import drift_workload

__all__ = [
    "LoadPattern",
    "FlatPattern",
    "PeriodicPattern",
    "BurstyPattern",
    "RandomWalkPattern",
    "RegimeSwitchingPattern",
    "CompositePattern",
    "StatementProfile",
    "mixes_from_rates",
    "SysbenchConfig",
    "SYSBENCH_I_SPACE",
    "SYSBENCH_II_SPACE",
    "sysbench_run",
    "sysbench_irregular",
    "sysbench_periodic",
    "TPCCConfig",
    "TPCC_I_SPACE",
    "TPCC_II_SPACE",
    "tpcc_run",
    "tpcc_irregular",
    "tpcc_periodic",
    "TENCENT_SCENARIOS",
    "tencent_workload",
    "drift_workload",
]
