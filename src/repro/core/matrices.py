"""Correlation matrices (Eq. 5) with upper-triangular storage.

One :class:`CorrelationMatrix` per KPI preserves the pairwise KCD scores of
all databases in a unit over one time window.  Because the matrix is
symmetric with a unit diagonal, only the strict upper triangle is stored —
``N * (N - 1) / 2`` floats per KPI — matching the paper's remark that the
lower triangle need not be saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.kcd import kcd_matrix

__all__ = ["CorrelationMatrix", "build_correlation_matrices"]


def _triangle_size(n_databases: int) -> int:
    return n_databases * (n_databases - 1) // 2


def _pair_index(i: int, j: int, n: int) -> int:
    """Flat index of pair ``(i, j)`` with ``i < j`` in the upper triangle."""
    return i * n - i * (i + 1) // 2 + (j - i - 1)


@dataclass(frozen=True)
class CorrelationMatrix:
    """Symmetric pairwise-KCD matrix for one KPI, stored as its triangle.

    Parameters
    ----------
    kpi:
        Name of the KPI this matrix covers (``j`` in ``CM_j``).
    n_databases:
        Matrix dimension ``N``.
    triangle:
        Row-major strict upper triangle, length ``N * (N - 1) / 2``.
    """

    kpi: str
    n_databases: int
    triangle: np.ndarray

    def __post_init__(self) -> None:
        if self.n_databases < 2:
            raise ValueError("a unit needs at least 2 databases to correlate")
        tri = np.asarray(self.triangle, dtype=np.float64)
        expected = _triangle_size(self.n_databases)
        if tri.shape != (expected,):
            raise ValueError(
                f"triangle for N={self.n_databases} must have {expected} "
                f"entries, got shape {tri.shape}"
            )
        object.__setattr__(self, "triangle", tri)

    def __eq__(self, other: object) -> bool:
        # The dataclass-generated __eq__ would compare the triangle
        # arrays elementwise and raise on truth-testing the result;
        # results carry these matrices, so equality must stay usable.
        if not isinstance(other, CorrelationMatrix):
            return NotImplemented
        return (
            self.kpi == other.kpi
            and self.n_databases == other.n_databases
            and np.array_equal(self.triangle, other.triangle, equal_nan=True)
        )

    @classmethod
    def from_dense(cls, kpi: str, matrix: np.ndarray) -> "CorrelationMatrix":
        """Build from a dense symmetric matrix (e.g. :func:`kcd_matrix`)."""
        dense = np.asarray(matrix, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError(f"expected a square matrix, got {dense.shape}")
        n = dense.shape[0]
        triangle = dense[np.triu_indices(n, k=1)]
        return cls(kpi=kpi, n_databases=n, triangle=triangle)

    @classmethod
    def from_window(
        cls,
        kpi: str,
        series: np.ndarray,
        max_delay: int | None = None,
        active: np.ndarray | None = None,
        measure=None,
    ) -> "CorrelationMatrix":
        """Compute the matrix from a ``(n_databases, n_points)`` window."""
        return cls.from_dense(
            kpi,
            kcd_matrix(series, max_delay=max_delay, active=active, measure=measure),
        )

    def score(self, i: int, j: int) -> float:
        """KCD between databases ``i`` and ``j`` (1.0 on the diagonal)."""
        n = self.n_databases
        if not (0 <= i < n and 0 <= j < n):
            raise IndexError(f"database index out of range for N={n}")
        if i == j:
            return 1.0
        if i > j:
            i, j = j, i
        return float(self.triangle[_pair_index(i, j, n)])

    def scores_for(self, database: int, active: np.ndarray | None = None) -> np.ndarray:
        """All KCDs of one database against its peers (the ``Search`` step).

        Parameters
        ----------
        database:
            Index of the database of interest.
        active:
            Optional in-use mask; inactive peers are excluded from the
            returned scores (an unused database must not drag its peers'
            correlation levels down).

        Returns
        -------
        numpy.ndarray
            KCD scores against each active peer, in peer-index order.
        """
        n = self.n_databases
        if not 0 <= database < n:
            raise IndexError(f"database index out of range for N={n}")
        peers = [p for p in range(n) if p != database]
        if active is not None:
            mask = np.asarray(active, dtype=bool)
            if mask.shape != (n,):
                raise ValueError("active mask must have one entry per database")
            peers = [p for p in peers if mask[p]]
        return np.array([self.score(database, p) for p in peers], dtype=np.float64)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the full symmetric matrix with unit diagonal."""
        n = self.n_databases
        dense = np.eye(n, dtype=np.float64)
        rows, cols = np.triu_indices(n, k=1)
        dense[rows, cols] = self.triangle
        dense[cols, rows] = self.triangle
        return dense


def build_correlation_matrices(
    window: np.ndarray,
    kpi_names: Sequence[str],
    max_delay: int | None = None,
    active: np.ndarray | None = None,
    measure=None,
    engine=None,
) -> List[CorrelationMatrix]:
    """Compute all ``Q`` correlation matrices for one observation window.

    Parameters
    ----------
    window:
        Array of shape ``(n_databases, n_kpis, n_points)``.
    kpi_names:
        KPI names, one per KPI axis entry.
    max_delay:
        Delay scan bound forwarded to the KCD.
    active:
        Optional in-use database mask.
    measure:
        Optional replacement correlation measure (see
        :func:`repro.core.kcd.kcd_matrix`).  Mutually exclusive with
        ``engine``.
    engine:
        Optional :class:`repro.engine.KCDEngine` to delegate to (e.g. a
        :class:`~repro.engine.batched.BatchedEngine` shared across calls).
        ``None`` keeps the classic per-KPI :func:`~repro.core.kcd.kcd_matrix`
        path.

    Returns
    -------
    list of CorrelationMatrix
        One matrix per KPI, in ``kpi_names`` order.
    """
    if engine is not None:
        if measure is not None:
            raise ValueError("pass either engine or measure, not both")
        return engine.matrices(window, kpi_names, max_delay=max_delay, active=active)
    data = np.asarray(window, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(
            f"expected (n_databases, n_kpis, n_points), got shape {data.shape}"
        )
    if data.shape[1] != len(kpi_names):
        raise ValueError(
            f"window has {data.shape[1]} KPI rows but {len(kpi_names)} names"
        )
    return [
        CorrelationMatrix.from_window(
            kpi, data[:, index, :], max_delay=max_delay, active=active,
            measure=measure,
        )
        for index, kpi in enumerate(kpi_names)
    ]
