"""Data processing module: per-KPI, per-database sample queues.

The paper's data processing module maintains one queue per (KPI, database)
pair, fed by the bypass monitoring system every 5 seconds.  This module
implements those queues as one ring buffer of ``(n_databases, n_kpis)``
ticks with an absolute tick index, so the streaming detector can ask for
any window ``[start, end)`` that has not been trimmed yet.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

__all__ = ["KPIStreams"]


class KPIStreams:
    """Growable buffer of monitoring ticks for one unit.

    Parameters
    ----------
    n_databases:
        Number of databases in the unit (``N``).
    kpi_names:
        Monitored KPI names (``Q`` of them).
    capacity_hint:
        Initial buffer allocation in ticks; the buffer doubles as needed.
    """

    def __init__(
        self,
        n_databases: int,
        kpi_names: Sequence[str],
        capacity_hint: int = 256,
    ):
        if n_databases < 1:
            raise ValueError("need at least one database")
        if not kpi_names:
            raise ValueError("need at least one KPI")
        self._n_databases = n_databases
        self._kpi_names = tuple(kpi_names)
        self._buffer = np.zeros(
            (max(capacity_hint, 16), n_databases, len(kpi_names)), dtype=np.float64
        )
        #: Absolute index of the first tick still held in the buffer.
        self._base = 0
        #: Number of ticks currently held.
        self._length = 0

    @property
    def n_databases(self) -> int:
        return self._n_databases

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return self._kpi_names

    @property
    def n_kpis(self) -> int:
        return len(self._kpi_names)

    @property
    def first_tick(self) -> int:
        """Absolute index of the oldest buffered tick."""
        return self._base

    @property
    def next_tick(self) -> int:
        """Absolute index one past the newest buffered tick."""
        return self._base + self._length

    def __len__(self) -> int:
        return self._length

    def append(self, sample: np.ndarray) -> None:
        """Append one tick of shape ``(n_databases, n_kpis)``."""
        tick = np.asarray(sample, dtype=np.float64)
        expected = (self._n_databases, self.n_kpis)
        if tick.shape != expected:
            raise ValueError(f"expected tick of shape {expected}, got {tick.shape}")
        if self._length == self._buffer.shape[0]:
            grown = np.zeros(
                (self._buffer.shape[0] * 2,) + self._buffer.shape[1:], dtype=np.float64
            )
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
        self._buffer[self._length] = tick
        self._length += 1

    def extend(self, samples: np.ndarray) -> None:
        """Append many ticks of shape ``(n_ticks, n_databases, n_kpis)``."""
        block = np.asarray(samples, dtype=np.float64)
        expected = (self._n_databases, self.n_kpis)
        if block.ndim != 3 or block.shape[1:] != expected:
            raise ValueError(
                f"expected (n_ticks, {expected[0]}, {expected[1]}), "
                f"got {block.shape}"
            )
        n_new = block.shape[0]
        if not n_new:
            return
        capacity = self._buffer.shape[0]
        if self._length + n_new > capacity:
            while capacity < self._length + n_new:
                capacity *= 2
            grown = np.zeros(
                (capacity,) + self._buffer.shape[1:], dtype=np.float64
            )
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
        self._buffer[self._length : self._length + n_new] = block
        self._length += n_new

    def window(self, start: int, end: int) -> np.ndarray:
        """Samples for absolute ticks ``[start, end)``.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(n_databases, n_kpis, end - start)`` — the
            layout the correlation-measurement module consumes.
        """
        if end <= start:
            raise ValueError("window end must be greater than start")
        if start < self._base:
            raise ValueError(
                f"tick {start} was trimmed (oldest available is {self._base})"
            )
        if end > self.next_tick:
            raise ValueError(
                f"tick {end} not collected yet (next tick is {self.next_tick})"
            )
        lo = start - self._base
        hi = end - self._base
        # Buffer layout is (tick, db, kpi); the detector wants (db, kpi, tick).
        return np.ascontiguousarray(self._buffer[lo:hi].transpose(1, 2, 0))

    def finite_databases(self, start: int, end: int) -> np.ndarray:
        """Per-database mask of fully finite data over ``[start, end)``.

        Degraded telemetry (monitor blackouts, NaN gauges, failovers) can
        leave NaN/inf holes in the buffer.  The detector uses this mask to
        shrink the ``active`` set fed to the correlation measurement for
        the round instead of letting non-finite values reach
        ``minmax_normalize`` — which would silently flatten the series and
        mis-score the database as maximally decorrelated.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(n_databases,)``; ``True`` where every
            KPI point of the database in the window is finite.
        """
        if end <= start:
            raise ValueError("window end must be greater than start")
        if start < self._base:
            raise ValueError(
                f"tick {start} was trimmed (oldest available is {self._base})"
            )
        if end > self.next_tick:
            raise ValueError(
                f"tick {end} not collected yet (next tick is {self.next_tick})"
            )
        lo = start - self._base
        hi = end - self._base
        # Buffer layout is (tick, db, kpi); reduce over tick and kpi axes.
        return np.isfinite(self._buffer[lo:hi]).all(axis=(0, 2))

    @property
    def capacity(self) -> int:
        """Ticks the current allocation can hold without growing."""
        return self._buffer.shape[0]

    def trim(self, keep_from: int) -> None:
        """Drop all ticks before the absolute index ``keep_from``.

        When the retained tail occupies under a quarter of a large
        allocation, the buffer is also reallocated smaller, so a one-off
        backlog burst (e.g. a batch replay through ``process``)
        does not pin its peak footprint for the rest of a long-running
        serve.
        """
        if keep_from <= self._base:
            return
        drop = min(keep_from - self._base, self._length)
        if not drop:
            return
        capacity = self._buffer.shape[0]
        remaining = self._length - drop
        if capacity > 64 and capacity > 4 * max(remaining, 16):
            shrunk = np.zeros(
                (max(2 * remaining, 16),) + self._buffer.shape[1:],
                dtype=np.float64,
            )
            shrunk[:remaining] = self._buffer[drop : self._length]
            self._buffer = shrunk
        else:
            self._buffer[:remaining] = self._buffer[drop : self._length]
        self._length = remaining
        self._base += drop

    def fast_forward(self, tick: int) -> None:
        """Advance past ``tick`` even beyond the buffered data.

        :meth:`trim` refuses to drop ticks it never held; WAL replay
        needs exactly that — a restored detector applies recorded rounds
        without their underlying samples, so the stream must jump its
        absolute base to the round's end and resume ingestion there.
        """
        if tick <= self._base:
            return
        if tick >= self.next_tick:
            self._base = tick
            self._length = 0
            return
        self.trim(tick)

    def to_state(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of the buffered tail (see repro.persist)."""
        return {
            "base": self._base,
            "ticks": self._buffer[: self._length].tolist(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`to_state` snapshot in place."""
        expected = (self._n_databases, self.n_kpis)
        block = np.asarray(state["ticks"], dtype=np.float64)
        if block.size == 0:
            block = np.zeros((0,) + expected, dtype=np.float64)
        if block.ndim != 3 or block.shape[1:] != expected:
            raise ValueError(
                f"stream state shaped {block.shape} does not fit a unit of "
                f"{expected[0]} databases x {expected[1]} KPIs"
            )
        self._length = 0
        self._base = int(state["base"])
        self.extend(block)
