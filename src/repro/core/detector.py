"""DBCatcher streaming detector.

Ties the four modules of Figure 6 together.  Monitoring ticks enter through
:meth:`DBCatcher.process`; whenever the initial window ``W`` fills, a
*detection round* runs: the correlation-measurement module (the KCD engine
selected by ``DBCatcherConfig.backend``) builds the ``Q`` correlation
matrices, Algorithm 1 assigns correlation levels, and the Fig. 7 state
machine resolves each database to HEALTHY or ABNORMAL — expanding the
window by ``Delta`` (waiting for more ticks if necessary) while any
database stays OBSERVABLE.  Each resolved database yields a
:class:`~repro.core.records.JudgementRecord`; completed rounds advance the
stream cursor by the round's final window size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.levels import calculate_levels
from repro.core.matrices import CorrelationMatrix
from repro.core.records import DatabaseState, JudgementRecord
from repro.core.streams import KPIStreams
from repro.core.window import FlexibleWindow
from repro.obs import runtime as obs

__all__ = ["DBCatcher", "UnitDetectionResult"]

#: Sentinel distinguishing "kwarg omitted" from an explicit ``None`` in
#: :meth:`DBCatcher.from_state`'s ``history_limit`` retention override.
_UNSET = object()


@dataclass(frozen=True)
class UnitDetectionResult:
    """Outcome of one completed detection round for a unit.

    Parameters
    ----------
    start, end:
        Absolute tick span ``[start, end)`` the round consumed; ``end -
        start`` is the round's final (possibly expanded) window size.
    records:
        One judgement record per active database, keyed by database index.
    matrices:
        The ``Q`` per-pair KCD correlation matrices of the round's *final*
        evaluated window, in KPI order — the evidence behind the verdict,
        kept so :mod:`repro.rca` can rank culprit databases and KPIs
        without re-running the engine.  ``None`` when the round resolved
        without a correlation pass (degraded telemetry left fewer than two
        judgeable databases).
    active:
        The in-use database mask of the final evaluated window (finite
        data and not deactivated), or ``None`` alongside a ``None``
        ``matrices``.  Attribution must only rank databases that actually
        participated in the correlation evidence.
    """

    start: int
    end: int
    records: Dict[int, JudgementRecord]
    matrices: Optional[Tuple[CorrelationMatrix, ...]] = None
    active: Optional[Tuple[bool, ...]] = None

    @property
    def window_size(self) -> int:
        return self.end - self.start

    @property
    def abnormal_databases(self) -> Tuple[int, ...]:
        """Indices of databases judged abnormal in this round."""
        return tuple(
            sorted(
                db
                for db, record in self.records.items()
                if record.state is DatabaseState.ABNORMAL
            )
        )


@dataclass
class _RoundState:
    """Mutable bookkeeping for the in-progress detection round."""

    start: int
    size: int
    expansions: int = 0
    pending: List[int] = field(default_factory=list)
    records: Dict[int, JudgementRecord] = field(default_factory=dict)
    #: Matrices and mask of the latest evaluated window, retained so the
    #: finished result carries its correlation evidence for RCA.
    matrices: Optional[Tuple[CorrelationMatrix, ...]] = None
    round_active: Optional[Tuple[bool, ...]] = None


class DBCatcher:
    """Online anomaly detector for one cloud-database unit.

    Parameters
    ----------
    config:
        Detector thresholds, window geometry, compute ``backend`` and
        ``history_limit`` — the single construction-time knob surface.
    n_databases:
        Number of databases in the unit.
    active:
        Optional in-use mask; inactive databases neither receive judgements
        nor influence their peers' correlation levels.
    measure:
        Optional replacement correlation measure with signature
        ``measure(x, y, max_delay) -> float``; ``None`` uses the KCD.
        Exists for the Table X comparators (MM-Pearson, MM-DTW); a custom
        measure always runs on the reference engine.

    Notes
    -----
    A detector with ``measure=None`` is picklable (plain config, numpy
    buffers and dataclass records), which is what lets the fleet
    scheduler ship per-unit detectors into worker processes.  A custom
    ``measure`` must itself be picklable to cross that boundary.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import DBCatcher, DBCatcherConfig
    >>> config = DBCatcherConfig(kpi_names=("cpu",), initial_window=8,
    ...                          max_window=16)
    >>> catcher = DBCatcher(config, n_databases=3)
    >>> trend = np.sin(np.linspace(0, 3, 8))
    >>> ticks = np.stack([np.stack([trend + 0.01 * d]) for d in range(3)])
    >>> results = catcher.process(ticks.transpose(2, 0, 1))
    >>> [r.abnormal_databases for r in results]
    [()]
    """

    def __init__(
        self,
        config: DBCatcherConfig,
        n_databases: int,
        active: Optional[Sequence[bool]] = None,
        measure=None,
    ):
        # Local import: repro.engine depends on repro.core.config, so a
        # module-level import here would close an import cycle.
        from repro.engine.base import make_engine

        if n_databases < 2:
            raise ValueError("UKPIC needs at least two databases in a unit")
        self._config = config
        self._n_databases = n_databases
        if active is None:
            self._active = np.ones(n_databases, dtype=bool)
        else:
            self._active = np.asarray(active, dtype=bool)
            if self._active.shape != (n_databases,):
                raise ValueError("active mask must have one entry per database")
        self._measure = measure
        self._engine = make_engine(config.backend, measure=measure)
        self._streams = KPIStreams(n_databases, config.kpi_names)
        self._window_ctl = FlexibleWindow(config)
        self._round: Optional[_RoundState] = None
        self._cursor = 0
        self._history: List[JudgementRecord] = []
        self._results: List[UnitDetectionResult] = []
        self._rounds_completed = 0
        #: Cumulative seconds per component (Section IV-D4's breakdown):
        #: "correlation" covers the correlation-measurement module,
        #: "observation" the flexible-window level/state machinery.
        self.component_seconds: Dict[str, float] = {
            "correlation": 0.0,
            "observation": 0.0,
        }

    @property
    def config(self) -> DBCatcherConfig:
        return self._config

    @property
    def n_databases(self) -> int:
        return self._n_databases

    @property
    def engine(self):
        """The KCD compute engine this detector runs rounds through."""
        return self._engine

    @property
    def history(self) -> Tuple[JudgementRecord, ...]:
        """All judgement records emitted so far, in completion order."""
        return tuple(self._history)

    @property
    def cursor(self) -> int:
        """Absolute tick where the next detection round starts."""
        return self._cursor

    @property
    def next_tick(self) -> int:
        """Absolute index one past the newest tick this detector has seen."""
        return self._streams.next_tick

    @property
    def results(self) -> Tuple[UnitDetectionResult, ...]:
        """All completed rounds so far."""
        return tuple(self._results)

    def set_active(self, active: Sequence[bool]) -> None:
        """Update the in-use mask (databases expanded or reduced).

        Takes effect from the next detection round; the in-progress round
        keeps its membership so its records stay internally consistent.
        """
        mask = np.asarray(active, dtype=bool)
        if mask.shape != (self._n_databases,):
            raise ValueError("active mask must have one entry per database")
        self._active = mask

    def install_config(self, config: DBCatcherConfig) -> None:
        """Swap in a new configuration (e.g. learned thresholds).

        The KPI set and window geometry must stay compatible with the data
        already buffered, so only the KPI count is enforced.
        """
        if config.n_kpis != self._config.n_kpis:
            raise ValueError("new config must keep the same number of KPIs")
        from repro.engine.base import make_engine

        self._config = config
        self._window_ctl = FlexibleWindow(config)
        self._engine = make_engine(config.backend, measure=self._measure)

    def process(
        self, samples: np.ndarray, time_axis: int = 0
    ) -> List[UnitDetectionResult]:
        """Feed monitoring data and run every round it unblocks.

        The one ingestion entry point: a 2-D array is a single tick, a 3-D
        array is a block of ticks.

        Parameters
        ----------
        samples:
            ``(n_databases, n_kpis)`` for one tick, or a 3-D block whose
            time axis is named by ``time_axis``.
        time_axis:
            Position of the tick axis in a 3-D block: ``0`` (default) for
            streaming layout ``(n_ticks, n_databases, n_kpis)``; ``-1`` or
            ``2`` for the :mod:`repro.datasets` layout ``(n_databases,
            n_kpis, n_ticks)``.  Ignored for single ticks.

        Returns
        -------
        list of UnitDetectionResult
            Rounds completed by this data (possibly empty; more than one
            when a backlog unblocks several rounds at once).
        """
        data = np.asarray(samples, dtype=np.float64)
        if data.ndim == 2:
            self._streams.append(data)
            return self._drain()
        if data.ndim != 3:
            raise ValueError(
                "expected one (n_databases, n_kpis) tick or a 3-D block, "
                f"got shape {data.shape}"
            )
        axis = data.ndim + time_axis if time_axis < 0 else time_axis
        if axis == 0:
            block = data
        elif axis == 2:
            block = data.transpose(2, 0, 1)
        else:
            raise ValueError(
                f"time_axis must be 0 or -1/2 for a 3-D block, got {time_axis}"
            )
        self._streams.extend(block)
        return self._drain()

    def _drain(self) -> List[UnitDetectionResult]:
        """Run detection rounds while buffered data allows."""
        completed: List[UnitDetectionResult] = []
        while True:
            result = self._step_round()
            if result is None:
                break
            completed.append(result)
        return completed

    def _step_round(self) -> Optional[UnitDetectionResult]:
        """Advance the current round; return it if it completed."""
        if self._round is None:
            if self._streams.next_tick < self._cursor + self._config.initial_window:
                # Not enough data to even open a round; deferring creation
                # lets set_active() changes apply up to the moment the
                # round actually starts.
                return None
            pending = [db for db in range(self._n_databases) if self._active[db]]
            if len(pending) < 2:
                # Correlation evidence needs at least two active databases;
                # with fewer, DBCatcher has nothing to compare and idles.
                # Idling must not hoard ticks: consume them unjudged so a
                # long-running serve loop keeps the buffer bounded, and a
                # later re-activation starts a fresh window from live data.
                self._cursor = self._streams.next_tick
                self._streams.trim(self._cursor)
                return None
            self._round = _RoundState(
                start=self._cursor,
                size=self._config.initial_window,
                pending=pending,
            )
        state = self._round
        while True:
            end = state.start + state.size
            if self._streams.next_tick < end:
                return None  # blocked until more ticks arrive
            with obs.span("detector.normalize"):
                window = self._streams.window(state.start, end)
                started = time.perf_counter()
                # Degraded-telemetry guard: a database with NaN/inf anywhere
                # in this window is treated as temporarily inactive for the
                # round.  Shrinking the mask keeps non-finite values out of
                # ``minmax_normalize`` (which would silently flatten the
                # series and mis-score the database as maximally
                # decorrelated) and out of its peers' correlation evidence.
                round_active = self._active & self._streams.finite_databases(
                    state.start, end
                )
            if not np.array_equal(round_active, self._active):
                # Databases without usable data this round get no
                # judgement record: a data gap is absence of evidence,
                # not evidence of health or abnormality.
                state.pending = [db for db in state.pending if round_active[db]]
            if int(round_active.sum()) < 2 or not state.pending:
                # Fewer than two databases with usable data (or nothing
                # left to judge): no correlation evidence is obtainable,
                # so resolve the round with whatever was already recorded
                # instead of expanding forever on a degraded window.
                self.component_seconds["correlation"] += (
                    time.perf_counter() - started
                )
                return self._finish_round(state)
            with obs.span("detector.correlate"):
                matrices = self._engine.matrices(
                    window,
                    self._config.kpi_names,
                    max_delay=self._config.max_delay(state.size),
                    active=round_active,
                    window_start=state.start,
                )
            state.matrices = tuple(matrices)
            state.round_active = tuple(bool(flag) for flag in round_active)
            after_correlation = time.perf_counter()
            self.component_seconds["correlation"] += after_correlation - started
            with obs.span("detector.threshold"):
                levels = calculate_levels(
                    matrices, self._config, active=round_active
                )
            still_pending: List[int] = []
            with obs.span("detector.verdict"):
                for db in state.pending:
                    decision = self._window_ctl.decide(
                        levels, db, state.size, state.expansions
                    )
                    if decision.final:
                        state.records[db] = JudgementRecord(
                            database=db,
                            window_start=state.start,
                            window_end=end,
                            state=decision.state,
                            expansions=decision.expansions,
                            kpi_levels=levels.for_database(db),
                        )
                    else:
                        still_pending.append(db)
            self.component_seconds["observation"] += (
                time.perf_counter() - after_correlation
            )
            if not still_pending:
                return self._finish_round(state)
            state.pending = still_pending
            state.size = self._window_ctl.expanded_size(state.size)
            state.expansions += 1
            obs.counter("detector.window_expansions").increment()

    def _finish_round(self, state: _RoundState) -> UnitDetectionResult:
        end = state.start + state.size
        result = UnitDetectionResult(
            start=state.start,
            end=end,
            records=dict(state.records),
            matrices=state.matrices,
            active=state.round_active,
        )
        self._results.append(result)
        self._rounds_completed += 1
        self._history.extend(
            state.records[db] for db in sorted(state.records)
        )
        self._enforce_history_limit()
        self._cursor = end
        self._round = None
        self._streams.trim(self._cursor)
        obs.counter("detector.rounds_completed").increment()
        obs.counter("detector.abnormal_verdicts").increment(
            len(result.abnormal_databases)
        )
        obs.gauge("detector.buffered_ticks").set(len(self._streams))
        return result

    def _enforce_history_limit(self) -> None:
        limit = self._config.history_limit
        if limit is None:
            return
        if len(self._results) > limit:
            del self._results[: len(self._results) - limit]
        record_limit = limit * self._n_databases
        if len(self._history) > record_limit:
            del self._history[: len(self._history) - record_limit]

    def to_state(self, *, healthy_matrices: bool = True) -> Dict[str, Any]:
        """Versioned, JSON-friendly durable state (see :mod:`repro.persist`).

        Captures everything a warm restart needs: config (including
        tuned thresholds), active mask, stream cursor and buffered tail,
        retained judgement records and round results, and the component
        timing totals.  An in-progress round is deliberately *not*
        captured — it is a pure function of the buffered ticks past the
        cursor, so :meth:`from_state` re-derives it deterministically
        the moment data resumes.  Engine caches rebuild lazily on the
        first round and only cost one warm-up correlation pass.

        ``healthy_matrices=False`` skips encoding the correlation
        matrices of retained *healthy* rounds; the persistence layer
        would strip them at the snapshot boundary anyway, so the export
        path avoids ever paying for them.
        """
        from repro.persist import codec

        if self._measure is not None:
            raise ValueError(
                "a detector with a custom measure cannot be persisted; "
                "only config-described detectors round-trip through JSON"
            )
        return {
            "version": codec.STATE_VERSION,
            "config": codec.encode_config(self._config),
            "n_databases": self._n_databases,
            "active": [bool(flag) for flag in self._active],
            "cursor": self._cursor,
            "rounds_completed": self._rounds_completed,
            "component_seconds": dict(self.component_seconds),
            "streams": self._streams.to_state(),
            "history": [codec.encode_record(r) for r in self._history],
            "results": [
                codec.encode_result(
                    r,
                    include_matrices=(
                        healthy_matrices or bool(r.abnormal_databases)
                    ),
                )
                for r in self._results
            ],
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, Any], history_limit: object = _UNSET
    ) -> "DBCatcher":
        """Rebuild a detector from a :meth:`to_state` payload.

        Parameters
        ----------
        state:
            A version-1 state payload.
        history_limit:
            Optional retention override (the worker pool owns retention
            policy, so a restored shard obeys the pool, not the config
            it was persisted under).  Omit to keep the persisted value.
        """
        from repro.persist import codec

        if state.get("version") != codec.STATE_VERSION:
            raise ValueError(
                f"unsupported detector state version {state.get('version')!r}"
            )
        config = codec.decode_config(state["config"])
        if history_limit is not _UNSET:
            config = replace(config, history_limit=history_limit)
        detector = cls(
            config,
            n_databases=int(state["n_databases"]),
            active=[bool(flag) for flag in state["active"]],
        )
        detector._cursor = int(state["cursor"])
        detector._rounds_completed = int(state["rounds_completed"])
        detector.component_seconds = {
            str(k): float(v) for k, v in state["component_seconds"].items()
        }
        detector._streams.load_state(state["streams"])
        detector._history = [
            codec.decode_record(r) for r in state["history"]
        ]
        detector._results = [
            codec.decode_result(r) for r in state["results"]
        ]
        detector._enforce_history_limit()
        return detector

    def apply_result(self, result: UnitDetectionResult) -> None:
        """Fast-forward over an already-computed round (WAL replay).

        Recovery applies recorded rounds without recomputation: the
        result and its records join the retained history, the cursor and
        stream base jump to the round's end, and ingestion resumes from
        there.  Rounds must be applied in order from the current cursor.
        """
        if result.start != self._cursor:
            raise ValueError(
                f"round starts at tick {result.start} but the cursor is at "
                f"{self._cursor}; WAL replay must be gapless and in order"
            )
        self._round = None
        self._results.append(result)
        self._rounds_completed += 1
        self._history.extend(result.records[db] for db in sorted(result.records))
        self._enforce_history_limit()
        self._cursor = result.end
        self._streams.fast_forward(result.end)

    def export_state(self) -> Dict[str, object]:
        """Operational snapshot for the service's worker telemetry.

        Everything here is a plain scalar/dict so the snapshot crosses
        process boundaries and serializes to JSON without ceremony.
        """
        return {
            "cursor": self._cursor,
            "next_tick": self._streams.next_tick,
            "buffered_ticks": len(self._streams),
            "round_open": self._round is not None,
            "rounds_completed": self._rounds_completed,
            "records_retained": len(self._history),
            "component_seconds": dict(self.component_seconds),
        }

    def average_window_size(self) -> float:
        """Mean final window size over all completed rounds.

        The paper reports this stays close to ``W`` because only a small
        fraction of rounds expands; the §IV-D efficiency benches check it.
        """
        if not self._results:
            return float(self._config.initial_window)
        return float(np.mean([r.window_size for r in self._results]))
