"""Correlation levels (Algorithm 1) and the ScoreToLevel mapping.

Every (database, KPI) pair gets a *correlation level* derived from the
database's KCD scores against its unit peers:

* **level-1** — extreme deviation: the database no longer tracks any peer;
* **level-2** — slight deviation: correlation dipped into the tolerance
  band ``[alpha - theta, alpha)``;
* **level-3** — correlated: the database tracks its peers normally.

The paper's prose for ``ScoreToLevel`` is ambiguous (it says both
"less than alpha" and "between alpha and alpha - theta" map somewhere);
we use the only internally consistent reading: scores below
``alpha - theta`` are level-1, scores in ``[alpha - theta, alpha)`` are
level-2, and scores at or above ``alpha`` are level-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.matrices import CorrelationMatrix

__all__ = [
    "LEVEL_EXTREME_DEVIATION",
    "LEVEL_SLIGHT_DEVIATION",
    "LEVEL_CORRELATED",
    "score_to_level",
    "aggregate_peer_scores",
    "CorrelationLevels",
    "calculate_levels",
]

LEVEL_EXTREME_DEVIATION = 1
LEVEL_SLIGHT_DEVIATION = 2
LEVEL_CORRELATED = 3


def score_to_level(score: float, alpha: float, theta: float) -> int:
    """Map one KCD score to a correlation level.

    Parameters
    ----------
    score:
        Aggregated KCD of a database against its peers, in ``[-1, 1]``.
    alpha:
        Correlation threshold for this KPI.
    theta:
        Tolerance threshold; the level-2 band is ``[alpha - theta, alpha)``.
    """
    if score >= alpha:
        return LEVEL_CORRELATED
    if score >= alpha - theta:
        return LEVEL_SLIGHT_DEVIATION
    return LEVEL_EXTREME_DEVIATION


def aggregate_peer_scores(scores: np.ndarray, how: str) -> float:
    """Collapse a database's per-peer KCD list into a single score.

    ``max`` is DBCatcher's default: a database is deviating only if it
    tracks *no* peer; see :mod:`repro.core.config` for the rationale.
    An empty score list (single active database) aggregates to ``1.0`` —
    with no peers there is no correlation evidence against the database.
    """
    values = np.asarray(scores, dtype=np.float64)
    if values.size == 0:
        return 1.0
    if how == "max":
        return float(values.max())
    if how == "median":
        return float(np.median(values))
    if how == "mean":
        return float(values.mean())
    raise ValueError(f"unknown aggregation {how!r}")


@dataclass(frozen=True)
class CorrelationLevels:
    """Correlation levels of every database over every KPI for one window.

    ``levels[d, k]`` is the level of database ``d`` on KPI ``k``; inactive
    databases carry level-3 everywhere (they do not participate, Alg. 1).
    """

    kpi_names: Tuple[str, ...]
    levels: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        lv = np.asarray(self.levels, dtype=np.int64)
        sc = np.asarray(self.scores, dtype=np.float64)
        if lv.ndim != 2 or lv.shape[1] != len(self.kpi_names):
            raise ValueError(
                f"levels must be (n_databases, {len(self.kpi_names)}), got {lv.shape}"
            )
        if sc.shape != lv.shape:
            raise ValueError("scores and levels must have the same shape")
        if lv.size and (lv.min() < LEVEL_EXTREME_DEVIATION or lv.max() > LEVEL_CORRELATED):
            raise ValueError("levels must lie in {1, 2, 3}")
        object.__setattr__(self, "levels", lv)
        object.__setattr__(self, "scores", sc)

    @property
    def n_databases(self) -> int:
        return self.levels.shape[0]

    def for_database(self, database: int) -> Dict[str, int]:
        """KPI-name to level mapping for one database."""
        return {
            kpi: int(self.levels[database, index])
            for index, kpi in enumerate(self.kpi_names)
        }

    def count(self, database: int, level: int) -> int:
        """Number of KPIs of a database at the given level."""
        return int(np.count_nonzero(self.levels[database] == level))


def calculate_levels(
    matrices: Sequence[CorrelationMatrix],
    config: DBCatcherConfig,
    active: np.ndarray | None = None,
) -> CorrelationLevels:
    """Algorithm 1: correlation levels for every database and KPI.

    Parameters
    ----------
    matrices:
        The ``Q`` correlation matrices of one observation window, in the
        same order as ``config.kpi_names``.
    config:
        Supplies the per-KPI thresholds ``alpha_i``, the tolerance ``theta``
        and the peer aggregation rule.
    active:
        Optional in-use database mask; inactive databases do not
        participate and receive level-3 (no evidence against them).

    Returns
    -------
    CorrelationLevels
        The level dictionary ``D`` of Algorithm 1 in array form, plus the
        aggregated scores that produced each level (useful for reports).
    """
    if len(matrices) != config.n_kpis:
        raise ValueError(
            f"expected {config.n_kpis} correlation matrices, got {len(matrices)}"
        )
    n_dbs = matrices[0].n_databases
    for matrix in matrices:
        if matrix.n_databases != n_dbs:
            raise ValueError("all correlation matrices must share a dimension")
    if active is None:
        active_mask = np.ones(n_dbs, dtype=bool)
    else:
        active_mask = np.asarray(active, dtype=bool)
        if active_mask.shape != (n_dbs,):
            raise ValueError("active mask must have one entry per database")

    rr_only = set(config.rr_only_kpis)
    primary = config.primary_index
    levels = np.full((n_dbs, config.n_kpis), LEVEL_CORRELATED, dtype=np.int64)
    scores = np.ones((n_dbs, config.n_kpis), dtype=np.float64)
    for kpi_index, matrix in enumerate(matrices):
        alpha = config.alphas[kpi_index]
        kpi_mask = active_mask
        if config.kpi_names[kpi_index] in rr_only and primary is not None:
            # Table II: this KPI's UKPIC holds only among replicas — the
            # primary neither gets judged on it nor serves as a peer.
            kpi_mask = active_mask.copy()
            if primary < n_dbs:
                kpi_mask[primary] = False
        for db in range(n_dbs):
            if not kpi_mask[db]:
                continue
            peer_scores = matrix.scores_for(db, active=kpi_mask)
            aggregated = aggregate_peer_scores(peer_scores, config.peer_aggregation)
            scores[db, kpi_index] = aggregated
            levels[db, kpi_index] = score_to_level(aggregated, alpha, config.theta)
    return CorrelationLevels(
        kpi_names=config.kpi_names, levels=levels, scores=scores
    )
