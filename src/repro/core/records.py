"""Database states and judgement records.

The streaming detection module emits one :class:`JudgementRecord` per
database per completed observation round.  Records carry everything the
online feedback module needs: the final state, the window geometry, and the
per-KPI correlation levels that led to the verdict.  DBAs later *mark* each
record as correct or not; the marked records are the training signal for the
adaptive threshold learner (Section III-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["DatabaseState", "JudgementRecord"]


class DatabaseState(enum.Enum):
    """Tri-state verdict of the flexible time window observation (Fig. 7).

    ``OBSERVABLE`` is transitional only: it triggers a window expansion and
    never appears in a finished judgement record unless the caller asks for
    intermediate states.
    """

    HEALTHY = "healthy"
    OBSERVABLE = "observable"
    ABNORMAL = "abnormal"

    @property
    def is_final(self) -> bool:
        """Whether this state ends an observation round."""
        return self is not DatabaseState.OBSERVABLE


@dataclass(frozen=True)
class JudgementRecord:
    """One finished database-state judgement.

    Parameters
    ----------
    database:
        Index of the judged database inside its unit.
    window_start, window_end:
        Tick range (half-open) of the *final* (possibly expanded) window the
        verdict was computed on.
    state:
        The final :class:`DatabaseState` (HEALTHY or ABNORMAL).
    window_size:
        Number of points in the final window; equals
        ``window_end - window_start``.
    expansions:
        How many times the flexible window grew before the verdict.
    kpi_levels:
        Mapping from KPI name to the correlation level (1, 2 or 3) at the
        final window.
    dba_label:
        Ground-truth mark added by the online feedback module: ``True`` if
        the database really was abnormal in this window, ``None`` while
        unmarked.
    """

    database: int
    window_start: int
    window_end: int
    state: DatabaseState
    expansions: int = 0
    kpi_levels: Dict[str, int] = field(default_factory=dict)
    dba_label: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise ValueError("window_end must be greater than window_start")
        if not self.state.is_final:
            raise ValueError("judgement records must carry a final state")
        if self.expansions < 0:
            raise ValueError("expansions must be >= 0")

    @property
    def window_size(self) -> int:
        """Number of points in the final observation window."""
        return self.window_end - self.window_start

    @property
    def predicted_abnormal(self) -> bool:
        """Whether the detector called this window abnormal."""
        return self.state is DatabaseState.ABNORMAL

    def marked(self, truly_abnormal: bool) -> "JudgementRecord":
        """Copy of this record with the DBA ground-truth mark applied."""
        return JudgementRecord(
            database=self.database,
            window_start=self.window_start,
            window_end=self.window_end,
            state=self.state,
            expansions=self.expansions,
            kpi_levels=dict(self.kpi_levels),
            dba_label=bool(truly_abnormal),
        )

    def confusion_cell(self) -> Tuple[int, int, int, int]:
        """This record's contribution as ``(TP, FP, TN, FN)``.

        Raises
        ------
        ValueError
            If the record has not been marked by a DBA yet.
        """
        if self.dba_label is None:
            raise ValueError("record is unmarked; cannot score it")
        predicted = self.predicted_abnormal
        actual = self.dba_label
        return (
            int(predicted and actual),
            int(predicted and not actual),
            int(not predicted and not actual),
            int(not predicted and actual),
        )
