"""Key Correlation Distance (KCD): delay-tolerant trend correlation.

Implements Section III-B of the paper.  Two same-KPI series from databases
of one unit may be offset by a small *point-in-time delay* caused by the
collection pipeline.  The KCD therefore evaluates a normalized
cross-correlation at every candidate delay ``s`` in ``[-m, m]`` (where
``m = n // 2``) and keeps the best score:

* Eq. (1) — min-max normalize both series;
* Eq. (2)/(3) — for each delay ``s``, correlate the overlapping portions
  ``x[s:]`` against ``y[:n-s]`` (and the mirrored case for ``s < 0``);
* Eq. (4) — normalize each lagged product sum by the L2 norms of the
  centered overlapping segments and take the maximum over delays.

The resulting score lies in ``[-1, 1]``; values near ``1`` mean the two
databases share the same trend (possibly shifted), low values mean the
trend of one database has deviated — the anomaly signal DBCatcher uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.normalize import minmax_normalize
from repro.obs import runtime as obs

__all__ = ["kcd", "kcd_matrix", "lagged_correlation_profile"]

#: Score assigned when both series are flat: two idle databases trivially
#: share the same (empty) trend and must not be flagged as deviating.
_BOTH_FLAT_SCORE = 1.0

#: Score assigned when exactly one series is flat: one database shows a trend
#: the other does not follow, which is maximal decorrelation evidence.
_ONE_FLAT_SCORE = 0.0

#: Shared flatness criterion: a segment is flat when its centered variance
#: is below ``_FLAT_REL_VAR`` of its raw sum of squares (plus an absolute
#: floor for all-zero segments).  Judging flatness *relative* to the
#: segment's magnitude absorbs the ~1e-15 cancellation residue float math
#: leaves on mathematically constant segments.  Every profile
#: implementation uses this one rule so the differential oracle test can
#: demand elementwise agreement.
_FLAT_REL_VAR = 1e-9
_FLAT_ABS_VAR = 1e-30


def _centered_segment_score(x_seg: np.ndarray, y_seg: np.ndarray) -> float:
    """Correlation of two aligned segments, centered on their own means.

    This is the per-delay term of Eq. (3)/(4).  Segments that are flat
    after centering have a zero norm; see the module constants for how the
    degenerate cases are scored.
    """
    x_c = x_seg - x_seg.mean()
    y_c = y_seg - y_seg.mean()
    var_x = float(np.dot(x_c, x_c))
    var_y = float(np.dot(y_c, y_c))
    x_flat = var_x <= _FLAT_REL_VAR * (float(np.dot(x_seg, x_seg)) + _FLAT_ABS_VAR)
    y_flat = var_y <= _FLAT_REL_VAR * (float(np.dot(y_seg, y_seg)) + _FLAT_ABS_VAR)
    if x_flat and y_flat:
        return _BOTH_FLAT_SCORE
    if x_flat or y_flat:
        return _ONE_FLAT_SCORE
    return float(np.dot(x_c, y_c) / np.sqrt(var_x * var_y))


def _profile_reference(x_arr: np.ndarray, y_arr: np.ndarray, m: int) -> np.ndarray:
    """Straightforward per-lag loop; kept as the oracle for the fast path."""
    n = x_arr.shape[0]
    profile = np.empty(2 * m + 1, dtype=np.float64)
    for offset, delay in enumerate(range(-m, m + 1)):
        if delay >= 0:
            x_seg = x_arr[delay:]
            y_seg = y_arr[: n - delay]
        else:
            x_seg = x_arr[: n + delay]
            y_seg = y_arr[-delay:]
        profile[offset] = _centered_segment_score(x_seg, y_seg)
    return profile


def _profile_fast(x_arr: np.ndarray, y_arr: np.ndarray, m: int) -> np.ndarray:
    """All lags at once via one cross-correlation plus prefix sums.

    For every lag the overlapping segments' dot product comes from one
    ``np.correlate`` call, and their means/norms from cumulative sums, so
    the whole profile costs O(n^2) flops in vectorized numpy instead of
    ``2m + 1`` Python-level passes.  This is the library's hot path: the
    paper measures correlation computation at ~70 % of detection time.
    """
    n = x_arr.shape[0]
    lags = np.arange(-m, m + 1)
    lengths = (n - np.abs(lags)).astype(np.float64)

    # Raw segment dot products for every lag:
    # full cross-correlation c[k] = sum_i x[i + k - (n-1)] * y[i].
    correlation = np.correlate(x_arr, y_arr, mode="full")
    dots = correlation[(n - 1) + lags]

    # Segment sums / sums of squares via prefix and suffix cumsums.
    x_prefix = np.concatenate(([0.0], np.cumsum(x_arr)))
    y_prefix = np.concatenate(([0.0], np.cumsum(y_arr)))
    x2_prefix = np.concatenate(([0.0], np.cumsum(x_arr**2)))
    y2_prefix = np.concatenate(([0.0], np.cumsum(y_arr**2)))

    sum_x = np.empty_like(lengths)
    sum_y = np.empty_like(lengths)
    sum_x2 = np.empty_like(lengths)
    sum_y2 = np.empty_like(lengths)
    non_negative = lags >= 0
    s_pos = lags[non_negative]
    # lag s >= 0: x[s:], y[:n-s].
    sum_x[non_negative] = x_prefix[n] - x_prefix[s_pos]
    sum_x2[non_negative] = x2_prefix[n] - x2_prefix[s_pos]
    sum_y[non_negative] = y_prefix[n - s_pos]
    sum_y2[non_negative] = y2_prefix[n - s_pos]
    s_neg = -lags[~non_negative]
    # lag s < 0: x[:n+s], y[-s:].
    sum_x[~non_negative] = x_prefix[n - s_neg]
    sum_x2[~non_negative] = x2_prefix[n - s_neg]
    sum_y[~non_negative] = y_prefix[n] - y_prefix[s_neg]
    sum_y2[~non_negative] = y2_prefix[n] - y2_prefix[s_neg]

    mean_x = sum_x / lengths
    mean_y = sum_y / lengths
    centered_dot = dots - lengths * mean_x * mean_y
    var_x = sum_x2 - lengths * mean_x**2
    var_y = sum_y2 - lengths * mean_y**2
    norm_x = np.sqrt(np.clip(var_x, 0.0, None))
    norm_y = np.sqrt(np.clip(var_y, 0.0, None))

    flat_x = var_x <= _FLAT_REL_VAR * (sum_x2 + _FLAT_ABS_VAR)
    flat_y = var_y <= _FLAT_REL_VAR * (sum_y2 + _FLAT_ABS_VAR)
    denominator = np.where(flat_x | flat_y, 1.0, norm_x * norm_y)
    profile = centered_dot / denominator
    profile[flat_x & flat_y] = _BOTH_FLAT_SCORE
    profile[flat_x ^ flat_y] = _ONE_FLAT_SCORE
    if obs.is_enabled():
        obs.counter("kcd.flat_segments").increment(
            int(np.count_nonzero(flat_x | flat_y))
        )
    return np.clip(profile, -1.0, 1.0)


def lagged_correlation_profile(
    x: np.ndarray,
    y: np.ndarray,
    max_delay: int | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Correlation score at every candidate delay (the ``cs`` queue).

    Parameters
    ----------
    x, y:
        Same-KPI series of equal length ``n`` from two databases.
    max_delay:
        Largest delay magnitude ``m`` to scan.  Defaults to ``n // 2`` as in
        the paper (``n = 2m``).
    normalize:
        Apply Eq. (1) min-max normalization first.  Disable only when the
        caller already normalized.

    Returns
    -------
    numpy.ndarray
        Array of ``2 * m + 1`` scores for delays ``-m .. m``; index ``m``
        is the zero-delay (plain Pearson) score.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.ndim != 1 or y_arr.ndim != 1:
        raise ValueError("kcd operates on 1-D series")
    if x_arr.shape != y_arr.shape:
        raise ValueError(
            f"series lengths differ: {x_arr.shape[0]} vs {y_arr.shape[0]}"
        )
    n = x_arr.shape[0]
    if n < 2:
        raise ValueError("need at least 2 data points to correlate")
    m = n // 2 if max_delay is None else int(max_delay)
    if m < 0 or m >= n:
        raise ValueError(f"max_delay must lie in [0, {n - 1}], got {m}")
    if normalize:
        x_arr = minmax_normalize(x_arr)
        y_arr = minmax_normalize(y_arr)
    obs.counter("kcd.profile_calls").increment()
    with obs.span("kcd.profile"):
        return _profile_fast(x_arr, y_arr, m)


def kcd(
    x: np.ndarray,
    y: np.ndarray,
    max_delay: int | None = None,
    normalize: bool = True,
) -> float:
    """Key Correlation Distance between two same-KPI series (Eq. 4).

    The maximum normalized lagged correlation over delays ``[-m, m]``.
    High (near 1) means the two databases follow the same trend up to a
    bounded point-in-time delay; low means the trends deviate.

    Examples
    --------
    >>> import numpy as np
    >>> t = np.linspace(0, 4 * np.pi, 40)
    >>> base = np.sin(t)
    >>> round(kcd(base, np.roll(base, 3)), 2) >= 0.95
    True
    """
    profile = lagged_correlation_profile(x, y, max_delay=max_delay, normalize=normalize)
    return float(profile.max())


def _row_prefix_sums(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row prefix sums and prefix sums of squares, zero-padded.

    The returned arrays have shape ``(n_rows, n + 1)`` so segment sums over
    ``[a, b)`` are ``prefix[:, b] - prefix[:, a]``.  Shared by the in-place
    fast path and the batched engine's incremental window cache.
    """
    n_rows = rows.shape[0]
    prefix = np.concatenate(
        [np.zeros((n_rows, 1)), np.cumsum(rows, axis=1)], axis=1
    )
    prefix_sq = np.concatenate(
        [np.zeros((n_rows, 1)), np.cumsum(rows**2, axis=1)], axis=1
    )
    return prefix, prefix_sq


def _pair_profiles_from_stats(
    dots: np.ndarray,
    prefix: np.ndarray,
    prefix_sq: np.ndarray,
    pairs_i: np.ndarray,
    pairs_j: np.ndarray,
    m: int,
    n: int,
) -> np.ndarray:
    """Finish batched lag profiles from raw dots and per-row prefix sums.

    Applies the mean/variance bookkeeping of Eq. (3)/(4) and the shared
    flat-sentinel rules elementwise over a ``(n_pairs, 2 * m + 1)`` grid.
    Both :func:`_pairwise_profiles` and the batched engine
    (:mod:`repro.engine.batched`) call this, so the two stay elementwise
    identical by construction.
    """
    lags = np.arange(-m, m + 1)
    lengths = (n - np.abs(lags)).astype(np.float64)
    positive = lags >= 0
    s_pos = lags[positive]
    s_neg = -lags[~positive]

    n_pairs = pairs_i.shape[0]
    n_lags = lags.shape[0]
    sum_x = np.empty((n_pairs, n_lags))
    sum_y = np.empty((n_pairs, n_lags))
    sum_x2 = np.empty((n_pairs, n_lags))
    sum_y2 = np.empty((n_pairs, n_lags))
    px, px2 = prefix[pairs_i], prefix_sq[pairs_i]
    py, py2 = prefix[pairs_j], prefix_sq[pairs_j]
    # lag s >= 0: x[s:], y[:n-s]; lag s < 0: x[:n+s], y[-s:].
    sum_x[:, positive] = px[:, [n]] - px[:, s_pos]
    sum_x2[:, positive] = px2[:, [n]] - px2[:, s_pos]
    sum_y[:, positive] = py[:, n - s_pos]
    sum_y2[:, positive] = py2[:, n - s_pos]
    sum_x[:, ~positive] = px[:, n - s_neg]
    sum_x2[:, ~positive] = px2[:, n - s_neg]
    sum_y[:, ~positive] = py[:, [n]] - py[:, s_neg]
    sum_y2[:, ~positive] = py2[:, [n]] - py2[:, s_neg]

    mean_x = sum_x / lengths
    mean_y = sum_y / lengths
    centered_dot = dots - lengths * mean_x * mean_y
    var_x = sum_x2 - lengths * mean_x**2
    var_y = sum_y2 - lengths * mean_y**2
    norm = np.sqrt(np.clip(var_x, 0.0, None) * np.clip(var_y, 0.0, None))
    flat_x = var_x <= _FLAT_REL_VAR * (sum_x2 + _FLAT_ABS_VAR)
    flat_y = var_y <= _FLAT_REL_VAR * (sum_y2 + _FLAT_ABS_VAR)
    denominator = np.where(flat_x | flat_y, 1.0, norm)
    profiles = centered_dot / denominator
    profiles[flat_x & flat_y] = _BOTH_FLAT_SCORE
    profiles[flat_x ^ flat_y] = _ONE_FLAT_SCORE
    if obs.is_enabled():
        obs.counter("kcd.flat_segments").increment(
            int(np.count_nonzero(flat_x | flat_y))
        )
    return np.clip(profiles, -1.0, 1.0)


def _lagged_raw_dots(
    rows: np.ndarray, pairs_i: np.ndarray, pairs_j: np.ndarray, m: int
) -> np.ndarray:
    """Raw lagged segment dot products for many row pairs via one FFT.

    Computes ``dots[p, k] = sum_i x[i + lag_k] * y[i]`` over the overlap
    for every pair ``p`` and lag ``-m .. m`` using a single batched
    circular cross-correlation (zero-padded to the next power of two).
    """
    n = rows.shape[1]
    size = 1 << int(np.ceil(np.log2(max(2 * n, 2))))
    spectra = np.fft.rfft(rows, size, axis=1)
    cross = spectra[pairs_i] * np.conj(spectra[pairs_j])
    circular = np.fft.irfft(cross, size, axis=1)  # (P, size)
    lags = np.arange(-m, m + 1)
    dot_index = np.where(lags >= 0, lags, size + lags)
    return circular[:, dot_index]


def _pairwise_profiles(
    rows: np.ndarray, pairs_i: np.ndarray, pairs_j: np.ndarray, m: int
) -> np.ndarray:
    """Lagged correlation profiles for many row pairs at once.

    One batched FFT cross-correlation plus shared prefix sums replaces the
    per-pair scans: for a unit's 10 database pairs over 14 KPIs this is
    the difference between ~3000 small numpy calls per detection round and
    ~10 vectorized ones.

    Parameters
    ----------
    rows:
        ``(n_rows, n)`` of already min-max-normalized series.
    pairs_i, pairs_j:
        Row indices of each pair.
    m:
        Delay scan bound.

    Returns
    -------
    numpy.ndarray
        ``(n_pairs, 2 * m + 1)`` profiles for lags ``-m .. m``.
    """
    n = rows.shape[1]
    dots = _lagged_raw_dots(rows, pairs_i, pairs_j, m)
    prefix, prefix_sq = _row_prefix_sums(rows)
    return _pair_profiles_from_stats(
        dots, prefix, prefix_sq, pairs_i, pairs_j, m, n
    )


def kcd_matrix(
    series: np.ndarray,
    max_delay: int | None = None,
    active: np.ndarray | None = None,
    measure=None,
) -> np.ndarray:
    """Pairwise KCD matrix for one KPI across all databases of a unit.

    Parameters
    ----------
    series:
        Array of shape ``(n_databases, n_points)`` holding the same KPI for
        every database in the unit over one time window.
    max_delay:
        Forwarded to :func:`kcd`.
    active:
        Optional boolean mask of in-use databases.  Rows/columns of unused
        databases are scored ``0`` (the paper sets all correlation scores of
        an unused database to zero), except the diagonal which stays ``1``.
    measure:
        Optional replacement correlation measure with signature
        ``measure(x, y, max_delay) -> float`` operating on normalized
        series; ``None`` uses the KCD.  Used by the Table X comparators
        (Pearson, DTW).

    Returns
    -------
    numpy.ndarray
        Symmetric ``(n_databases, n_databases)`` matrix with unit diagonal:
        the Correlation Matrix ``CM_j`` of Eq. (5) for KPI ``j``.
    """
    data = np.asarray(series, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected (n_databases, n_points), got {data.shape}")
    n_dbs = data.shape[0]
    if active is None:
        active_mask = np.ones(n_dbs, dtype=bool)
    else:
        active_mask = np.asarray(active, dtype=bool)
        if active_mask.shape != (n_dbs,):
            raise ValueError("active mask must have one entry per database")
    n_points = data.shape[1]
    if n_points < 2:
        raise ValueError("need at least 2 data points to correlate")
    m = n_points // 2 if max_delay is None else int(max_delay)
    if m < 0 or m >= n_points:
        raise ValueError(f"max_delay must lie in [0, {n_points - 1}], got {m}")
    if obs.is_enabled():
        obs.counter("kcd.matrix_calls").increment()
    # Normalize each row once instead of per pair.
    normalized = np.vstack([minmax_normalize(row) for row in data])
    matrix = np.eye(n_dbs, dtype=np.float64)
    rows_i, rows_j = np.triu_indices(n_dbs, k=1)
    both_active = active_mask[rows_i] & active_mask[rows_j]
    if measure is None:
        live_i = rows_i[both_active]
        live_j = rows_j[both_active]
        if live_i.size:
            if obs.is_enabled():
                obs.counter("kcd.pairs_scored").increment(int(live_i.size))
            with obs.span("kcd.pairwise_profiles"):
                profiles = _pairwise_profiles(normalized, live_i, live_j, m)
            scores = profiles.max(axis=1)
            matrix[live_i, live_j] = scores
            matrix[live_j, live_i] = scores
    else:
        for i, j, live in zip(rows_i, rows_j, both_active):
            score = (
                float(measure(normalized[i], normalized[j], m)) if live else 0.0
            )
            matrix[i, j] = score
            matrix[j, i] = score
    return matrix
