"""Online feedback module (Figure 6, right).

DBAs mark the judgement records produced by the streaming detection module;
the feedback module keeps a bounded history of marked records, tracks the
recent F-Measure, and — when detection performance drops below the minimum
criterion (75 % in the paper) — invokes the adaptive threshold learner to
produce new thresholds from the recent records.

The learner itself lives in :mod:`repro.tuning`; this module only owns the
trigger policy and the replay buffer, and accepts the learner as a callable
so the core package has no dependency on the tuning package.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.records import JudgementRecord

__all__ = ["OnlineFeedback", "mark_records"]

#: Minimum F-Measure criterion below which retraining activates (paper
#: Section IV-D3: "we set the minimum F-Measure criterion to 75%").
DEFAULT_MIN_F_MEASURE = 0.75

#: A threshold learner maps (current config, replay data, replay labels) to
#: a tuned config.  ``repro.tuning.genetic.GeneticThresholdLearner`` has
#: exactly this call signature.
ThresholdLearner = Callable[
    [DBCatcherConfig, np.ndarray, np.ndarray], DBCatcherConfig
]


def mark_records(
    records: Sequence[JudgementRecord], labels: np.ndarray
) -> List[JudgementRecord]:
    """Apply DBA ground-truth marks to judgement records.

    A record is truly abnormal when any tick of its database inside its
    window span carries an abnormal label — the convention the evaluation
    section uses to score window-level verdicts.

    Parameters
    ----------
    records:
        Unmarked records from the streaming detector.
    labels:
        Boolean ground truth of shape ``(n_databases, n_ticks)``.
    """
    truth = np.asarray(labels, dtype=bool)
    if truth.ndim != 2:
        raise ValueError(f"labels must be (n_databases, n_ticks), got {truth.shape}")
    marked = []
    for record in records:
        if record.database >= truth.shape[0]:
            raise IndexError(
                f"record for database {record.database} but labels cover "
                f"{truth.shape[0]} databases"
            )
        span = truth[record.database, record.window_start : record.window_end]
        marked.append(record.marked(bool(span.any())))
    return marked


class OnlineFeedback:
    """Replay buffer + retraining trigger for adaptive threshold learning.

    Parameters
    ----------
    min_f_measure:
        Retraining activates only when recent F-Measure falls below this.
    history_size:
        Number of most recent marked records considered "recent".
    """

    def __init__(
        self,
        min_f_measure: float = DEFAULT_MIN_F_MEASURE,
        history_size: int = 500,
    ):
        if not 0.0 < min_f_measure <= 1.0:
            raise ValueError("min_f_measure must lie in (0, 1]")
        if history_size < 1:
            raise ValueError("history_size must be >= 1")
        self.min_f_measure = min_f_measure
        self._records: Deque[JudgementRecord] = deque(maxlen=history_size)
        self._replay_values: Optional[np.ndarray] = None
        self._replay_labels: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[JudgementRecord, ...]:
        return tuple(self._records)

    def submit(
        self, records: Sequence[JudgementRecord], labels: np.ndarray
    ) -> List[JudgementRecord]:
        """Mark new records against ground truth and retain them."""
        marked = mark_records(records, labels)
        self._records.extend(marked)
        return marked

    def remember_window(self, values: np.ndarray, labels: np.ndarray) -> None:
        """Stash the most recent raw data for threshold relearning.

        The adaptive learner re-runs detection with candidate thresholds,
        so it needs raw KPI series, not just verdicts.  Keeping only the
        latest contiguous stretch bounds memory the way the paper's "most
        recent period of judgement records" does.
        """
        data = np.asarray(values, dtype=np.float64)
        truth = np.asarray(labels, dtype=bool)
        if data.ndim != 3:
            raise ValueError(
                f"values must be (n_databases, n_kpis, n_ticks), got {data.shape}"
            )
        if truth.shape != (data.shape[0], data.shape[2]):
            raise ValueError(
                "labels must be (n_databases, n_ticks) matching values"
            )
        self._replay_values = data
        self._replay_labels = truth

    def recent_performance(self) -> Optional[float]:
        """F-Measure over the retained records; ``None`` if unscorable.

        Returns ``None`` when there are no marked records, or when there
        are no true anomalies *and* no predicted anomalies to score.
        """
        if not self._records:
            return None
        tp = fp = fn = 0
        for record in self._records:
            cell_tp, cell_fp, _, cell_fn = record.confusion_cell()
            tp += cell_tp
            fp += cell_fp
            fn += cell_fn
        if tp + fp == 0 or tp + fn == 0:
            return None if tp + fp + fn == 0 else 0.0
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def should_retrain(self) -> bool:
        """Whether recent performance violates the minimum criterion."""
        performance = self.recent_performance()
        return performance is not None and performance < self.min_f_measure

    def retrain(
        self, config: DBCatcherConfig, learner: ThresholdLearner
    ) -> DBCatcherConfig:
        """Run the threshold learner over the replay buffer.

        Raises
        ------
        RuntimeError
            If no raw window has been remembered yet.
        """
        if self._replay_values is None or self._replay_labels is None:
            raise RuntimeError(
                "no replay data; call remember_window() before retrain()"
            )
        return learner(config, self._replay_values, self._replay_labels)

    def maybe_retrain(
        self, config: DBCatcherConfig, learner: ThresholdLearner
    ) -> Optional[DBCatcherConfig]:
        """Retrain only if the trigger policy says so; else ``None``."""
        if not self.should_retrain():
            return None
        return self.retrain(config, learner)
