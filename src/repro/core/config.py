"""Configuration for the DBCatcher detector.

All tunables of Sections III-C and III-D live here: the per-KPI correlation
thresholds ``alpha_i``, the tolerance threshold ``theta``, the maximum
tolerance deviation count, and the flexible-window geometry.  The paper's
initial ranges are exposed as module constants; the adaptive threshold
learner (:mod:`repro.tuning`) searches inside those ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DBCatcherConfig",
    "ALPHA_RANGE",
    "BACKENDS",
    "THETA_RANGE",
    "TOLERANCE_RANGE",
    "INITIAL_WINDOW_RANGE",
    "MAX_WINDOW_RANGE",
    "LEARNING_RATE",
]

#: KCD compute backends (:mod:`repro.engine`).  ``batched`` evaluates all
#: database pairs and all KPIs of a unit in one vectorized pass with
#: incremental window caching; ``reference`` is the straightforward
#: per-pair, per-lag oracle the batched engine is verified against.
BACKENDS: Tuple[str, ...] = ("batched", "reference")

#: Initial per-KPI correlation threshold range (paper Section III-D).
ALPHA_RANGE: Tuple[float, float] = (0.6, 0.8)
#: Tolerance threshold range.
THETA_RANGE: Tuple[float, float] = (0.1, 0.3)
#: Maximum tolerance deviation count range (inclusive).
TOLERANCE_RANGE: Tuple[int, int] = (0, 3)
#: Initial observation window size range, in data points.
INITIAL_WINDOW_RANGE: Tuple[int, int] = (15, 25)
#: Maximum observation window size range, in data points.
MAX_WINDOW_RANGE: Tuple[int, int] = (45, 75)
#: Mutation learning rate Delta of the genetic algorithm.
LEARNING_RATE: float = 0.1

#: How a database's per-KPI correlation level is aggregated from its KCD
#: scores against every peer.  ``max`` asks "does this database still track
#: at least one peer?" — an abnormal database decorrelates from *all* peers
#: while healthy peers keep tracking each other, so ``max`` localizes the
#: deviating database; ``median``/``mean`` are stricter alternatives kept
#: for the ablation benches.
_PEER_AGGREGATIONS = ("max", "median", "mean")


@dataclass(frozen=True)
class DBCatcherConfig:
    """Immutable detector configuration.

    Parameters
    ----------
    kpi_names:
        Names of the monitored KPIs (Table II); their count ``Q`` fixes the
        number of correlation matrices and of ``alpha`` thresholds.
    alphas:
        Per-KPI correlation thresholds ``alpha_i``.  Scores above
        ``alpha_i`` are level-3 (correlated), scores in
        ``[alpha_i - theta, alpha_i)`` are level-2 (slight deviation), and
        scores below ``alpha_i - theta`` are level-1 (extreme deviation).
    theta:
        Tolerance threshold separating slight from extreme deviation.
    max_tolerance_deviations:
        Maximum number of level-2 KPIs a database may show and still be
        merely "observable" rather than "abnormal".
    initial_window:
        Initial observation window size ``W`` in data points.
    window_step:
        Expansion length ``Delta`` added on each "observable" verdict; the
        paper uses ``Delta == W``.
    max_window:
        Upper bound ``W_M`` on the expanded window.
    max_delay_fraction:
        The delay scan range is ``m = floor(n * max_delay_fraction)`` for a
        window of ``n`` points; the paper uses ``n = 2m`` i.e. ``0.5``.
    peer_aggregation:
        How per-peer KCD scores collapse into one score per database; see
        the module comment.
    primary_index:
        Index of the unit's primary database, or ``None`` when correlation
        types are ignored.  Required when ``rr_only_kpis`` is non-empty.
    rr_only_kpis:
        KPIs whose UKPIC holds only among replicas (Table II type
        ``R-R``).  On these, the primary is neither judged nor counted as
        a peer — its execution path legitimately decorrelates there.
    resolve_max_window_as_abnormal:
        What to decide when a database is still "observable" at ``W_M``.
        ``True`` (default): a deviation that survives maximal smoothing is a
        real anomaly.  ``False``: give the database the benefit of the
        doubt and mark it healthy.
    interval_seconds:
        Monitoring collection interval; 5 s in the paper.  Only used to
        convert window sizes to wall-clock latencies in reports.
    backend:
        KCD compute backend (:data:`BACKENDS`).  ``batched`` (default)
        evaluates every database pair and every KPI in one vectorized
        pass with incremental window caching; ``reference`` runs the
        per-pair, per-lag oracle loop — slow, but the ground truth the
        differential tests hold the batched engine to.
    history_limit:
        Completed rounds (and their judgement records) the detector
        retains; older entries are discarded as new rounds finish.
        ``None`` (default) keeps everything, which suits offline
        evaluation; long-running serving sets a small limit so detector
        memory stays bounded no matter how long the stream runs.
    """

    kpi_names: Tuple[str, ...]
    alphas: Tuple[float, ...] = ()
    theta: float = 0.2
    max_tolerance_deviations: int = 2
    initial_window: int = 20
    window_step: int = 0
    max_window: int = 60
    max_delay_fraction: float = 0.5
    peer_aggregation: str = "max"
    primary_index: Optional[int] = None
    rr_only_kpis: Tuple[str, ...] = ()
    resolve_max_window_as_abnormal: bool = True
    interval_seconds: float = 5.0
    backend: str = "batched"
    history_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kpi_names:
            raise ValueError("at least one KPI is required")
        alphas = self.alphas
        if not alphas:
            default_alpha = float(np.mean(ALPHA_RANGE))
            alphas = tuple(default_alpha for _ in self.kpi_names)
            object.__setattr__(self, "alphas", alphas)
        if len(alphas) != len(self.kpi_names):
            raise ValueError(
                f"{len(self.kpi_names)} KPIs but {len(alphas)} alpha thresholds"
            )
        if not all(-1.0 <= a <= 1.0 for a in alphas):
            raise ValueError("alpha thresholds must lie in [-1, 1]")
        if not 0.0 <= self.theta <= 2.0:
            raise ValueError(f"theta must lie in [0, 2], got {self.theta}")
        if self.max_tolerance_deviations < 0:
            raise ValueError("max_tolerance_deviations must be >= 0")
        if self.initial_window < 2:
            raise ValueError("initial_window must be >= 2")
        if self.window_step == 0:
            object.__setattr__(self, "window_step", self.initial_window)
        if self.window_step < 1:
            raise ValueError("window_step must be >= 1")
        if self.max_window < self.initial_window:
            raise ValueError("max_window must be >= initial_window")
        if not 0.0 <= self.max_delay_fraction < 1.0:
            raise ValueError("max_delay_fraction must lie in [0, 1)")
        if self.peer_aggregation not in _PEER_AGGREGATIONS:
            raise ValueError(
                f"peer_aggregation must be one of {_PEER_AGGREGATIONS}, "
                f"got {self.peer_aggregation!r}"
            )
        unknown_rr = set(self.rr_only_kpis) - set(self.kpi_names)
        if unknown_rr:
            raise ValueError(f"rr_only_kpis not in kpi_names: {sorted(unknown_rr)}")
        if self.rr_only_kpis and self.primary_index is None:
            raise ValueError("rr_only_kpis requires primary_index")
        if self.primary_index is not None and self.primary_index < 0:
            raise ValueError("primary_index must be >= 0")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.history_limit is not None and self.history_limit < 1:
            raise ValueError("history_limit must be >= 1 or None")

    @property
    def n_kpis(self) -> int:
        """Number of monitored KPIs (``Q`` in the paper)."""
        return len(self.kpi_names)

    def max_delay(self, window_size: int) -> int:
        """Delay scan bound ``m`` for a window of ``window_size`` points."""
        return int(window_size * self.max_delay_fraction)

    def alpha_for(self, kpi: str) -> float:
        """Correlation threshold of a KPI by name."""
        try:
            index = self.kpi_names.index(kpi)
        except ValueError:
            raise KeyError(f"unknown KPI {kpi!r}") from None
        return self.alphas[index]

    def with_thresholds(
        self,
        alphas: Sequence[float],
        theta: float,
        max_tolerance_deviations: int,
    ) -> "DBCatcherConfig":
        """Copy of this config with new learned thresholds.

        Used by the online feedback module to install the output of the
        adaptive threshold learner without touching the window geometry.
        """
        return replace(
            self,
            alphas=tuple(float(a) for a in alphas),
            theta=float(theta),
            max_tolerance_deviations=int(max_tolerance_deviations),
        )

    def detection_latency_seconds(self, window_size: int | None = None) -> float:
        """Wall-clock time needed to fill a window at the collection rate."""
        size = self.initial_window if window_size is None else window_size
        return size * self.interval_seconds
