"""Root-cause hints from KPI deviation patterns (paper future work #2).

The paper closes asking "after detecting anomalies, how can root cause
analysis be performed using database KPI time series?".  This module
implements the natural first step: each incident class the paper discusses
leaves a characteristic *signature* across the deviating KPIs —

* **load-balance defect** (Fig. 4): the whole load-driven KPI family
  deviates together (requests, rows, CPU, buffer pool);
* **slow queries / hot database** (Fig. 13): CPU and rows-read deviate
  while the request counters stay correlated;
* **storage fragmentation** (Fig. 12): capacity and page-IO KPIs deviate
  while the logical row counters stay correlated;
* **throughput stall**: every throughput counter deviates with CPU
  *dropping* relative to peers.

Given a judgement record's per-KPI correlation levels (and scores), the
diagnoser matches these signatures and returns ranked hypotheses.  It is a
heuristic aid for the DBA, not a verdict — exactly the scoping the paper's
future-work discussion suggests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.levels import LEVEL_CORRELATED
from repro.core.records import DatabaseState, JudgementRecord

__all__ = ["CauseHypothesis", "diagnose_record", "RootCauseSignature"]


@dataclass(frozen=True)
class RootCauseSignature:
    """One incident class's KPI deviation signature.

    Parameters
    ----------
    cause:
        Machine name of the hypothesized incident class.
    description:
        One-line DBA-facing explanation.
    deviating:
        KPIs expected to deviate (level < 3).
    correlated:
        KPIs expected to stay correlated (level == 3); the discriminating
        negatives (e.g. requests staying balanced rules out a routing
        skew).
    directions:
        Expected *sides* of the deviation — KPI name mapped to ``"above"``
        or ``"below"`` (victim vs unit mean).  Levels alone cannot tell a
        flooded database from a stalled one; direction can.  Only checked
        when the caller supplies the window values.
    """

    cause: str
    description: str
    deviating: Tuple[str, ...]
    correlated: Tuple[str, ...]
    directions: Tuple[Tuple[str, str], ...] = ()

    def score(
        self,
        kpi_levels: Dict[str, int],
        sides: Dict[str, str] | None = None,
    ) -> float:
        """Match quality in [0, 1]: fraction of expectations satisfied."""
        checks = 0
        hits = 0
        for kpi in self.deviating:
            if kpi in kpi_levels:
                checks += 1
                hits += int(kpi_levels[kpi] < LEVEL_CORRELATED)
        for kpi in self.correlated:
            if kpi in kpi_levels:
                checks += 1
                hits += int(kpi_levels[kpi] == LEVEL_CORRELATED)
        if sides is not None:
            for kpi, expected_side in self.directions:
                if kpi in sides:
                    checks += 1
                    hits += int(sides[kpi] == expected_side)
        return hits / checks if checks else 0.0


#: Signature catalogue, derived from the paper's case studies.
SIGNATURES: Tuple[RootCauseSignature, ...] = (
    RootCauseSignature(
        cause="load_balance_defect",
        description=(
            "routing skew: the database receives an outsized share of the "
            "unit's requests (check the balancing strategy)"
        ),
        deviating=(
            "requests_per_second", "total_requests", "cpu_utilization",
            "innodb_rows_read", "bufferpool_read_requests",
        ),
        correlated=("real_capacity",),
        directions=(
            ("requests_per_second", "above"),
            ("cpu_utilization", "above"),
        ),
    ),
    RootCauseSignature(
        cause="slow_queries",
        description=(
            "resource-heavy statements: per-request cost exploded while "
            "request volume stayed balanced (check slow query log)"
        ),
        deviating=(
            "cpu_utilization", "innodb_rows_read", "bufferpool_read_requests",
        ),
        correlated=("requests_per_second", "total_requests", "real_capacity"),
    ),
    RootCauseSignature(
        cause="storage_fragmentation",
        description=(
            "dead space accumulating: physical capacity and page IO diverge "
            "from the logical write volume (consider OPTIMIZE TABLE)"
        ),
        deviating=(
            "real_capacity", "bufferpool_read_requests", "innodb_data_writes",
        ),
        correlated=(
            "requests_per_second", "innodb_rows_inserted",
            "innodb_rows_deleted",
        ),
    ),
    RootCauseSignature(
        cause="throughput_stall",
        description=(
            "the database stopped keeping up: every throughput counter "
            "collapsed (check IO stalls, locks, replication)"
        ),
        deviating=(
            "requests_per_second", "total_requests",
            "transactions_per_second", "innodb_rows_read",
            "cpu_utilization",
        ),
        correlated=("real_capacity",),
        directions=(
            ("requests_per_second", "below"),
            ("cpu_utilization", "below"),
        ),
    ),
)


@dataclass(frozen=True)
class CauseHypothesis:
    """One ranked root-cause hypothesis for an abnormal record."""

    cause: str
    confidence: float
    description: str
    deviating_kpis: Tuple[str, ...]


def _deviation_sides(
    record: JudgementRecord,
    values,
    kpi_names: Sequence[str],
) -> Dict[str, str]:
    """Victim's side ("above"/"below") vs the unit mean, per KPI."""
    import numpy as np

    window = np.asarray(values, dtype=float)[
        :, :, record.window_start : record.window_end
    ]
    sides: Dict[str, str] = {}
    n_dbs = window.shape[0]
    for index, kpi in enumerate(kpi_names):
        victim_mean = window[record.database, index].mean()
        peer_mean = np.mean(
            [window[d, index].mean() for d in range(n_dbs)
             if d != record.database]
        )
        sides[kpi] = "above" if victim_mean >= peer_mean else "below"
    return sides


def diagnose_record(
    record: JudgementRecord,
    signatures: Sequence[RootCauseSignature] = SIGNATURES,
    min_confidence: float = 0.5,
    values=None,
    kpi_names: Sequence[str] | None = None,
) -> List[CauseHypothesis]:
    """Ranked root-cause hypotheses for one abnormal judgement record.

    Parameters
    ----------
    record:
        An ABNORMAL record carrying per-KPI correlation levels.
    signatures:
        Signature catalogue to match against.
    min_confidence:
        Hypotheses scoring below this are dropped.
    values, kpi_names:
        Optional raw unit series ``(n_databases, n_kpis, n_ticks)`` and
        its KPI names; when given, the signatures' directional checks run
        too (needed to tell a flooded database from a stalled one).

    Returns
    -------
    list of CauseHypothesis, best match first.

    Raises
    ------
    ValueError
        If the record is not abnormal or carries no KPI levels.
    """
    if record.state is not DatabaseState.ABNORMAL:
        raise ValueError("only abnormal records can be diagnosed")
    if not record.kpi_levels:
        raise ValueError("record carries no per-KPI correlation levels")
    sides = None
    if values is not None:
        if kpi_names is None:
            raise ValueError("kpi_names is required when values are given")
        sides = _deviation_sides(record, values, kpi_names)
    deviating = tuple(
        kpi for kpi, level in record.kpi_levels.items()
        if level < LEVEL_CORRELATED
    )
    hypotheses = []
    for signature in signatures:
        confidence = signature.score(record.kpi_levels, sides)
        if confidence >= min_confidence:
            hypotheses.append(
                CauseHypothesis(
                    cause=signature.cause,
                    confidence=confidence,
                    description=signature.description,
                    deviating_kpis=deviating,
                )
            )
    hypotheses.sort(key=lambda h: h.confidence, reverse=True)
    return hypotheses
