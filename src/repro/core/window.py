"""Flexible time window observation (Section III-C, Figure 7).

A detection round starts with the initial window ``W``.  Databases whose
correlation levels resolve to "healthy" or "abnormal" are done; databases
marked "observable" make the round wait for ``Delta`` more points and
re-evaluate on the expanded window, up to the maximum window ``W_M``.  The
expansion smooths out *temporal fluctuations* — brief single-point
deviations that would otherwise cause false alarms — at a bounded cost in
detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DBCatcherConfig
from repro.core.levels import (
    LEVEL_EXTREME_DEVIATION,
    LEVEL_SLIGHT_DEVIATION,
    CorrelationLevels,
)
from repro.core.records import DatabaseState

__all__ = ["classify_database", "WindowDecision", "FlexibleWindow"]


def classify_database(
    levels: CorrelationLevels, database: int, config: DBCatcherConfig
) -> DatabaseState:
    """Map one database's KPI levels to a state (the Fig. 7 decision).

    * any level-1 KPI → ABNORMAL;
    * more level-2 KPIs than the tolerance allows → ABNORMAL;
    * between one and ``max_tolerance_deviations`` level-2 KPIs →
      OBSERVABLE (expand the window);
    * all KPIs level-3 → HEALTHY.
    """
    if levels.count(database, LEVEL_EXTREME_DEVIATION) > 0:
        return DatabaseState.ABNORMAL
    slight = levels.count(database, LEVEL_SLIGHT_DEVIATION)
    if slight == 0:
        return DatabaseState.HEALTHY
    if slight > config.max_tolerance_deviations:
        return DatabaseState.ABNORMAL
    return DatabaseState.OBSERVABLE


@dataclass(frozen=True)
class WindowDecision:
    """Outcome of evaluating one database at one window size.

    ``final`` is ``False`` only when the state is OBSERVABLE and the window
    can still grow; in that case ``next_window`` holds the expanded size.
    """

    state: DatabaseState
    window_size: int
    expansions: int
    final: bool
    next_window: int | None = None


class FlexibleWindow:
    """Window-size controller for one detection round.

    The controller is stateless across rounds: create one per round (or call
    :meth:`decide` with explicit sizes).  It encapsulates the expansion
    arithmetic ``W <- W + Delta`` capped at ``W_M`` and the end-of-budget
    resolution policy.
    """

    def __init__(self, config: DBCatcherConfig):
        self._config = config

    @property
    def initial_size(self) -> int:
        """Window size every round starts from (``W``)."""
        return self._config.initial_window

    def can_expand(self, current_size: int) -> bool:
        """Whether the window may still grow past ``current_size``."""
        return current_size < self._config.max_window

    def expanded_size(self, current_size: int) -> int:
        """Next window size: ``current + Delta``, capped at ``W_M``."""
        return min(current_size + self._config.window_step, self._config.max_window)

    def decide(
        self,
        levels: CorrelationLevels,
        database: int,
        window_size: int,
        expansions: int,
    ) -> WindowDecision:
        """Evaluate one database and decide whether its round is over.

        When the state is OBSERVABLE but the window has hit ``W_M``, the
        verdict is forced according to
        ``config.resolve_max_window_as_abnormal``: a deviation that
        persists through maximal smoothing is treated as a real anomaly by
        default.
        """
        state = classify_database(levels, database, self._config)
        if state.is_final:
            return WindowDecision(
                state=state,
                window_size=window_size,
                expansions=expansions,
                final=True,
            )
        if self.can_expand(window_size):
            return WindowDecision(
                state=state,
                window_size=window_size,
                expansions=expansions,
                final=False,
                next_window=self.expanded_size(window_size),
            )
        forced = (
            DatabaseState.ABNORMAL
            if self._config.resolve_max_window_as_abnormal
            else DatabaseState.HEALTHY
        )
        return WindowDecision(
            state=forced,
            window_size=window_size,
            expansions=expansions,
            final=True,
        )
