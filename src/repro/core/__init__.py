"""DBCatcher core: the paper's primary contribution.

The core package implements the four modules of Figure 6:

* **data processing** — per-KPI, per-database sample queues
  (:mod:`repro.core.streams`);
* **correlation measurement** — the Key Correlation Distance and per-KPI
  correlation matrices (:mod:`repro.core.kcd`, :mod:`repro.core.matrices`);
* **streaming detection** — correlation levels, the flexible time window and
  the healthy/observable/abnormal state machine (:mod:`repro.core.levels`,
  :mod:`repro.core.window`, :mod:`repro.core.detector`);
* **online feedback** — judgement records, DBA marking and the retraining
  trigger that invokes the adaptive threshold learner in :mod:`repro.tuning`
  (:mod:`repro.core.records`, :mod:`repro.core.feedback`).
"""

from repro.core.config import BACKENDS, DBCatcherConfig
from repro.core.detector import DBCatcher, UnitDetectionResult
from repro.core.diagnosis import CauseHypothesis, diagnose_record
from repro.core.feedback import OnlineFeedback
from repro.core.kcd import kcd, kcd_matrix, lagged_correlation_profile
from repro.core.levels import (
    LEVEL_CORRELATED,
    LEVEL_EXTREME_DEVIATION,
    LEVEL_SLIGHT_DEVIATION,
    CorrelationLevels,
    calculate_levels,
    score_to_level,
)
from repro.core.matrices import CorrelationMatrix, build_correlation_matrices
from repro.core.records import DatabaseState, JudgementRecord
from repro.core.streams import KPIStreams
from repro.core.window import FlexibleWindow, WindowDecision

__all__ = [
    "BACKENDS",
    "DBCatcher",
    "DBCatcherConfig",
    "CauseHypothesis",
    "diagnose_record",
    "UnitDetectionResult",
    "OnlineFeedback",
    "kcd",
    "kcd_matrix",
    "lagged_correlation_profile",
    "LEVEL_EXTREME_DEVIATION",
    "LEVEL_SLIGHT_DEVIATION",
    "LEVEL_CORRELATED",
    "CorrelationLevels",
    "calculate_levels",
    "score_to_level",
    "CorrelationMatrix",
    "build_correlation_matrices",
    "DatabaseState",
    "JudgementRecord",
    "KPIStreams",
    "FlexibleWindow",
    "WindowDecision",
]
