"""Time-series normalization primitives.

The paper's Eq. (1) rescales each series into ``[0, 1]`` before correlation
measurement so that only the *trend*, not the magnitude, matters:

    x_i <- (x_i - x_min) / (x_max - x_min)

A constant series has no trend; by convention it normalizes to all zeros so
that downstream correlation code can detect and special-case it.
"""

from __future__ import annotations

import numpy as np


def minmax_normalize(values: np.ndarray) -> np.ndarray:
    """Min-max normalize a series into ``[0, 1]`` (paper Eq. 1).

    Parameters
    ----------
    values:
        One-dimensional array of KPI samples.

    Returns
    -------
    numpy.ndarray
        A new float64 array in ``[0, 1]``.  A constant input maps to all
        zeros (a flat series carries no trend information).
    """
    series = np.asarray(values, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    if series.size == 0:
        return series.copy()
    low = series.min()
    high = series.max()
    span = high - low
    if span == 0.0 or not np.isfinite(span):
        return np.zeros_like(series)
    return (series - low) / span


def zscore_normalize(values: np.ndarray) -> np.ndarray:
    """Standardize a series to zero mean and unit variance.

    Used by the machine-learning baselines (SR-CNN, OmniAnomaly,
    JumpStarter), which are conventionally trained on standardized inputs.
    A constant input maps to all zeros.
    """
    series = np.asarray(values, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    if series.size == 0:
        return series.copy()
    std = series.std()
    if std == 0.0 or not np.isfinite(std):
        return np.zeros_like(series)
    return (series - series.mean()) / std
