"""Engine API: pluggable KCD compute backends behind one interface.

A *KCD engine* turns one observation window of a unit — shape
``(n_databases, n_kpis, n_points)`` — into the unit's ``Q`` correlation
matrices (Eq. 5).  Two backends ship (:data:`~repro.core.config.BACKENDS`):

* ``batched`` (:class:`~repro.engine.batched.BatchedEngine`) — all pairs
  and all KPIs in one vectorized FFT pass, with incremental caching of
  normalized rows and running sums as the flexible window expands;
* ``reference`` (:class:`~repro.engine.reference.ReferenceEngine`) — the
  straightforward per-pair, per-lag oracle loop the batched engine is
  differentially tested against.

The detector selects its engine from ``DBCatcherConfig.backend``; callers
with a window in hand can also pass an engine straight to
:func:`repro.core.matrices.build_correlation_matrices`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.core.config import BACKENDS
from repro.core.matrices import CorrelationMatrix

__all__ = ["KCDEngine", "make_engine", "validate_window"]


@runtime_checkable
class KCDEngine(Protocol):
    """What every KCD compute backend must provide.

    Engines are stateful only through their cache: two engines of the same
    backend fed the same windows produce identical matrices, and an engine
    may be :meth:`reset` at any round boundary without changing results.
    Engines must stay picklable so detectors can cross the service's
    worker-process boundary.
    """

    #: Backend name, one of :data:`repro.core.config.BACKENDS`.
    backend: str

    def matrices(
        self,
        window: np.ndarray,
        kpi_names: Sequence[str],
        max_delay: Optional[int] = None,
        active: Optional[np.ndarray] = None,
        window_start: Optional[int] = None,
    ) -> List[CorrelationMatrix]:
        """All ``Q`` correlation matrices for one observation window.

        ``window_start`` is the window's absolute first tick; passing it
        lets a caching engine recognise the expand-in-place pattern of the
        flexible window (same start, growing end).  ``None`` disables
        caching for the call.
        """
        ...

    def reset(self) -> None:
        """Drop any cached window state (results are unaffected)."""
        ...


def validate_window(
    window: np.ndarray,
    kpi_names: Sequence[str],
    max_delay: Optional[int],
    active: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Shared engine input validation.

    Returns the float64 window, the boolean active mask, and the resolved
    delay bound ``m`` — with the same error behaviour as
    :func:`repro.core.kcd.kcd_matrix` so backends are interchangeable on
    bad input too.
    """
    data = np.asarray(window, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(
            f"expected (n_databases, n_kpis, n_points), got shape {data.shape}"
        )
    n_dbs, n_kpis, n_points = data.shape
    if n_kpis != len(kpi_names):
        raise ValueError(
            f"window has {n_kpis} KPI rows but {len(kpi_names)} names"
        )
    if n_dbs < 2:
        raise ValueError("a unit needs at least 2 databases to correlate")
    if n_points < 2:
        raise ValueError("need at least 2 data points to correlate")
    if active is None:
        active_mask = np.ones(n_dbs, dtype=bool)
    else:
        active_mask = np.asarray(active, dtype=bool)
        if active_mask.shape != (n_dbs,):
            raise ValueError("active mask must have one entry per database")
    m = n_points // 2 if max_delay is None else int(max_delay)
    if m < 0 or m >= n_points:
        raise ValueError(f"max_delay must lie in [0, {n_points - 1}], got {m}")
    return data, active_mask, m


def make_engine(backend: str = "batched", measure=None) -> "KCDEngine":
    """Build the engine for a backend name.

    Parameters
    ----------
    backend:
        One of :data:`repro.core.config.BACKENDS`.
    measure:
        Optional replacement correlation measure ``measure(x, y,
        max_delay) -> float`` (the Table X comparators).  An arbitrary
        measure cannot be batched, so any ``measure`` forces the
        reference engine regardless of ``backend``.
    """
    from repro.engine.batched import BatchedEngine
    from repro.engine.reference import ReferenceEngine

    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if measure is not None or backend == "reference":
        return ReferenceEngine(measure=measure)
    return BatchedEngine()
