"""Batched KCD engine: every pair and every KPI in one vectorized pass.

The correlation-measurement module dominates DBCatcher's per-round cost
(the paper measures it at ~70 % of detection time).  The per-KPI fast
path already batches a KPI's database pairs; this engine goes one level
further and stacks *all* ``n_databases * n_kpis`` normalized window rows
into a single matrix, computes every lagged cross-correlation profile of
the round — all pairs x all KPIs — with one batched FFT, and applies the
shared flat-sentinel rules elementwise.  For a 5-database, 14-KPI unit
that folds 14 per-KPI passes into one, and the incremental
:class:`~repro.engine.cache.WindowCache` additionally reuses normalized
rows and running sums as the flexible window expands in place.

Numerical contract: profiles come from the same
:func:`repro.core.kcd._pair_profiles_from_stats` kernel the per-KPI fast
path uses, so batched output matches :func:`repro.core.kcd.kcd_matrix`
elementwise (the differential suite demands 1e-9; in practice fresh
windows are bit-identical and cache-extended windows differ only by
prefix-sum rounding).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.kcd import _lagged_raw_dots, _pair_profiles_from_stats
from repro.core.matrices import CorrelationMatrix
from repro.engine.base import validate_window
from repro.engine.cache import CacheStats, WindowCache
from repro.obs import runtime as obs

__all__ = ["BatchedEngine"]


class BatchedEngine:
    """Vectorized all-pairs, all-KPIs KCD backend with window caching."""

    backend = "batched"

    def __init__(self) -> None:
        self._cache = WindowCache()

    def reset(self) -> None:
        self._cache.invalidate()

    @property
    def cache_stats(self) -> CacheStats:
        """Live cache counters (also mirrored to ``engine.cache.*`` obs)."""
        return self._cache.stats

    def matrices(
        self,
        window: np.ndarray,
        kpi_names: Sequence[str],
        max_delay: Optional[int] = None,
        active: Optional[np.ndarray] = None,
        window_start: Optional[int] = None,
    ) -> List[CorrelationMatrix]:
        data, active_mask, m = validate_window(window, kpi_names, max_delay, active)
        n_dbs, n_kpis, n_points = data.shape
        raw_rows = np.ascontiguousarray(data.reshape(n_dbs * n_kpis, n_points))

        before = self._cache.stats.as_dict()
        rows, prefix, prefix_sq = self._cache.rows_and_sums(
            raw_rows, window_start, active_mask.tobytes()
        )
        if obs.is_enabled():
            after = self._cache.stats.as_dict()
            for key, value in after.items():
                delta = value - before[key]
                if delta:
                    obs.counter(f"engine.cache.{key}").increment(delta)
            obs.counter("engine.batched_rounds").increment()

        pair_i, pair_j = np.triu_indices(n_dbs, k=1)
        live = active_mask[pair_i] & active_mask[pair_j]
        live_i = pair_i[live]
        live_j = pair_j[live]
        n_pairs = live_i.shape[0]
        matrices: List[np.ndarray] = [
            np.eye(n_dbs, dtype=np.float64) for _ in kpi_names
        ]
        if n_pairs:
            # Row of (database d, KPI k) in the stacked layout.
            kpi_offsets = np.arange(n_kpis)
            rows_i = (
                kpi_offsets[:, None] + live_i[None, :] * n_kpis
            ).ravel()
            rows_j = (
                kpi_offsets[:, None] + live_j[None, :] * n_kpis
            ).ravel()
            with obs.span("engine.batched_profiles"):
                dots = _lagged_raw_dots(rows, rows_i, rows_j, m)
                profiles = _pair_profiles_from_stats(
                    dots, prefix, prefix_sq, rows_i, rows_j, m, n_points
                )
            scores = profiles.max(axis=1).reshape(n_kpis, n_pairs)
            if obs.is_enabled():
                obs.counter("engine.pairs_scored").increment(
                    int(n_pairs * n_kpis)
                )
            for index in range(n_kpis):
                dense = matrices[index]
                dense[live_i, live_j] = scores[index]
                dense[live_j, live_i] = scores[index]
        return [
            CorrelationMatrix.from_dense(kpi, matrices[index])
            for index, kpi in enumerate(kpi_names)
        ]
