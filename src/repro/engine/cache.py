"""Incremental window cache for the batched KCD engine.

The flexible window expands in place — same start tick, growing end — and
between rounds it slides forward.  Re-running the whole normalize/cumsum
pipeline on every expansion step wastes the work already done on the
window's prefix, so the cache keeps, per ``(window_start, active mask)``
key:

* the raw per-row minima / maxima (extendable with one pass over the new
  chunk);
* the min-max-normalized rows;
* their running (prefix) sums and sums of squares, which the lag-profile
  kernel consumes directly.

On an expansion, rows whose raw min/max did not change keep their old
normalized prefix byte-for-byte and only the new chunk is normalized and
accumulated; rows whose extremes moved are renormalized in full (the
normalization is an affine map of the extremes, so every old point
changes with them).  A different window start or a changed ``active``
membership invalidates the entry — correlation evidence from one round
or one fleet membership must never leak into another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.kcd import _row_prefix_sums

__all__ = ["CacheStats", "WindowCache"]


@dataclass
class CacheStats:
    """Counters the batched engine mirrors into the obs registry.

    ``hits`` are calls served by extending (or directly reusing) a cached
    window; ``misses`` are fresh builds with no reusable entry;
    ``invalidations`` count discarded entries (window slid, or the active
    membership changed); ``rows_renormalized`` counts rows whose raw
    extremes moved during an extension and had to be renormalized in
    full.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    rows_renormalized: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "rows_renormalized": self.rows_renormalized,
        }


def _normalize_rows(raw: np.ndarray) -> np.ndarray:
    """Min-max normalize every row (vectorized Eq. 1).

    Elementwise identical to mapping
    :func:`repro.core.normalize.minmax_normalize` over the rows: constant
    and non-finite rows normalize to zeros, everything else to
    ``(x - min) / (max - min)``.
    """
    lows = raw.min(axis=1)
    spans = raw.max(axis=1) - lows
    usable = np.isfinite(spans) & (spans != 0.0)
    out = np.zeros_like(raw)
    if usable.any():
        out[usable] = (raw[usable] - lows[usable, None]) / spans[usable, None]
    return out


class WindowCache:
    """Per-engine incremental cache of normalized rows and running sums."""

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._key: Optional[Tuple[int, bytes]] = None
        self._n_points: int = 0
        self._raw_min: Optional[np.ndarray] = None
        self._raw_max: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None
        self._prefix_sq: Optional[np.ndarray] = None

    def invalidate(self) -> None:
        """Drop the cached entry (counted when one was present)."""
        if self._key is not None:
            self.stats.invalidations += 1
        self._key = None
        self._n_points = 0
        self._raw_min = None
        self._raw_max = None
        self._rows = None
        self._prefix = None
        self._prefix_sq = None

    def rows_and_sums(
        self,
        raw_rows: np.ndarray,
        window_start: Optional[int],
        active_key: bytes,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalized rows plus prefix sums for one window's raw rows.

        Parameters
        ----------
        raw_rows:
            ``(n_rows, n_points)`` float64 raw window rows.  The cache
            trusts ``(window_start, active_key, n_points)`` to identify
            the window: callers must pass the rows the key describes.
        window_start:
            Absolute first tick of the window, or ``None`` to bypass the
            cache entirely (stateless call; counted as a miss but the
            entry is neither read nor written).
        active_key:
            Opaque membership fingerprint (the active mask's bytes).
        """
        n_points = raw_rows.shape[1]
        if window_start is None:
            self.stats.misses += 1
            rows = _normalize_rows(raw_rows)
            prefix, prefix_sq = _row_prefix_sums(rows)
            return rows, prefix, prefix_sq
        key = (int(window_start), active_key)
        if self._key == key and n_points == self._n_points:
            self.stats.hits += 1
            return self._entry()
        if self._key == key and n_points > self._n_points:
            self._extend(raw_rows)
            self.stats.hits += 1
            return self._entry()
        if self._key is not None:
            self.stats.invalidations += 1
        self.stats.misses += 1
        self._build(raw_rows, key)
        return self._entry()

    def _entry(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        assert (
            self._rows is not None
            and self._prefix is not None
            and self._prefix_sq is not None
        )
        return self._rows, self._prefix, self._prefix_sq

    def _build(self, raw_rows: np.ndarray, key: Tuple[int, bytes]) -> None:
        self._key = key
        self._n_points = raw_rows.shape[1]
        self._raw_min = raw_rows.min(axis=1)
        self._raw_max = raw_rows.max(axis=1)
        self._rows = _normalize_rows(raw_rows)
        self._prefix, self._prefix_sq = _row_prefix_sums(self._rows)

    def _extend(self, raw_rows: np.ndarray) -> None:
        """Grow the cached window in place with the newly arrived chunk.

        Rows whose raw extremes (and hence normalization) are unchanged
        keep their cached normalized prefix and running sums; only the new
        chunk is normalized and accumulated onto them.  Rows whose
        extremes moved — or that carry non-finite data — are rebuilt in
        full, because every old normalized point changes with the affine
        map.
        """
        assert (
            self._rows is not None
            and self._prefix is not None
            and self._prefix_sq is not None
            and self._raw_min is not None
            and self._raw_max is not None
        )
        old_n = self._n_points
        new_n = raw_rows.shape[1]
        chunk = raw_rows[:, old_n:]
        new_min = np.minimum(self._raw_min, chunk.min(axis=1))
        new_max = np.maximum(self._raw_max, chunk.max(axis=1))
        spans = new_max - new_min
        # NaN extremes compare unequal to themselves and infinite spans
        # normalize to all-zero rows, so both take the rebuild path.
        with np.errstate(invalid="ignore"):
            unchanged = (
                (new_min == self._raw_min)
                & (new_max == self._raw_max)
                & np.isfinite(spans)
            )
        self._raw_min = new_min
        self._raw_max = new_max
        self._n_points = new_n

        n_rows = raw_rows.shape[0]
        rows = np.empty_like(raw_rows)
        prefix = np.empty((n_rows, new_n + 1), dtype=np.float64)
        prefix_sq = np.empty((n_rows, new_n + 1), dtype=np.float64)
        changed = ~unchanged
        if changed.any():
            self.stats.rows_renormalized += int(changed.sum())
            rows[changed] = _normalize_rows(raw_rows[changed])
            prefix[changed], prefix_sq[changed] = _row_prefix_sums(rows[changed])
        if unchanged.any():
            rows[unchanged, :old_n] = self._rows[unchanged]
            lows = new_min[unchanged]
            live_spans = np.where(spans[unchanged] == 0.0, 1.0, spans[unchanged])
            normalized_chunk = (chunk[unchanged] - lows[:, None]) / live_spans[:, None]
            normalized_chunk[spans[unchanged] == 0.0] = 0.0
            rows[unchanged, old_n:] = normalized_chunk
            prefix[unchanged, : old_n + 1] = self._prefix[unchanged]
            prefix_sq[unchanged, : old_n + 1] = self._prefix_sq[unchanged]
            prefix[unchanged, old_n + 1 :] = self._prefix[unchanged, -1:] + np.cumsum(
                normalized_chunk, axis=1
            )
            prefix_sq[unchanged, old_n + 1 :] = self._prefix_sq[
                unchanged, -1:
            ] + np.cumsum(normalized_chunk**2, axis=1)
        self._rows = rows
        self._prefix = prefix
        self._prefix_sq = prefix_sq
