"""Pluggable KCD compute engines (the correlation-measurement module).

One observation window in, the unit's ``Q`` correlation matrices out —
behind a single :class:`~repro.engine.base.KCDEngine` interface with two
backends:

* :class:`~repro.engine.batched.BatchedEngine` (``backend="batched"``,
  the default) — all database pairs and all KPIs in one vectorized FFT
  pass, with incremental reuse of normalized rows and running sums as
  the flexible window expands (:class:`~repro.engine.cache.WindowCache`);
* :class:`~repro.engine.reference.ReferenceEngine`
  (``backend="reference"``) — the per-pair, per-lag oracle loop, also
  home to the pluggable Table X measures.

Select a backend through ``DBCatcherConfig(backend=...)`` (the detector,
service workers, chaos runner and CLI all honour it), or build one
directly with :func:`make_engine` and hand it to
:func:`repro.core.matrices.build_correlation_matrices`.
"""

from repro.engine.base import KCDEngine, make_engine, validate_window
from repro.engine.batched import BatchedEngine
from repro.engine.cache import CacheStats, WindowCache
from repro.engine.reference import ReferenceEngine

__all__ = [
    "BatchedEngine",
    "CacheStats",
    "KCDEngine",
    "ReferenceEngine",
    "WindowCache",
    "make_engine",
    "validate_window",
]
