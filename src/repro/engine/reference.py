"""Reference KCD engine: the per-pair, per-lag oracle backend.

Straightforward Python loops over databases, pairs and delays, scoring
each lag with explicitly centered segments
(:func:`repro.core.kcd._profile_reference`).  Orders of magnitude slower
than the batched engine — that gap is exactly what
``benchmarks/test_engine_batched.py`` pins — but trivially auditable
against Eq. (1)-(5), which is why the differential suite uses it (via
:func:`repro.core.kcd.kcd_matrix`, itself verified against the same
per-lag loop) as ground truth.

This engine also carries the pluggable-measure path: a Table X
replacement measure is an arbitrary Python callable, so it cannot be
batched and always runs here regardless of the configured backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.kcd import _profile_reference
from repro.core.matrices import CorrelationMatrix
from repro.core.normalize import minmax_normalize
from repro.engine.base import validate_window

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """Per-pair, per-lag KCD backend (oracle; optional custom measure).

    Parameters
    ----------
    measure:
        Optional replacement correlation measure with signature
        ``measure(x, y, max_delay) -> float`` operating on normalized
        series; ``None`` scores pairs with the KCD per-lag loop.
    """

    backend = "reference"

    def __init__(self, measure=None) -> None:
        self.measure = measure

    def reset(self) -> None:
        """The reference engine keeps no window state."""

    def matrices(
        self,
        window: np.ndarray,
        kpi_names: Sequence[str],
        max_delay: Optional[int] = None,
        active: Optional[np.ndarray] = None,
        window_start: Optional[int] = None,
    ) -> List[CorrelationMatrix]:
        data, active_mask, m = validate_window(window, kpi_names, max_delay, active)
        n_dbs = data.shape[0]
        pair_i, pair_j = np.triu_indices(n_dbs, k=1)
        out: List[CorrelationMatrix] = []
        for index, kpi in enumerate(kpi_names):
            normalized = np.vstack(
                [minmax_normalize(row) for row in data[:, index, :]]
            )
            dense = np.eye(n_dbs, dtype=np.float64)
            for i, j in zip(pair_i, pair_j):
                if not (active_mask[i] and active_mask[j]):
                    continue
                if self.measure is not None:
                    score = float(self.measure(normalized[i], normalized[j], m))
                else:
                    score = float(
                        _profile_reference(normalized[i], normalized[j], m).max()
                    )
                dense[i, j] = score
                dense[j, i] = score
            out.append(CorrelationMatrix.from_dense(kpi, dense))
        return out
