"""HTTP client for the ingestion plane, plus the dataset push replayer.

:class:`ApiClient` is a thin stdlib (``urllib``) wrapper over the wire
schema; :func:`push_dataset` is the collector side of the drill story —
it replays a saved dataset against a ``serve --ingest-port`` endpoint,
honouring backpressure (sleep and re-post on 429) and reconnecting with
exponential backoff when the endpoint vanishes mid-stream (connection
refused, timeouts, 5xx).  After a reconnect it re-registers and replays
from the beginning: the server's stale accounting makes the replay
idempotent, so a warm-restarted service resumes without verdict loss.

Transport-level failures surface as :class:`TransientApiError` (worth
retrying), schema/protocol rejections as :class:`ApiError` (retrying the
same payload cannot help).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import runtime as obs
from repro.service.api.wire import encode_handshake, encode_tick_batch
from repro.service.sources import ReplaySource, TickEvent

__all__ = [
    "ApiError",
    "TransientApiError",
    "ApiClient",
    "PushStats",
    "push_dataset",
]


class ApiError(RuntimeError):
    """The server rejected a request (4xx): the payload is at fault."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code

    @classmethod
    def from_payload(cls, status: int, payload: Dict[str, Any]) -> "ApiError":
        error = payload.get("error", {})
        if not isinstance(error, dict):
            error = {}
        return cls(
            status,
            str(error.get("code", "unknown")),
            str(error.get("message", "unexplained error")),
        )


class TransientApiError(ApiError):
    """The transport or server failed (refused, timeout, 5xx): retry."""


class ApiClient:
    """Typed requests against one :class:`IngestServer` endpoint.

    Parameters
    ----------
    url:
        Base URL (``http://host:port``).
    url_provider:
        Alternative to a fixed ``url``: a zero-argument callable consulted
        before every request.  The kill drill points this at a port file
        the victim rewrites on restart, so the client follows the endpoint
        across process generations.
    timeout_seconds:
        Per-request socket timeout.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        url_provider: Optional[Callable[[], str]] = None,
        timeout_seconds: float = 10.0,
    ):
        if (url is None) == (url_provider is None):
            raise ValueError("pass exactly one of url / url_provider")
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        self._url = url
        self._url_provider = url_provider
        self.timeout_seconds = timeout_seconds

    @property
    def url(self) -> str:
        if self._url is not None:
            return self._url
        assert self._url_provider is not None
        return self._url_provider()

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                return response.status, self._decode(response.read())
        except urllib.error.HTTPError as exc:
            answer = self._decode(exc.read())
            if exc.code >= 500:
                raise TransientApiError.from_payload(exc.code, answer) from exc
            return exc.code, answer
        except urllib.error.URLError as exc:
            raise TransientApiError(
                503, "unreachable", f"{method} {path}: {exc.reason}"
            ) from exc
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise TransientApiError(
                503, "unreachable", f"{method} {path}: {exc}"
            ) from exc

    @staticmethod
    def _decode(raw: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"raw": raw.decode("utf-8", errors="replace")}
        return payload if isinstance(payload, dict) else {"raw": payload}

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, answer = self._request(method, path, payload)
        if status >= 400:
            raise ApiError.from_payload(status, answer)
        return answer

    # -- collector side ----------------------------------------------------

    def register(
        self,
        units: Dict[str, int],
        kpi_names: Sequence[str],
        interval_seconds: float,
    ) -> Dict[str, Any]:
        return self._checked(
            "PUT",
            "/v1/stream",
            encode_handshake(units, kpi_names, interval_seconds),
        )

    def register_source(self, source) -> Dict[str, Any]:
        """Handshake with a :class:`TickSource`'s own fleet metadata."""
        return self.register(
            dict(source.units),
            tuple(source.kpi_names),
            float(source.interval_seconds),
        )

    def post_ticks(
        self, unit: str, events: Sequence[TickEvent], encoding: str = "json"
    ) -> Dict[str, Any]:
        """Post one batch; the answer carries ``status`` alongside counts.

        A 429 comes back as a normal answer (``status == 429`` with
        ``retry_after``) so callers implement their own pacing; other 4xx
        raise :class:`ApiError`.
        """
        status, answer = self._request(
            "POST", "/v1/ticks", encode_tick_batch(unit, events, encoding)
        )
        if status >= 400 and status != 429:
            raise ApiError.from_payload(status, answer)
        answer["status"] = status
        return answer

    def close_stream(self) -> Dict[str, Any]:
        return self._checked("POST", "/v1/stream/close")

    # -- query side --------------------------------------------------------

    def get_units(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/units")

    def get_verdicts(
        self, unit: str, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        suffix = "" if limit is None else f"?limit={limit}"
        return self._checked("GET", f"/v1/units/{unit}/verdicts{suffix}")

    def get_incidents(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/incidents")

    def get_state(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/state")

    def healthz(self) -> bool:
        status, _ = self._request("GET", "/healthz")
        return status == 200


@dataclass
class PushStats:
    """What one :func:`push_dataset` call did."""

    batches: int = 0
    posted: int = 0
    accepted: int = 0
    stale: int = 0
    backpressure_waits: int = 0
    reconnects: int = 0


def push_dataset(
    dataset,
    url: Optional[str] = None,
    url_provider: Optional[Callable[[], str]] = None,
    batch_ticks: int = 32,
    max_ticks: Optional[int] = None,
    timeout_seconds: float = 10.0,
    max_reconnects: int = 8,
    backoff_seconds: float = 0.2,
    backoff_cap_seconds: float = 2.0,
    throttle_seconds: float = 0.0,
    close: bool = True,
    encoding: str = "b64",
) -> PushStats:
    """Replay a dataset over HTTP, preserving the in-process tick order.

    Batches are flushed whenever the interleaved stream switches unit (or
    ``batch_ticks`` accumulate), so the server's arrival order is exactly
    the order :class:`~repro.service.sources.ReplaySource` would deliver
    in-process — the property the golden parity test pins.  On 429 the
    client sleeps the advertised ``retry_after`` and re-posts; on a
    transient transport failure it backs off exponentially (capped),
    re-registers, and replays from the start, which the server's stale
    accounting makes idempotent.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.containers.Dataset`, ``.npz`` path, or
        ready :class:`~repro.service.protocols.TickSource`.
    close:
        Close the stream after the replay (ends the serving run).
    encoding:
        Sample encoding on the wire — ``"b64"`` (default, cheap for the
        server to decode) or ``"json"`` (portable nested arrays).  Both
        are bit-exact; the golden parity test pins each.
    """
    if batch_ticks < 1:
        raise ValueError("batch_ticks must be >= 1")
    if max_reconnects < 0:
        raise ValueError("max_reconnects must be >= 0")
    if backoff_seconds < 0 or backoff_cap_seconds < 0:
        raise ValueError("backoff must be >= 0")
    if throttle_seconds < 0:
        raise ValueError("throttle_seconds must be >= 0")
    if encoding not in ("json", "b64"):
        raise ValueError(f"encoding must be 'json' or 'b64', got {encoding!r}")
    from repro.datasets import Dataset  # lazy: keeps client import light

    if isinstance(dataset, (str, Path, Dataset)):
        source = ReplaySource(dataset, max_ticks=max_ticks)
    else:
        source = dataset  # already a TickSource
    client = ApiClient(
        url=url, url_provider=url_provider, timeout_seconds=timeout_seconds
    )
    stats = PushStats()

    def flush(unit: str, batch: List[TickEvent]) -> None:
        while True:
            answer = client.post_ticks(unit, batch, encoding=encoding)
            if answer["status"] == 429:
                stats.backpressure_waits += 1
                obs.counter("api.client_backpressure_waits").increment()
                time.sleep(float(answer.get("retry_after", 0.05)))
                continue
            stats.batches += 1
            stats.posted += len(batch)
            stats.accepted += int(answer.get("accepted", 0))
            stats.stale += int(answer.get("stale", 0))
            return

    def replay() -> None:
        client.register_source(source)
        unit: Optional[str] = None
        batch: List[TickEvent] = []
        for event in source:
            if batch and (event.unit != unit or len(batch) >= batch_ticks):
                flush(unit, batch)  # type: ignore[arg-type]
                batch = []
                if throttle_seconds:
                    time.sleep(throttle_seconds)
            unit = event.unit
            batch.append(event)
        if batch:
            flush(unit, batch)  # type: ignore[arg-type]
        if close:
            client.close_stream()

    attempts = 0
    with obs.histogram("api.push_seconds").time():
        while True:
            try:
                replay()
                return stats
            except TransientApiError:
                attempts += 1
                if attempts > max_reconnects:
                    raise
                stats.reconnects += 1
                obs.counter("api.client_reconnects").increment()
                time.sleep(
                    min(
                        backoff_seconds * 2 ** (attempts - 1),
                        backoff_cap_seconds,
                    )
                )
