"""HTTP front door of the detection service: ingestion plus queries.

:class:`IngestServer` follows the :class:`~repro.obs.http.ObsServer`
pattern — a stdlib ``ThreadingHTTPServer`` on a daemon thread, ``port=0``
for an ephemeral port in tests — and speaks the
:mod:`repro.service.api.wire` schema:

* ``PUT /v1/stream``        — collector handshake (declare the fleet);
* ``POST /v1/ticks``        — one unit's batched KPI ticks;
* ``POST /v1/stream/close`` — end of stream, the service drains and stops;
* ``GET /v1/units``         — the registered fleet;
* ``GET /v1/units/<id>/verdicts`` — recent detection rounds per unit;
* ``GET /v1/incidents``     — RCA incident lifecycle, newest state;
* ``GET /v1/state``         — durable snapshot/WAL layout on disk;
* ``GET /healthz``          — liveness probe.

Ingestion feeds a :class:`~repro.service.api.source.NetworkSource`; the
query side reads an :class:`ApiState` view that doubles as an alert sink
and as the scheduler's ``result_listener``, so serving queries never
touches detector internals or blocks the detection path.  Handlers never
wait for queue room — backpressure surfaces as ``429`` with a
``Retry-After`` hint, and every schema violation maps to a typed 4xx
body ``{"error": {"code", "message", "field"}}``.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
import threading
import time
from collections import OrderedDict, deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional
from urllib.parse import unquote

from repro.core.detector import UnitDetectionResult
from repro.obs import runtime as obs
from repro.persist.codec import state_next_tick
from repro.persist.store import UnitStore
from repro.service.alerts import Alert, AlertSink
from repro.service.api.source import Backpressure, NetworkSource
from repro.service.api.wire import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_BODY_BYTES,
    WireError,
    decode_body,
    parse_handshake,
    parse_tick_batch,
)

__all__ = ["ApiState", "IngestServer"]


def _result_summary(result: UnitDetectionResult) -> Dict[str, Any]:
    """Flatten one round for the query API (Fig. 7 state paths included)."""
    records = {}
    for db in sorted(result.records):
        record = result.records[db]
        records[str(db)] = {
            "state": record.state.name,
            "expansions": record.expansions,
            "window_start": record.window_start,
            "window_end": record.window_end,
            "state_path": ["OBSERVABLE"] * record.expansions
            + [record.state.name],
        }
    return {
        "start": result.start,
        "end": result.end,
        "window_size": result.window_size,
        "abnormal_databases": list(result.abnormal_databases),
        "records": records,
    }


class ApiState(AlertSink):
    """Thread-safe view the query endpoints read.

    Plugs into the service twice: as the scheduler's ``result_listener``
    (via :meth:`record_result`) for verdict histories, and as an alert
    sink for alerts and RCA incident lifecycle events.  Everything is
    bounded by ``history_limit`` so an indefinite run cannot grow the
    view without bound.
    """

    def __init__(self, history_limit: int = 256):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._lock = threading.Lock()
        self._verdicts: Dict[str, Deque[Dict[str, Any]]] = {}
        self._rounds: Dict[str, int] = {}
        self._alerts: Deque[Dict[str, Any]] = deque(maxlen=history_limit)
        self._incidents: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def record_result(self, unit: str, result: UnitDetectionResult) -> None:
        summary = _result_summary(result)
        with self._lock:
            if unit not in self._verdicts:
                self._verdicts[unit] = deque(maxlen=self.history_limit)
            self._verdicts[unit].append(summary)
            self._rounds[unit] = self._rounds.get(unit, 0) + 1

    def emit(self, alert: Alert) -> None:
        with self._lock:
            self._alerts.append(alert.to_dict())

    def emit_incident(self, event) -> None:
        # Keyed by id so each incident surfaces once, at its newest state.
        payload = event.to_dict()
        with self._lock:
            incident_id = str(payload["incident_id"])
            self._incidents[incident_id] = payload
            self._incidents.move_to_end(incident_id)
            while len(self._incidents) > self.history_limit:
                self._incidents.popitem(last=False)

    def verdicts(
        self, unit: str, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        with self._lock:
            rounds = list(self._verdicts.get(unit, ()))
        if limit is not None:
            rounds = rounds[-limit:]
        return rounds

    def rounds_recorded(self, unit: str) -> int:
        """Total rounds seen for a unit (not capped by the history limit)."""
        with self._lock:
            return self._rounds.get(unit, 0)

    def alerts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._alerts)

    def incidents(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._incidents.values())


def _state_overview(state_dir: Optional[str]) -> Dict[str, Any]:
    """Summarize the durable state directory for ``GET /v1/state``.

    Read-only over the :mod:`repro.persist` layout: the atomic-replace
    snapshot discipline means whatever ``load_snapshot`` returns is
    complete, even while the service is writing next door.
    """
    overview: Dict[str, Any] = {"state_dir": state_dir, "units": {}}
    if state_dir is None or not os.path.isdir(state_dir):
        return overview
    for name in sorted(os.listdir(state_dir)):
        directory = os.path.join(state_dir, name)
        if not os.path.isdir(directory):
            continue
        files = os.listdir(directory)
        store = UnitStore(state_dir, name, wal_sync="snapshot")
        snapshot = store.load_snapshot()
        overview["units"][name] = {
            "snapshot": snapshot is not None,
            "next_tick": None if snapshot is None else state_next_tick(snapshot),
            "wal_segments": len(fnmatch.filter(files, "wal-*.jsonl")),
            "archived_segments": len(fnmatch.filter(files, "archive*.jsonl")),
        }
    return overview


class IngestServer:
    """Serve the v1 ingestion + query API over HTTP.

    Parameters
    ----------
    source:
        The :class:`NetworkSource` ingested ticks feed.
    view:
        Optional :class:`ApiState` backing the verdict/incident queries;
        without one those endpoints answer with empty histories.
    host, port:
        Bind address; ``port=0`` (default) picks a free ephemeral port.
        ``allow_reuse_address`` is on, so a warm restart can re-bind the
        same port immediately — the kill drill depends on that.
    state_dir:
        Durable-state directory ``GET /v1/state`` reports on.
    max_batch, max_body_bytes:
        Wire-level request caps (413 beyond either).
    """

    def __init__(
        self,
        source: NetworkSource,
        view: Optional[ApiState] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dir: Optional[str] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.source = source
        self.view = view
        self.state_dir = state_dir
        self.max_batch = max_batch
        self.max_body_bytes = max_body_bytes
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                server._handle(self, "GET")

            def do_PUT(self) -> None:  # noqa: N802 - stdlib API name
                server._handle(self, "PUT")

            def do_POST(self) -> None:  # noqa: N802 - stdlib API name
                server._handle(self, "POST")

            def log_message(self, format: str, *args) -> None:
                pass  # collectors post every interval; stderr would flood

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = threading.Thread(
            target=self._server.serve_forever,
            name="repro-api-http",
            daemon=True,
        )
        self._thread.start()

    # -- plumbing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (the source stays usable)."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "IngestServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _send_json(
        handler: BaseHTTPRequestHandler,
        status: int,
        payload: Dict[str, Any],
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            handler.send_header("Retry-After", str(math.ceil(retry_after)))
        handler.end_headers()
        try:
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; nothing to salvage

    def _read_body(self, handler: BaseHTTPRequestHandler) -> Any:
        return decode_body(self._read_raw(handler), self.max_body_bytes)

    def _read_raw(self, handler: BaseHTTPRequestHandler) -> bytes:
        length = handler.headers.get("Content-Length")
        if length is None:
            raise WireError(
                "missing_length", "Content-Length is required", status=411
            )
        try:
            n_bytes = int(length)
        except ValueError:
            raise WireError(
                "bad_length", f"Content-Length {length!r} is not an integer"
            ) from None
        if n_bytes < 0:
            raise WireError("bad_length", "Content-Length must be >= 0")
        if n_bytes > self.max_body_bytes:
            raise WireError(
                "body_too_large",
                f"body is {n_bytes} bytes, limit {self.max_body_bytes}",
                status=413,
            )
        return handler.rfile.read(n_bytes)

    # -- routing -----------------------------------------------------------

    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        started = time.perf_counter()
        path = unquote(handler.path.split("?", 1)[0])
        query = handler.path.partition("?")[2]
        obs.counter("api.requests").increment()
        try:
            if method == "GET":
                self._handle_get(handler, path, query)
            elif method == "PUT" and path == "/v1/stream":
                self._handle_stream(handler)
            elif method == "POST" and path == "/v1/ticks":
                self._handle_ticks(handler)
            elif method == "POST" and path == "/v1/stream/close":
                self.source.close_stream()
                self._send_json(handler, 200, {"closed": True})
            else:
                raise WireError(
                    "not_found", f"no route for {method} {path}", status=404
                )
        except Backpressure as exc:
            self._send_json(
                handler,
                429,
                {
                    "accepted": exc.accepted,
                    "stale": exc.stale,
                    "retry_after": exc.retry_after_seconds,
                    "error": {
                        "code": "backpressure",
                        "message": str(exc),
                    },
                },
                retry_after=exc.retry_after_seconds,
            )
        except WireError as exc:
            obs.counter("api.errors").increment()
            self._send_json(handler, exc.status, {"error": exc.to_dict()})
        except Exception as exc:  # never let a bug kill the handler thread
            obs.counter("api.internal_errors").increment()
            self._send_json(
                handler,
                500,
                {"error": {"code": "internal", "message": str(exc)}},
            )
        finally:
            obs.histogram("api.request_seconds").observe(
                time.perf_counter() - started
            )

    def _handle_stream(self, handler: BaseHTTPRequestHandler) -> None:
        fleet = parse_handshake(self._read_body(handler))
        created = self.source.register(fleet)
        self._send_json(
            handler,
            201 if created else 200,
            {"registered": True, "created": created},
        )

    def _handle_ticks(self, handler: BaseHTTPRequestHandler) -> None:
        # The socket read is transport wait (it blocks off-GIL until the
        # client's bytes arrive) — only the CPU work that contends with
        # detection is charged to the gated ingest span: JSON decode,
        # wire validation, and queue admission.
        raw = self._read_raw(handler)
        with obs.histogram("api.ingest_seconds").time():
            payload = decode_body(raw, self.max_body_bytes)
            fleet = self.source.fleet
            unit, events = parse_tick_batch(
                payload, fleet=fleet, max_batch=self.max_batch
            )
            counts = self.source.offer_batch(unit, events)
        self._send_json(handler, 200, counts)

    def _handle_get(
        self, handler: BaseHTTPRequestHandler, path: str, query: str
    ) -> None:
        if path == "/healthz":
            body = b"ok\n"
            handler.send_response(200)
            handler.send_header("Content-Type", "text/plain; charset=utf-8")
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
            return
        if path == "/v1/units":
            fleet = self.source.fleet
            if fleet is None:
                self._send_json(handler, 200, {"registered": False, "units": {}})
            else:
                self._send_json(
                    handler,
                    200,
                    {
                        "registered": True,
                        "units": dict(fleet.units),
                        "kpi_names": list(fleet.kpi_names),
                        "interval_seconds": fleet.interval_seconds,
                    },
                )
            return
        if path == "/v1/incidents":
            incidents = self.view.incidents() if self.view is not None else []
            self._send_json(handler, 200, {"incidents": incidents})
            return
        if path == "/v1/state":
            self._send_json(handler, 200, _state_overview(self.state_dir))
            return
        parts = path.strip("/").split("/")
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "units"]
            and parts[3] == "verdicts"
        ):
            unit = parts[2]
            fleet = self.source.fleet
            if fleet is not None and unit not in fleet.units:
                raise WireError(
                    "unknown_unit",
                    f"unit {unit!r} is not in the registered fleet",
                    field="unit",
                    status=404,
                )
            limit = self._parse_limit(query)
            rounds = (
                self.view.verdicts(unit, limit=limit)
                if self.view is not None
                else []
            )
            total = (
                self.view.rounds_recorded(unit) if self.view is not None else 0
            )
            self._send_json(
                handler,
                200,
                {"unit": unit, "rounds": total, "verdicts": rounds},
            )
            return
        raise WireError("not_found", f"no route for GET {path}", status=404)

    @staticmethod
    def _parse_limit(query: str) -> Optional[int]:
        for part in query.split("&"):
            if part.startswith("limit="):
                raw = part[len("limit="):]
                try:
                    limit = int(raw)
                except ValueError:
                    raise WireError(
                        "bad_value",
                        f"limit must be an integer, got {raw!r}",
                        field="limit",
                    ) from None
                if limit < 1:
                    raise WireError(
                        "bad_value", "limit must be >= 1", field="limit"
                    )
                return limit
        return None
