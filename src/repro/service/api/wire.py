"""Wire schema v1 for the network ingestion plane.

External collectors talk to :class:`~repro.service.api.server.IngestServer`
in JSON over HTTP.  This module is the single source of truth for that
contract: payload shapes, the schema version handshake, and the typed
error taxonomy.  Parsing is deliberately strict and hand-rolled — every
field is type-checked before any value reaches numpy, because
``np.asarray`` would silently coerce strings and booleans into floats and
the detector would never know the transport was lying to it.

Two payload kinds exist:

* **handshake** (``PUT /v1/stream``) — declares the fleet: unit names and
  database counts, the KPI vocabulary, and the collection interval.  The
  server pins the first handshake; conflicting re-registration is an
  error, identical re-registration is idempotent (collectors re-register
  after reconnecting).
* **tick batch** (``POST /v1/ticks``) — one unit's consecutive KPI
  matrices, each stamped with its per-unit sequence number.

A tick carries its sample in exactly one of two encodings:

* ``"sample"`` — nested JSON arrays of numbers.  Portable and
  eyeball-debuggable; this is what a ``curl`` reproduction or a foreign
  collector sends.
* ``"sample_b64"`` + ``"shape"`` — base64 of the raw little-endian
  float64 matrix, row-major.  Decoding is a single ``b64decode`` +
  ``frombuffer`` instead of one ``strtod`` per cell, which is what keeps
  ingestion CPU inside the <=5% serving-overhead budget at full replay
  speed; :func:`~repro.service.api.client.push_dataset` uses it by
  default.

Bit-exactness holds on both paths: JSON numbers are produced by Python's
float ``repr``, which round-trips IEEE-754 doubles exactly, and the
base64 blob *is* the IEEE-754 bytes (endianness pinned to
little-endian), so a network replay can match an in-process replay to
the last bit (the golden parity test pins this for both encodings).
``NaN``/``Infinity`` literals are rejected at the JSON layer via
``parse_constant``, overflowing decimals (``1e999``) by an ``isfinite``
sweep after parsing, and non-finite bytes smuggled through base64 by the
same sweep.

Every validation failure raises :class:`WireError` carrying a stable
machine-readable ``code``, the dotted path of the offending ``field``,
and the HTTP status the server should answer with.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.sources import TickEvent

__all__ = [
    "WIRE_VERSION",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BODY_BYTES",
    "WireError",
    "FleetSpec",
    "decode_body",
    "parse_handshake",
    "parse_tick_batch",
    "encode_handshake",
    "encode_tick_batch",
]

#: Current wire schema version.  Bump on any incompatible payload change;
#: the server rejects other versions with ``bad_version`` so old and new
#: collectors fail loudly instead of half-parsing.
WIRE_VERSION = 1

#: Default cap on ticks per ``POST /v1/ticks`` batch.
DEFAULT_MAX_BATCH = 256

#: Default cap on request body size (a 413 guard, not a schema property).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


class WireError(ValueError):
    """A payload violated the wire schema.

    Parameters
    ----------
    code:
        Stable machine-readable slug (``bad_type``, ``not_finite``, …) —
        see DESIGN.md for the full taxonomy.
    message:
        Human-readable explanation.
    field:
        Dotted path of the offending field (``ticks[3].sample[1][0]``),
        when one specific field is to blame.
    status:
        HTTP status the server should answer with (4xx).
    """

    def __init__(
        self,
        code: str,
        message: str,
        field: Optional[str] = None,
        status: int = 400,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.field is not None:
            payload["field"] = self.field
        return payload


@dataclass(frozen=True)
class FleetSpec:
    """The fleet a collector declared in its handshake."""

    units: Dict[str, int]
    kpi_names: Tuple[str, ...]
    interval_seconds: float


def _reject_constant(literal: str) -> Any:
    raise WireError(
        "not_finite",
        f"JSON constant {literal!r} is not allowed; samples must be finite",
    )


def decode_body(raw: bytes, max_bytes: int = DEFAULT_MAX_BODY_BYTES) -> Any:
    """Decode a request body into a JSON value, or raise :class:`WireError`."""
    if len(raw) > max_bytes:
        raise WireError(
            "body_too_large",
            f"body is {len(raw)} bytes, limit {max_bytes}",
            status=413,
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError("bad_encoding", f"body is not UTF-8: {exc}") from exc
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except WireError:
        raise
    except json.JSONDecodeError as exc:
        raise WireError("bad_json", f"body is not JSON: {exc}") from exc


def _require_mapping(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise WireError(
            "bad_type",
            f"{what} must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def _check_version(payload: Dict[str, Any]) -> None:
    if "version" not in payload:
        raise WireError("bad_version", "missing schema version", field="version")
    version = payload["version"]
    if isinstance(version, bool) or not isinstance(version, int):
        raise WireError(
            "bad_version",
            f"version must be an integer, got {type(version).__name__}",
            field="version",
        )
    if version != WIRE_VERSION:
        raise WireError(
            "bad_version",
            f"unsupported schema version {version}; this server speaks "
            f"version {WIRE_VERSION}",
            field="version",
        )


def _require_str(value: Any, field: str) -> str:
    if not isinstance(value, str):
        raise WireError(
            "bad_type",
            f"{field} must be a string, got {type(value).__name__}",
            field=field,
        )
    if not value:
        raise WireError("bad_value", f"{field} must be non-empty", field=field)
    return value


def _require_int(value: Any, field: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(
            "bad_type",
            f"{field} must be an integer, got {type(value).__name__}",
            field=field,
        )
    if value < minimum:
        raise WireError(
            "bad_value", f"{field} must be >= {minimum}, got {value}", field=field
        )
    return value


def _require_number(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(
            "bad_type",
            f"{field} must be a number, got {type(value).__name__}",
            field=field,
        )
    result = float(value)
    if not np.isfinite(result):
        raise WireError("not_finite", f"{field} must be finite", field=field)
    return result


def parse_handshake(payload: Any) -> FleetSpec:
    """Validate a ``PUT /v1/stream`` payload into a :class:`FleetSpec`."""
    body = _require_mapping(payload, "handshake")
    _check_version(body)
    if "units" not in body:
        raise WireError("missing_field", "handshake needs units", field="units")
    raw_units = body["units"]
    if not isinstance(raw_units, dict):
        raise WireError(
            "bad_type",
            f"units must be an object, got {type(raw_units).__name__}",
            field="units",
        )
    if not raw_units:
        raise WireError("bad_value", "units must be non-empty", field="units")
    units: Dict[str, int] = {}
    for name, n_databases in raw_units.items():
        _require_str(name, "units key")
        units[name] = _require_int(
            n_databases, f"units[{name!r}]", minimum=1
        )
    if "kpi_names" not in body:
        raise WireError(
            "missing_field", "handshake needs kpi_names", field="kpi_names"
        )
    raw_names = body["kpi_names"]
    if not isinstance(raw_names, list):
        raise WireError(
            "bad_type",
            f"kpi_names must be an array, got {type(raw_names).__name__}",
            field="kpi_names",
        )
    if not raw_names:
        raise WireError(
            "bad_value", "kpi_names must be non-empty", field="kpi_names"
        )
    kpi_names = tuple(
        _require_str(name, f"kpi_names[{index}]")
        for index, name in enumerate(raw_names)
    )
    if len(set(kpi_names)) != len(kpi_names):
        raise WireError(
            "bad_value", "kpi_names must be unique", field="kpi_names"
        )
    if "interval_seconds" not in body:
        raise WireError(
            "missing_field",
            "handshake needs interval_seconds",
            field="interval_seconds",
        )
    interval = _require_number(body["interval_seconds"], "interval_seconds")
    if interval <= 0:
        raise WireError(
            "bad_value",
            f"interval_seconds must be positive, got {interval}",
            field="interval_seconds",
        )
    return FleetSpec(
        units=units, kpi_names=kpi_names, interval_seconds=interval
    )


def _check_sample(
    sample: np.ndarray, field: str, shape: Optional[Tuple[int, int]]
) -> np.ndarray:
    if shape is not None and sample.shape != shape:
        raise WireError(
            "bad_shape",
            f"{field} has shape {sample.shape}, the registered fleet "
            f"expects {shape}",
            field=field,
        )
    if not np.isfinite(sample).all():
        bad = np.argwhere(~np.isfinite(sample))[0]
        cell_field = f"{field}[{int(bad[0])}][{int(bad[1])}]"
        raise WireError(
            "not_finite", f"{cell_field} is not finite", field=cell_field
        )
    return sample


def _parse_sample(
    raw: Any, field: str, shape: Optional[Tuple[int, int]]
) -> np.ndarray:
    if not isinstance(raw, list):
        raise WireError(
            "bad_type",
            f"{field} must be an array of rows, got {type(raw).__name__}",
            field=field,
        )
    if not raw:
        raise WireError("bad_shape", f"{field} must be non-empty", field=field)
    # Fast path: a rectangular grid of plain numbers converts in one
    # C-level pass.  Exact ``type`` checks (not isinstance) keep bools,
    # subclasses and anything exotic on the slow path, whose per-cell
    # errors name the offending cell.
    first = raw[0]
    if type(first) is list and first:
        width = len(first)
        if all(
            type(row) is list
            and len(row) == width
            and all(type(v) is float or type(v) is int for v in row)
            for row in raw
        ):
            try:
                return _check_sample(
                    np.array(raw, dtype=np.float64), field, shape
                )
            except OverflowError:
                pass  # an int too large for float64: let the slow path name it
    rows: List[List[float]] = []
    width: Optional[int] = None
    for r, raw_row in enumerate(raw):
        row_field = f"{field}[{r}]"
        if not isinstance(raw_row, list):
            raise WireError(
                "bad_type",
                f"{row_field} must be an array, got {type(raw_row).__name__}",
                field=row_field,
            )
        if not raw_row:
            raise WireError(
                "bad_shape", f"{row_field} must be non-empty", field=row_field
            )
        if width is None:
            width = len(raw_row)
        elif len(raw_row) != width:
            raise WireError(
                "bad_shape",
                f"{row_field} has {len(raw_row)} columns, row 0 has {width}",
                field=row_field,
            )
        row: List[float] = []
        for c, value in enumerate(raw_row):
            cell_field = f"{row_field}[{c}]"
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise WireError(
                    "bad_type",
                    f"{cell_field} must be a number, "
                    f"got {type(value).__name__}",
                    field=cell_field,
                )
            try:
                row.append(float(value))
            except OverflowError:
                raise WireError(
                    "bad_value",
                    f"{cell_field} overflows float64",
                    field=cell_field,
                ) from None
        rows.append(row)
    return _check_sample(np.asarray(rows, dtype=np.float64), field, shape)


def _parse_sample_b64(
    raw_tick: Dict[str, Any], tick_field: str, shape: Optional[Tuple[int, int]]
) -> np.ndarray:
    field = f"{tick_field}.sample_b64"
    raw = raw_tick["sample_b64"]
    if not isinstance(raw, str):
        raise WireError(
            "bad_type",
            f"{field} must be a base64 string, got {type(raw).__name__}",
            field=field,
        )
    shape_field = f"{tick_field}.shape"
    if "shape" not in raw_tick:
        raise WireError(
            "missing_field",
            f"{tick_field} needs shape alongside sample_b64",
            field=shape_field,
        )
    raw_shape = raw_tick["shape"]
    if (
        not isinstance(raw_shape, list)
        or len(raw_shape) != 2
        or any(
            isinstance(v, bool) or not isinstance(v, int) for v in raw_shape
        )
    ):
        raise WireError(
            "bad_type",
            f"{shape_field} must be a [rows, cols] pair of integers",
            field=shape_field,
        )
    rows, cols = raw_shape
    if rows < 1 or cols < 1:
        raise WireError(
            "bad_shape",
            f"{shape_field} must be positive, got [{rows}, {cols}]",
            field=shape_field,
        )
    try:
        blob = base64.b64decode(raw.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise WireError(
            "bad_encoding", f"{field} is not valid base64: {exc}", field=field
        ) from exc
    expected = rows * cols * 8
    if len(blob) != expected:
        raise WireError(
            "bad_shape",
            f"{field} decodes to {len(blob)} bytes; shape [{rows}, {cols}] "
            f"needs {expected}",
            field=field,
        )
    # ``astype`` both normalises the pinned little-endian dtype on any
    # host and copies out of the read-only bytes buffer.
    sample = (
        np.frombuffer(blob, dtype="<f8")
        .astype(np.float64)
        .reshape(rows, cols)
    )
    return _check_sample(sample, field, shape)


def parse_tick_batch(
    payload: Any,
    fleet: Optional[FleetSpec] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> Tuple[str, List[TickEvent]]:
    """Validate a ``POST /v1/ticks`` payload into ``(unit, events)``.

    With a registered ``fleet``, the unit must be known and each sample's
    shape must match ``(units[unit], len(kpi_names))``; without one, any
    rectangular finite sample passes (codec-level use, e.g. fuzzing).
    Sequence numbers must be strictly increasing *within* the batch —
    duplicates across batches are a transport property the server counts
    as stale, but a self-contradictory batch is a malformed payload.
    """
    body = _require_mapping(payload, "tick batch")
    _check_version(body)
    if "unit" not in body:
        raise WireError("missing_field", "tick batch needs unit", field="unit")
    unit = _require_str(body["unit"], "unit")
    shape: Optional[Tuple[int, int]] = None
    if fleet is not None:
        if unit not in fleet.units:
            raise WireError(
                "unknown_unit",
                f"unit {unit!r} is not in the registered fleet",
                field="unit",
                status=404,
            )
        shape = (fleet.units[unit], len(fleet.kpi_names))
    if "ticks" not in body:
        raise WireError("missing_field", "tick batch needs ticks", field="ticks")
    raw_ticks = body["ticks"]
    if not isinstance(raw_ticks, list):
        raise WireError(
            "bad_type",
            f"ticks must be an array, got {type(raw_ticks).__name__}",
            field="ticks",
        )
    if not raw_ticks:
        raise WireError("bad_value", "ticks must be non-empty", field="ticks")
    if len(raw_ticks) > max_batch:
        raise WireError(
            "batch_too_large",
            f"batch has {len(raw_ticks)} ticks, limit {max_batch}",
            field="ticks",
            status=413,
        )
    events: List[TickEvent] = []
    previous_seq: Optional[int] = None
    for index, raw_tick in enumerate(raw_ticks):
        tick_field = f"ticks[{index}]"
        if not isinstance(raw_tick, dict):
            raise WireError(
                "bad_type",
                f"{tick_field} must be an object, "
                f"got {type(raw_tick).__name__}",
                field=tick_field,
            )
        if "seq" not in raw_tick:
            raise WireError(
                "missing_field",
                f"{tick_field} needs seq",
                field=f"{tick_field}.seq",
            )
        seq = _require_int(raw_tick["seq"], f"{tick_field}.seq")
        if previous_seq is not None and seq <= previous_seq:
            raise WireError(
                "out_of_order",
                f"{tick_field}.seq is {seq} after {previous_seq}; sequence "
                "numbers must be strictly increasing within a batch",
                field=f"{tick_field}.seq",
            )
        previous_seq = seq
        has_json = "sample" in raw_tick
        has_b64 = "sample_b64" in raw_tick
        if has_json and has_b64:
            raise WireError(
                "bad_value",
                f"{tick_field} must carry exactly one of sample / "
                "sample_b64, not both",
                field=f"{tick_field}.sample",
            )
        if has_json:
            sample = _parse_sample(
                raw_tick["sample"], f"{tick_field}.sample", shape
            )
        elif has_b64:
            sample = _parse_sample_b64(raw_tick, tick_field, shape)
        else:
            raise WireError(
                "missing_field",
                f"{tick_field} needs sample or sample_b64",
                field=f"{tick_field}.sample",
            )
        events.append(TickEvent(unit=unit, seq=seq, sample=sample))
    return unit, events


def encode_handshake(
    units: Dict[str, int],
    kpi_names: Sequence[str],
    interval_seconds: float,
) -> Dict[str, Any]:
    """Build a ``PUT /v1/stream`` payload."""
    return {
        "version": WIRE_VERSION,
        "units": {name: int(count) for name, count in units.items()},
        "kpi_names": list(kpi_names),
        "interval_seconds": float(interval_seconds),
    }


def encode_tick_batch(
    unit: str, events: Sequence[TickEvent], encoding: str = "json"
) -> Dict[str, Any]:
    """Build a ``POST /v1/ticks`` payload from tick events.

    Both encodings are bit-exact.  ``"json"`` goes through ``tolist`` —
    Python floats whose ``repr`` round-trips IEEE-754 exactly.  ``"b64"``
    ships the raw little-endian float64 bytes; it is ~30x cheaper for the
    server to decode, which is why the hot push path prefers it.
    """
    if encoding not in ("json", "b64"):
        raise ValueError(f"encoding must be 'json' or 'b64', got {encoding!r}")
    ticks: List[Dict[str, Any]] = []
    for event in events:
        sample = np.asarray(event.sample, dtype=np.float64)
        tick: Dict[str, Any] = {"seq": int(event.seq)}
        if encoding == "b64":
            blob = sample.astype("<f8", copy=False).tobytes()
            tick["sample_b64"] = base64.b64encode(blob).decode("ascii")
            tick["shape"] = [int(sample.shape[0]), int(sample.shape[1])]
        else:
            tick["sample"] = sample.tolist()
        ticks.append(tick)
    return {"version": WIRE_VERSION, "unit": unit, "ticks": ticks}
