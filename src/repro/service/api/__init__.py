"""Network ingestion plane: HTTP in, :class:`TickSource` out.

The deployable boundary of the reproduction — external collectors POST
JSON KPI ticks (:mod:`repro.service.api.wire` defines the schema), a
bounded :class:`NetworkSource` bridges them into the scheduler with
lossless backpressure, and :class:`IngestServer` also answers queries
over verdicts, RCA incidents and durable state.  ``repro serve
--ingest-port`` wires it into the CLI; ``repro push`` is the collector
side used by the drills.
"""

from repro.service.api.client import (
    ApiClient,
    ApiError,
    PushStats,
    TransientApiError,
    push_dataset,
)
from repro.service.api.server import ApiState, IngestServer
from repro.service.api.source import Backpressure, NetworkSource
from repro.service.api.wire import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_BODY_BYTES,
    WIRE_VERSION,
    FleetSpec,
    WireError,
    decode_body,
    encode_handshake,
    encode_tick_batch,
    parse_handshake,
    parse_tick_batch,
)

__all__ = [
    "WIRE_VERSION",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BODY_BYTES",
    "FleetSpec",
    "WireError",
    "decode_body",
    "parse_handshake",
    "parse_tick_batch",
    "encode_handshake",
    "encode_tick_batch",
    "Backpressure",
    "NetworkSource",
    "ApiState",
    "IngestServer",
    "ApiClient",
    "ApiError",
    "TransientApiError",
    "PushStats",
    "push_dataset",
]
