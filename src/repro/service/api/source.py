"""NetworkSource: the bounded bridge from HTTP ingestion to the scheduler.

The ingestion server parses validated :class:`TickEvent`\\ s out of HTTP
requests and *offers* them here; :meth:`NetworkSource.__iter__` replays
them to :class:`~repro.service.scheduler.DetectionService` in arrival
order, satisfying the :class:`~repro.service.protocols.TickSource`
protocol.  A single bounded arrival-order queue preserves whatever unit
interleaving the collector chose — which is what lets a network replay of
a dataset reproduce the in-process run bit-for-bit.

Flow control is explicitly lossless: offers never block an HTTP thread
and never drop.  When the queue is full the offer fails mid-batch with
:class:`Backpressure` (the server turns it into ``429 Retry-After``);
unadmitted ticks do not advance the per-unit sequence cursor, so the
client simply re-posts the batch and already-admitted ticks are counted
*stale* rather than fed to a detector twice.  The same stale accounting
makes replay-from-zero after a reconnect idempotent — that is what the
kill drill leans on.

The fleet metadata properties (``units`` / ``kpi_names`` /
``interval_seconds``) block until a collector registers a stream, which
naturally gates ``DetectionService.run`` (it reads ``source.units``
before consuming any tick).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import runtime as obs
from repro.service.api.wire import FleetSpec, WireError
from repro.service.queues import QueueClosed, QueueFull, TickQueue
from repro.service.sources import TickEvent

__all__ = ["Backpressure", "NetworkSource"]


class Backpressure(RuntimeError):
    """An offer ran out of queue room part-way through a batch.

    Parameters
    ----------
    accepted, stale:
        Ticks admitted / rejected-as-stale before the queue filled.
    retry_after_seconds:
        Hint for the client's ``Retry-After`` wait.
    """

    def __init__(self, accepted: int, stale: int, retry_after_seconds: float):
        super().__init__(
            f"ingest queue full after accepting {accepted} ticks; "
            f"retry in {retry_after_seconds:.3g}s"
        )
        self.accepted = accepted
        self.stale = stale
        self.retry_after_seconds = retry_after_seconds


class NetworkSource:
    """A :class:`~repro.service.protocols.TickSource` fed over the network.

    Parameters
    ----------
    capacity:
        Bound of the arrival-order tick queue.
    handshake_timeout_seconds:
        How long the metadata properties wait for a collector to register
        before raising :class:`TimeoutError`.
    retry_after_seconds:
        Backpressure hint returned to clients with every 429.
    poll_seconds:
        Iterator wake-up cadence while the queue is empty (also bounds
        how quickly a close is noticed).
    """

    def __init__(
        self,
        capacity: int = 1024,
        handshake_timeout_seconds: float = 600.0,
        retry_after_seconds: float = 0.05,
        poll_seconds: float = 0.05,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if handshake_timeout_seconds <= 0:
            raise ValueError("handshake_timeout_seconds must be positive")
        if retry_after_seconds <= 0:
            raise ValueError("retry_after_seconds must be positive")
        if poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        self.capacity = capacity
        self.handshake_timeout_seconds = handshake_timeout_seconds
        self.retry_after_seconds = retry_after_seconds
        self.poll_seconds = poll_seconds
        self._queue: TickQueue[TickEvent] = TickQueue(capacity)
        #: Guards fleet registration and the per-unit sequence cursors, so
        #: the admit-or-stale decision is atomic under concurrent posters
        #: (same contract as ``IngestionBridge._seq_lock``).
        self._lock = threading.Lock()
        self._registered = threading.Event()
        self._fleet: Optional[FleetSpec] = None
        self._next_seq: Dict[str, int] = {}
        self._closed = False
        #: Ticks admitted to the queue so far.
        self.accepted_total = 0
        #: Duplicate / already-passed ticks rejected so far.
        self.stale_total = 0
        #: Offers refused (whole or partial) because the queue was full.
        self.backpressure_total = 0

    # -- collector-facing surface (called by the HTTP server) -------------

    def register(self, fleet: FleetSpec) -> bool:
        """Pin the fleet declared by a collector handshake.

        Returns ``True`` on first registration, ``False`` for an
        identical (idempotent) re-registration — collectors re-handshake
        after every reconnect.  A *conflicting* fleet raises
        ``WireError(fleet_conflict)``: silently swapping topology under a
        running detector is never right.
        """
        with self._lock:
            if self._closed:
                raise WireError(
                    "stream_closed", "the stream is closed", status=409
                )
            if self._fleet is not None:
                if fleet == self._fleet:
                    return False
                raise WireError(
                    "fleet_conflict",
                    "a different fleet is already registered on this stream",
                    status=409,
                )
            self._fleet = fleet
            self._next_seq = {name: 0 for name in fleet.units}
            self._registered.set()
        obs.counter("api.streams_registered").increment()
        return True

    def offer_batch(
        self, unit: str, events: Sequence[TickEvent]
    ) -> Dict[str, int]:
        """Admit one validated batch; returns accepted / stale counts.

        Raises :class:`Backpressure` when the queue fills mid-batch (the
        sequence cursor stops at the first unadmitted tick, so a verbatim
        re-post resumes exactly where this offer stopped) and
        ``WireError`` for protocol-state errors (no stream, closed
        stream, unknown unit).
        """
        with self._lock:
            if self._fleet is None:
                raise WireError(
                    "no_stream",
                    "no stream registered; PUT /v1/stream first",
                    status=409,
                )
            if self._closed:
                raise WireError(
                    "stream_closed", "the stream is closed", status=409
                )
            if unit not in self._next_seq:
                raise WireError(
                    "unknown_unit",
                    f"unit {unit!r} is not in the registered fleet",
                    field="unit",
                    status=404,
                )
            accepted = 0
            stale = 0
            for event in events:
                if event.seq < self._next_seq[unit]:
                    stale += 1
                    continue
                try:
                    admitted = self._queue.try_put(event)
                except QueueClosed:
                    self._record(accepted, stale)
                    raise WireError(
                        "stream_closed", "the stream is closed", status=409
                    ) from None
                if not admitted:
                    self._record(accepted, stale)
                    self.backpressure_total += 1
                    obs.counter("api.backpressure_rejections").increment()
                    raise Backpressure(
                        accepted, stale, self.retry_after_seconds
                    )
                self._next_seq[unit] = event.seq + 1
                accepted += 1
            self._record(accepted, stale)
            return {"accepted": accepted, "stale": stale}

    def _record(self, accepted: int, stale: int) -> None:
        # Called with self._lock held.
        self.accepted_total += accepted
        self.stale_total += stale
        if accepted:
            obs.counter("api.ticks_accepted").increment(accepted)
        if stale:
            obs.counter("api.ticks_stale").increment(stale)
        obs.gauge("api.queue_depth").set(len(self._queue))

    @property
    def fleet(self) -> Optional[FleetSpec]:
        """The registered fleet, or ``None`` before the handshake.

        Non-blocking, unlike the :class:`TickSource` metadata properties —
        this is what the HTTP handlers consult per request.
        """
        with self._lock:
            return self._fleet

    def close_stream(self) -> None:
        """End of stream: the iterator finishes once the queue drains."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.close()
        obs.counter("api.streams_closed").increment()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- scheduler-facing surface (the TickSource protocol) ----------------

    def _spec(self) -> FleetSpec:
        if not self._registered.wait(timeout=self.handshake_timeout_seconds):
            raise TimeoutError(
                "no collector registered a stream within "
                f"{self.handshake_timeout_seconds:.3g}s"
            )
        fleet = self._fleet
        assert fleet is not None
        return fleet

    @property
    def units(self) -> Dict[str, int]:
        """Unit name -> database count; blocks until the handshake."""
        return dict(self._spec().units)

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return tuple(self._spec().kpi_names)

    @property
    def interval_seconds(self) -> float:
        return float(self._spec().interval_seconds)

    def __iter__(self) -> Iterator[TickEvent]:
        self._spec()  # no ticks before a handshake
        while True:
            try:
                event = self._queue.get(timeout=self.poll_seconds)
            except QueueFull:
                continue  # empty-and-open: poll again
            except QueueClosed:
                return  # closed and fully drained
            yield event
