"""Fleet scheduler: the online multi-unit detection service.

:class:`DetectionService` wires the subsystem together — tick source ->
ingestion bridge (bounded queues, backpressure) -> sharded worker pool ->
alert pipeline — and runs the whole fleet to completion of the source (or
a tick budget).  The §IV-D4 deployment in miniature: many units' detectors
screened concurrently, results surfacing as alerts while operational
counters and latency histograms accumulate in the metrics registry.

:func:`detect_fleet` is the offline convenience over the same machinery:
shard a saved dataset across ``jobs`` workers and get back per-unit
verdicts bit-identical to running ``DBCatcher.process`` on each unit
serially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher, UnitDetectionResult
from repro.core.records import JudgementRecord
from repro.obs import runtime as obs
from repro.persist.codec import decode_config
from repro.persist.store import FleetStateStore
from repro.service.alerts import Alert, AlertPipeline, AlertSink
from repro.service.config import ServiceConfig
from repro.service.metrics import MetricsRegistry
from repro.service.queues import IngestionBridge
from repro.service.protocols import TickSource
from repro.service.sources import ReplaySource, TickEvent
from repro.service.tuning import RetrainEvent, TuningCoordinator
from repro.service.workers import UnitSpec, make_pool

if TYPE_CHECKING:  # imported lazily at runtime: repro.rca pulls in sources
    from repro.ensemble import FusedVerdict
    from repro.logs.channel import LogChannel
    from repro.logs.events import LogBook
    from repro.rca.incidents import Incident
    from repro.rca.topology import Topology

__all__ = ["ServiceReport", "DetectionService", "detect_fleet"]

ConfigLike = Union[
    DBCatcherConfig,
    Dict[str, DBCatcherConfig],
    Callable[[str, int], DBCatcherConfig],
]


@dataclass
class ServiceReport:
    """What one service run did, in numbers and verdicts.

    ``results`` is only populated when the run collected them (the
    default); a true fire-and-forget deployment can disable collection
    and rely on sinks alone.  ``fused_verdicts`` mirrors ``results``
    round for round when the run fused the log channel
    (``ServiceConfig.log_ensemble``); otherwise it stays empty.
    """

    results: Dict[str, List[UnitDetectionResult]] = field(default_factory=dict)
    fused_verdicts: Dict[str, List["FusedVerdict"]] = field(default_factory=dict)
    alerts: List[Alert] = field(default_factory=list)
    ticks_ingested: int = 0
    ticks_dropped: int = 0
    ticks_lost: int = 0
    ticks_stale: int = 0
    rounds_completed: int = 0
    alerts_emitted: int = 0
    worker_restarts: int = 0
    kill_drills: int = 0
    recovered_rounds: int = 0
    snapshots_written: int = 0
    retrains: List[RetrainEvent] = field(default_factory=list)
    threshold_swaps: int = 0
    incidents: List["Incident"] = field(default_factory=list)
    sequence_gaps: Dict[str, int] = field(default_factory=dict)
    stale_ticks: Dict[str, int] = field(default_factory=dict)
    component_seconds: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    metrics: Dict[str, object] = field(default_factory=dict)

    def records_for(self, unit: str) -> List[JudgementRecord]:
        """Judgement records of one unit, in the detector's history order.

        Matches :attr:`DBCatcher.history` — rounds in completion order,
        databases sorted within a round — so the evaluation helpers that
        score histories work unchanged on fleet output.
        """
        records: List[JudgementRecord] = []
        for result in self.results.get(unit, []):
            records.extend(result.records[db] for db in sorted(result.records))
        return records

    @property
    def total_rounds(self) -> int:
        return sum(len(rounds) for rounds in self.results.values())


class _PersistenceDriver:
    """Scheduler-side durability: WAL appends per dispatch, periodic snapshots.

    Completed rounds hit the WAL *before* they reach the alert pipeline,
    so any verdict an operator saw is durable.  Every ``snapshot_every``
    rounds per unit, the unit's detector state is pulled from the pool
    (re-anchored to absolute ticks for process workers), snapshotted
    atomically, and the unit's WAL rotates + compacts.
    """

    def __init__(
        self,
        store: FleetStateStore,
        pool,
        units: Sequence[str],
        coordinator: Optional[TuningCoordinator],
    ):
        self._store = store
        self._pool = pool
        self._coordinator = coordinator
        self._since: Dict[str, int] = {name: 0 for name in units}
        self.snapshots_written = 0

    def record(self, results: Dict[str, List[UnitDetectionResult]]) -> None:
        with obs.histogram("persist.write_seconds").time():
            due: List[str] = []
            for unit, unit_results in results.items():
                if not unit_results:
                    continue
                self._store.unit_store(unit).append_rounds(unit_results)
                self._since[unit] += len(unit_results)
                if self._since[unit] >= self._store.snapshot_every:
                    due.append(unit)
            if due:
                self.snapshot(due)

    def snapshot(self, units: Sequence[str]) -> None:
        states = self._pool.export_persist_states(units)
        for unit in units:
            state = states.get(unit)
            if state is None:
                # The owning worker died mid-export; the unit stays on its
                # last snapshot + WAL and gets snapshotted a round later.
                continue
            self._store.unit_store(unit).write_snapshot(state)
            self._since[unit] = 0
            self.snapshots_written += 1
        if states and self._coordinator is not None:
            self._store.save_coordinator(self._coordinator.to_state())

    def finalize(self) -> None:
        """Final snapshot of every unit at end of stream."""
        with obs.histogram("persist.write_seconds").time():
            self.snapshot(sorted(self._since))


class DetectionService:
    """Online fleet detection: one DBCatcher per unit behind one front door.

    Parameters
    ----------
    config:
        Detector configuration — one shared
        :class:`~repro.core.config.DBCatcherConfig`, a dict keyed by unit
        name, or a callable ``(unit_name, n_databases) -> config``.
    service_config:
        Operational knobs (:class:`~repro.service.config.ServiceConfig`);
        defaults to the serial in-process profile.
    sinks:
        Alert sink specs (see :func:`~repro.service.alerts.build_sink`).
    metrics:
        Shared registry.  When omitted, the ambient observability registry
        is used if one is enabled (``repro.obs.runtime.enable()``), so a
        ``repro obs`` / ``serve --obs-port`` run folds service counters and
        detector spans into one exposition; otherwise a private registry
        is created.
    coordinator:
        Optional :class:`~repro.service.tuning.TuningCoordinator`.  When
        present, the scheduler feeds it every dispatched batch and every
        completed round, polls it before each pool round-trip (so tuned
        thresholds are hot-swapped *between* rounds, never inside one),
        and folds its retrain events into the report.
    rca:
        ``True`` builds a :class:`~repro.rca.analyzer.RootCauseAnalyzer`
        over the resolved per-unit configs when the run starts — alerts
        gain attributions and incident ids, incident lifecycle events fan
        out through the sinks, and the report collects the incidents.
    topology:
        Shared-infrastructure groups for incident correlation; one
        all-units group when omitted.  The scheduler always overlays
        ``shard:<worker>`` groups matching the worker-pool assignment
        when the run is parallel, so units co-located on a worker
        correlate.
    result_listener:
        Optional ``(unit, result)`` callback invoked for every completed
        round — including rounds re-published during crash recovery — in
        publication order.  The ingestion API's query view hangs off this
        to serve verdict histories without holding the whole report.
    """

    def __init__(
        self,
        config: ConfigLike,
        service_config: Optional[ServiceConfig] = None,
        sinks: Sequence[Union[str, AlertSink, Callable[[Alert], None]]] = ("stdout",),
        metrics: Optional[MetricsRegistry] = None,
        coordinator: Optional[TuningCoordinator] = None,
        rca: bool = False,
        topology: Optional["Topology"] = None,
        result_listener: Optional[
            Callable[[str, UnitDetectionResult], None]
        ] = None,
    ):
        self._config = config
        self.coordinator = coordinator
        self.rca = bool(rca)
        self.topology = topology
        self.result_listener = result_listener
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        if metrics is not None:
            self.metrics = metrics
        elif obs.is_enabled():
            self.metrics = obs.get_registry()
        else:
            self.metrics = MetricsRegistry()
        self._sinks = tuple(sinks)

    def _config_for(self, unit: str, n_databases: int) -> DBCatcherConfig:
        if isinstance(self._config, DBCatcherConfig):
            return self._config
        if isinstance(self._config, dict):
            return self._config[unit]
        return self._config(unit, n_databases)

    def run(
        self,
        source: "TickSource",
        max_ticks: Optional[int] = None,
        collect_results: bool = True,
    ) -> ServiceReport:
        """Consume a tick source to exhaustion and return the report.

        Parameters
        ----------
        source:
            Any :class:`~repro.service.protocols.TickSource` — ``units``
            (name -> database count), ``kpi_names``, ``interval_seconds``
            and iteration yielding
            :class:`~repro.service.sources.TickEvent`.
        max_ticks:
            Optional cap on ticks consumed *per unit*.
        collect_results:
            Keep every completed round in the report (the offline /
            parity mode).  ``False`` drops them after alerting, bounding
            service memory for indefinite runs.
        """
        cfg = self.service_config
        units: Dict[str, int] = dict(source.units)
        if not units:
            raise ValueError("the source exposes no units")
        specs = [
            UnitSpec(name, n_databases, self._config_for(name, n_databases))
            for name, n_databases in units.items()
        ]
        interval = float(getattr(source, "interval_seconds", 5.0))
        store: Optional[FleetStateStore] = None
        states: Dict[str, Dict[str, Any]] = {}
        recovered: Dict[str, List[UnitDetectionResult]] = {}
        resume_tick: Dict[str, int] = {}
        pool_specs = specs
        if cfg.state_dir is not None:
            store = FleetStateStore(
                cfg.state_dir,
                snapshot_every=cfg.snapshot_every,
                wal_sync=cfg.wal_sync,
            )
            recovery_started = time.perf_counter()
            states, recovered, resume_tick = self._recover(store, specs)
            if states:
                obs.histogram("persist.recovery_seconds").observe(
                    time.perf_counter() - recovery_started
                )
                # A recovered unit's persisted config wins over the
                # construction-time one: it carries any thresholds tuned
                # before the crash, and crash-restarted workers must
                # rebuild from it, not from stale construction state.
                pool_specs = [
                    replace(spec, config=decode_config(states[spec.name]["config"]))
                    if spec.name in states
                    else spec
                    for spec in specs
                ]
        pool = make_pool(pool_specs, cfg, states=states or None)
        bridge = IngestionBridge(
            list(units),
            capacity=cfg.queue_capacity,
            policy=cfg.backpressure,
            metrics=self.metrics,
        )
        analyzer = self._build_analyzer(specs, pool) if self.rca else None
        pipeline = AlertPipeline(
            self._sinks,
            metrics=self.metrics,
            interval_seconds=interval,
            min_databases=cfg.alert_min_databases,
            rca=analyzer,
        )
        channel: Optional["LogChannel"] = None
        if cfg.log_ensemble:
            from repro.logs.channel import LogChannel

            # Judged rates normalize to each unit's initial window, so a
            # flexible-window expansion judges the same per-tick rates a
            # plain round does.
            channel = LogChannel(
                units,
                reference_windows={
                    spec.name: spec.config.initial_window for spec in specs
                },
            )
        report = ServiceReport(
            results={name: [] for name in units} if collect_results else {}
        )
        if self.coordinator is not None:
            self.coordinator.bind(
                pool, {spec.name: spec.config for spec in pool_specs}
            )
            if store is not None:
                coordinator_state = store.load_coordinator()
                if coordinator_state is not None:
                    self.coordinator.load_state(coordinator_state)
        if recovered:
            self._replay_history(
                recovered, list(units), cfg.batch_ticks, pipeline, report,
                collect_results,
            )
        persist = (
            _PersistenceDriver(store, pool, list(units), self.coordinator)
            if store is not None
            else None
        )
        ingest_latency = self.metrics.histogram("ingest_latency_seconds")
        dispatch_latency = self.metrics.histogram("dispatch_latency_seconds")
        started = time.perf_counter()
        take_actions = getattr(source, "take_actions", None)
        try:
            consumed: Dict[str, int] = {name: 0 for name in units}
            # Ticks skipped during WAL replay still advance the dispatch
            # cadence: batches must stay aligned to the absolute tick grid
            # or a resumed run would batch (and therefore interleave alerts
            # and feed tuning windows) differently from the uninterrupted
            # run it continues.
            phantom: Dict[str, int] = {name: 0 for name in units}
            for event in source:
                replayed = (
                    bool(resume_tick)
                    and event.seq < resume_tick.get(event.unit, 0)
                )
                if take_actions is not None:
                    for action in take_actions():
                        if replayed:
                            # Control-plane actions raised while re-reading
                            # already-persisted ticks fired before the
                            # crash; applying them again would disturb the
                            # recovered state.
                            continue
                        self._apply_action(pool, action, report)
                if max_ticks is not None and consumed[event.unit] >= max_ticks:
                    continue
                consumed[event.unit] += 1
                if channel is not None:
                    # Replayed ticks feed the channel too: its counters
                    # and baselines are in-memory only, so a warm restart
                    # rebuilds them by re-reading the stream from tick 0.
                    channel.ingest(event.unit, event.seq, event.logs)
                if replayed:
                    phantom[event.unit] += 1
                else:
                    with ingest_latency.time():
                        bridge.offer(event, timeout=cfg.put_timeout_seconds)
                pending = bridge.pending(event.unit) + phantom[event.unit]
                if pending >= cfg.batch_ticks:
                    self._dispatch_round(
                        bridge, pool, pipeline, report, dispatch_latency,
                        collect_results, persist, channel,
                    )
                    for name in phantom:
                        phantom[name] = 0
            # Source exhausted: flush whatever is still queued.
            self._dispatch_round(
                bridge, pool, pipeline, report, dispatch_latency,
                collect_results, persist, channel,
            )
            if self.coordinator is not None:
                self.coordinator.drain()
            if persist is not None:
                persist.finalize()
            pipeline.finish()
        finally:
            bridge.close()
            pool.stop()
            pipeline.close()
            if store is not None:
                store.close()
        report.elapsed_seconds = time.perf_counter() - started
        report.ticks_ingested = self.metrics.counter("ticks_ingested").value
        report.ticks_dropped = bridge.total_dropped()
        report.ticks_lost = pool.ticks_lost
        report.rounds_completed = self.metrics.counter("rounds_completed").value
        report.alerts_emitted = self.metrics.counter("alerts_emitted").value
        report.worker_restarts = pool.restarts
        if persist is not None:
            report.snapshots_written = persist.snapshots_written
        self.metrics.counter("worker_restarts").increment(pool.restarts)
        self.metrics.counter("ticks_lost").increment(pool.ticks_lost)
        if self.coordinator is not None:
            report.retrains = list(self.coordinator.events)
            report.threshold_swaps = len(report.retrains)
        if analyzer is not None:
            report.incidents = list(analyzer.incidents)
        report.sequence_gaps = dict(bridge.sequence_gaps)
        report.stale_ticks = dict(bridge.stale_rejected)
        report.ticks_stale = sum(bridge.stale_rejected.values())
        report.component_seconds = pool.component_seconds()
        report.metrics = self.metrics.snapshot()
        return report

    def _recover(
        self, store: FleetStateStore, specs: List[UnitSpec]
    ) -> Tuple[
        Dict[str, Dict[str, Any]],
        Dict[str, List[UnitDetectionResult]],
        Dict[str, int],
    ]:
        """Rebuild per-unit state from snapshot + WAL (crash-warm restart).

        For each unit with durable state: restore the latest snapshot
        (or start cold on a pure-WAL directory), replay the recorded
        rounds newer than the snapshot cursor through
        :meth:`DBCatcher.apply_result` — no recomputation — and note the
        tick ingestion must resume from.  The full recorded history comes
        back separately so the alert/incident pipeline can be replayed.
        """
        states: Dict[str, Dict[str, Any]] = {}
        recovered: Dict[str, List[UnitDetectionResult]] = {}
        resume: Dict[str, int] = {}
        total = 0
        for spec in specs:
            unit_store = store.unit_store(spec.name)
            snapshot = unit_store.load_snapshot()
            tail = unit_store.load_tail()
            if snapshot is None and not tail:
                continue
            if snapshot is not None:
                detector = DBCatcher.from_state(snapshot)
            else:
                detector = DBCatcher(spec.config, n_databases=spec.n_databases)
            for result in tail:
                if result.end <= detector.cursor:
                    continue
                if result.start != detector.cursor:
                    break  # gap in the log: re-derive the rest live
                detector.apply_result(result)
            states[spec.name] = detector.to_state()
            resume[spec.name] = detector.next_tick
            recovered[spec.name] = [
                result
                for result in unit_store.load_history()
                if result.end <= detector.cursor
            ]
            total += len(recovered[spec.name])
        if total:
            obs.counter("persist.recovered_rounds").increment(total)
        return states, recovered, resume

    def _replay_history(
        self,
        recovered: Dict[str, List[UnitDetectionResult]],
        unit_order: List[str],
        batch_ticks: int,
        pipeline: AlertPipeline,
        report: ServiceReport,
        collect_results: bool,
    ) -> None:
        """Re-publish recovered rounds through the pipeline (sinks muted).

        Rounds are interleaved exactly as the original run published
        them: grouped by the dispatch that completed them (a round ends
        at tick ``e``, so it completed on dispatch ``ceil(e /
        batch_ticks)``), units in ingestion order within a dispatch.
        Incident ids, rate-limiter decisions and counters therefore land
        identically to the uninterrupted run.
        """
        order = {name: index for index, name in enumerate(unit_order)}
        merged: List[Tuple[int, int, int, str, UnitDetectionResult]] = []
        for name, results in recovered.items():
            for result in results:
                dispatch = -(-result.end // batch_ticks)
                merged.append((dispatch, order[name], result.end, name, result))
        merged.sort(key=lambda item: item[:3])
        for _, _, _, name, result in merged:
            alert = pipeline.publish(name, result, replay=True)
            if alert is not None:
                report.alerts.append(alert)
            if collect_results:
                report.results[name].append(result)
            if self.result_listener is not None:
                self.result_listener(name, result)
            report.recovered_rounds += 1

    def _build_analyzer(self, specs: List[UnitSpec], pool):
        """Construct the run's RootCauseAnalyzer over the resolved configs.

        Imported lazily: :mod:`repro.rca` depends on the service sources,
        so a module-level import here would be circular.
        """
        from repro.rca.analyzer import RootCauseAnalyzer
        from repro.rca.topology import Topology

        unit_names = [spec.name for spec in specs]
        topology = (
            self.topology
            if self.topology is not None
            else Topology.single_group(unit_names)
        )
        shard_map = pool.shard_map()
        if len(shard_map) > 1:
            topology = topology.merged(
                {
                    f"shard:{worker_id}": shard
                    for worker_id, shard in shard_map.items()
                }
            )
        return RootCauseAnalyzer(
            configs={spec.name: spec.config for spec in specs},
            topology=topology,
        )

    def _apply_action(self, pool, action: tuple, report: ServiceReport) -> None:
        """Apply one control-plane action from a chaos-wrapped source.

        Only ``("kill_worker", unit)`` is understood today: the §IV-D4
        kill drill, which fells the worker process owning ``unit`` exactly
        as a segfault would.  The serial pool has no processes to kill, so
        there the drill degenerates to a no-op (still counted, so a
        scenario's drill schedule remains visible in the report).
        """
        kind = action[0]
        if kind == "kill_worker":
            report.kill_drills += 1
            self.metrics.counter("kill_drills").increment()
            if getattr(pool, "n_workers", 0):
                pool.crash_worker(action[1])
        else:
            raise ValueError(f"unknown chaos action {kind!r}")

    def _dispatch_round(
        self,
        bridge: IngestionBridge,
        pool,
        pipeline: AlertPipeline,
        report: ServiceReport,
        dispatch_latency,
        collect_results: bool,
        persist: Optional[_PersistenceDriver] = None,
        channel: Optional["LogChannel"] = None,
    ) -> None:
        """Drain every unit's backlog and run one pool round-trip."""
        batches: Dict[str, np.ndarray] = {}
        for unit in bridge.unit_names:
            events: List[TickEvent] = bridge.drain(unit)
            if events:
                batches[unit] = np.stack([event.sample for event in events])
        self.metrics.gauge("queue_backlog_total").set(bridge.total_pending())
        if not batches:
            return
        if self.coordinator is not None:
            # Install any finished background retrains now, before the
            # round-trip: swaps land between rounds by construction.
            self.coordinator.poll()
            for unit, block in batches.items():
                self.coordinator.observe_batch(unit, block)
        with dispatch_latency.time(), obs.span("service.dispatch_round"):
            results = pool.dispatch(batches)
        if persist is not None:
            # Verdicts become durable before they become notifications.
            persist.record(results)
        for unit, unit_results in results.items():
            for result in unit_results:
                fused = log_attribution = None
                if channel is not None:
                    fused, log_attribution = channel.fuse(unit, result)
                alert = pipeline.publish(
                    unit, result, fused=fused,
                    log_attribution=log_attribution,
                )
                if alert is not None:
                    report.alerts.append(alert)
                if collect_results:
                    report.results[unit].append(result)
                    if fused is not None:
                        report.fused_verdicts.setdefault(unit, []).append(
                            fused
                        )
                if self.result_listener is not None:
                    self.result_listener(unit, result)
            if self.coordinator is not None:
                self.coordinator.observe_results(unit, unit_results)


def detect_fleet(
    dataset,
    config: Optional[ConfigLike] = None,
    jobs: int = 0,
    service_config: Optional[ServiceConfig] = None,
    sinks: Sequence[Union[str, AlertSink, Callable[[Alert], None]]] = ("null",),
    metrics: Optional[MetricsRegistry] = None,
    max_ticks: Optional[int] = None,
    rca: bool = False,
    topology: Optional["Topology"] = None,
    state_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    logbook: Optional[Dict[str, "LogBook"]] = None,
    log_ensemble: bool = False,
) -> ServiceReport:
    """Run the fleet scheduler over a saved dataset.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.containers.Dataset` or ``.npz`` path.
    config:
        Detector configuration; the cluster preset when omitted.
    jobs:
        Worker processes; ``0`` or ``1`` selects the serial in-process
        path.  Results are identical either way — parallelism is purely a
        throughput lever.
    rca:
        Enable attribution + incident correlation; the topology defaults
        to the dataset's workload-metadata groups when available.
    state_dir:
        Durable-state directory (snapshots + WAL); an interrupted run
        restarted with the same directory resumes warm mid-stream.
    snapshot_every:
        Rounds per unit between snapshots; the config default when
        omitted.
    logbook:
        Per-unit logbooks to replay alongside the KPI stream (implies
        ``log_ensemble``); see
        :func:`repro.logs.emitter.dataset_logbook`.
    log_ensemble:
        Fuse the log channel's verdicts with the correlation rounds
        even without a logbook (the channel then sees a silent stream
        and the run stays bit-identical to a plain one).
    """
    if config is None:
        from repro.presets import default_config

        config = default_config()
    base = service_config if service_config is not None else ServiceConfig()
    n_workers = 0 if jobs <= 1 else jobs
    overrides: Dict[str, Any] = {}
    if base.n_workers != n_workers:
        overrides["n_workers"] = n_workers
    if state_dir is not None:
        overrides["state_dir"] = str(state_dir)
    if snapshot_every is not None:
        overrides["snapshot_every"] = int(snapshot_every)
    if (log_ensemble or logbook is not None) and not base.log_ensemble:
        overrides["log_ensemble"] = True
    if overrides:
        base = replace(base, **overrides)
    if rca and topology is None and hasattr(dataset, "units"):
        from repro.rca.topology import Topology

        topology = Topology.from_dataset(dataset)
    service = DetectionService(
        config,
        service_config=base,
        sinks=sinks,
        metrics=metrics,
        rca=rca,
        topology=topology,
    )
    return service.run(
        ReplaySource(dataset, max_ticks=max_ticks, logbook=logbook)
    )
