"""Sharded detection worker pool.

One :class:`~repro.core.detector.DBCatcher` per unit, sharded onto worker
processes by the consistent-hash ring of :mod:`repro.service.sharding`.
The scheduler dispatches *batches* of ticks per unit; each dispatch fans
the batches out to every worker owning part of them and multiplexes the
round-trips, so shards compute concurrently instead of taking turns on
the parent's pipe.

How the blocks travel is the :class:`~repro.service.protocols.TickTransport`
protocol's business (:mod:`repro.service.transport`): the legacy
``pickle`` path rides them inside the pipe messages, the ``shm`` path
stages them in per-worker shared-memory rings and ships only slot
descriptors.  The pool speaks the protocol, never a concrete transport.

Two pool flavours share one API:

* :class:`SerialWorkerPool` — every detector lives in-process.  No
  pickling, no IPC; the reference implementation the parallel pool must
  match verdict-for-verdict.
* :class:`ProcessWorkerPool` — ``multiprocessing`` processes connected by
  pipes.  A worker that dies (OOM kill, segfaulting native code, the test
  suite's deliberate crash hook) is respawned with fresh detectors for
  its shard, up to a restart budget; ticks in flight during the crash are
  counted as lost, never silently replayed.  Workers can also *join*
  (:meth:`~ProcessWorkerPool.add_worker`) or *retire*
  (:meth:`~ProcessWorkerPool.retire_worker`): the hash ring decides which
  units move, and the moving units carry their detector state with them
  so verdict history survives the migration.

Detection is deterministic — same ticks in, same verdicts out — so batch
boundaries, transport choice and process placement cannot change results;
the parity tests pin this down.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher, UnitDetectionResult
from repro.persist.codec import shift_state, state_next_tick
from repro.service.config import ServiceConfig
from repro.service.sharding import HashRing
from repro.service.transport import WorkerRingReader, make_transport

__all__ = [
    "UnitSpec",
    "WorkerDied",
    "SerialWorkerPool",
    "ProcessWorkerPool",
    "make_pool",
]

#: How long one dispatch waits on an unresponsive worker before the
#: crash-restart machinery takes over.
_DISPATCH_TIMEOUT_SECONDS = 300.0

#: Parent-side sleep when every in-flight worker is stalled (ring full or
#: reply pending); keeps the multiplexing loop from busy-spinning.
_IDLE_SLEEP_SECONDS = 0.0005

#: Pipe failures that mean "the worker process is gone", as opposed to a
#: protocol error in live code.
_WORKER_FAILURES = (EOFError, OSError, BrokenPipeError)


@dataclass(frozen=True)
class UnitSpec:
    """Everything a worker needs to build one unit's detector.

    The spec crosses the process boundary, so it must stay picklable:
    plain config + database count, no live objects.
    """

    name: str
    n_databases: int
    config: DBCatcherConfig


class WorkerDied(RuntimeError):
    """A worker process exceeded its crash-restart budget."""


def _build_detectors(
    specs: Sequence[UnitSpec],
    history_limit: Optional[int],
    states: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, DBCatcher]:
    # The pool's retention policy wins over whatever the spec's config
    # carries (including None): the parent collects results on every
    # dispatch, so worker-side detectors never need deep history.  A unit
    # with recovered durable state resumes warm from it — this is also
    # what lets shards migrate between workers with their state attached.
    detectors: Dict[str, DBCatcher] = {}
    for spec in specs:
        state = states.get(spec.name) if states else None
        if state is not None:
            detectors[spec.name] = DBCatcher.from_state(
                state, history_limit=history_limit
            )
        else:
            detectors[spec.name] = DBCatcher(
                dataclasses.replace(spec.config, history_limit=history_limit),
                n_databases=spec.n_databases,
            )
    return detectors


def _shift_result(result: UnitDetectionResult, offset: int) -> UnitDetectionResult:
    """Re-anchor a result from a restarted detector's local tick 0.

    After a crash-restart the replacement detector counts ticks from
    zero; ``offset`` is the absolute sequence number its first tick had,
    so alerts keep pointing at the right spot in the source stream.
    """
    if offset == 0:
        return result
    return dataclasses.replace(
        result,
        start=result.start + offset,
        end=result.end + offset,
        records={
            db: dataclasses.replace(
                record,
                window_start=record.window_start + offset,
                window_end=record.window_end + offset,
            )
            for db, record in result.records.items()
        },
    )


class SerialWorkerPool:
    """In-process reference pool: one detector per unit, no concurrency."""

    def __init__(
        self,
        specs: Sequence[UnitSpec],
        history_limit: Optional[int] = None,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.detectors = _build_detectors(specs, history_limit, states)
        self.history_limit = history_limit
        self.restarts = 0
        self.ticks_lost = 0

    def shard_map(self) -> Dict[str, List[str]]:
        """No workers, no shards — the serial pool is one address space."""
        return {}

    def install_config(self, unit: str, config: DBCatcherConfig) -> None:
        """Hot-swap one unit's thresholds between rounds.

        The pool's retention policy still wins over the incoming config's,
        exactly as at construction time.
        """
        self.detectors[unit].install_config(
            dataclasses.replace(config, history_limit=self.history_limit)
        )

    def dispatch(
        self, batches: Dict[str, np.ndarray]
    ) -> Dict[str, List[UnitDetectionResult]]:
        """Feed each unit its batch; return completed rounds per unit."""
        results: Dict[str, List[UnitDetectionResult]] = {}
        for unit, block in batches.items():
            results[unit] = self.detectors[unit].process(block)
        return results

    def component_seconds(self) -> Dict[str, float]:
        totals = {"correlation": 0.0, "observation": 0.0}
        for detector in self.detectors.values():
            for key, value in detector.component_seconds.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def export_states(self) -> Dict[str, Dict[str, object]]:
        return {name: d.export_state() for name, d in self.detectors.items()}

    def export_persist_states(
        self, units: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Durable :meth:`DBCatcher.to_state` payloads for snapshotting."""
        names = list(self.detectors) if units is None else list(units)
        return {
            name: self.detectors[name].to_state(healthy_matrices=False)
            for name in names
        }

    def crash_worker(self, unit: str) -> None:  # pragma: no cover - API parity
        raise NotImplementedError("the serial pool has no processes to crash")

    def stop(self) -> None:
        pass


def _worker_main(
    conn,
    specs: List[UnitSpec],
    history_limit: Optional[int],
    states: Optional[Dict[str, Dict[str, Any]]] = None,
    transport_init: Optional[Any] = None,
) -> None:
    """Worker process loop: build the shard's detectors, serve commands."""
    detectors = _build_detectors(specs, history_limit, states)
    reader = (
        WorkerRingReader(transport_init) if transport_init is not None else None
    )
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "batch":
            replies = []
            for unit, block in message[1]:
                replies.append((unit, detectors[unit].process(block)))
            conn.send(("results", replies))
        elif kind == "batch_shm":
            replies = []
            for unit, view, release in reader.blocks(message[1]):
                # The view's slots recycle at release, so the detector
                # must finish with the data (it copies into its stream
                # buffers) before the cursor moves.
                replies.append((unit, detectors[unit].process(view)))
                reader.release(release)
            conn.send(("results", replies))
        elif kind == "config":
            unit, config = message[1]
            detectors[unit].install_config(
                dataclasses.replace(config, history_limit=history_limit)
            )
            conn.send(("config_installed", unit))
        elif kind == "adopt":
            spec, state = message[1]
            detectors.update(
                _build_detectors(
                    [spec],
                    history_limit,
                    {spec.name: state} if state is not None else None,
                )
            )
            conn.send(("adopted", spec.name))
        elif kind == "forget":
            detectors.pop(message[1], None)
            conn.send(("forgotten", message[1]))
        elif kind == "snapshot":
            conn.send(
                ("states", {name: d.export_state() for name, d in detectors.items()})
            )
        elif kind == "persist":
            conn.send(
                (
                    "persist_states",
                    {
                        name: detectors[name].to_state(healthy_matrices=False)
                        for name in message[1]
                    },
                )
            )
        elif kind == "crash":
            # Test hook: die the way a segfault would — no cleanup, no reply.
            os._exit(13)
        elif kind == "stop":
            totals = {"correlation": 0.0, "observation": 0.0}
            for detector in detectors.values():
                for key, value in detector.component_seconds.items():
                    totals[key] = totals.get(key, 0.0) + value
            conn.send(("stopped", totals))
            conn.close()
            if reader is not None:
                reader.close()
            return
        else:  # pragma: no cover - protocol guard
            conn.send(("error", f"unknown command {kind!r}"))


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(
        self,
        worker_id: str,
        specs: List[UnitSpec],
        history_limit: Optional[int],
        ctx,
        transport_factory: Callable[[], Any],
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.worker_id = worker_id
        self.specs = specs
        self.history_limit = history_limit
        self._ctx = ctx
        self._transport_factory = transport_factory
        self.restarts = 0
        self._states = states
        #: Absolute sequence number of the next tick each unit's *current*
        #: detector incarnation maps to its local tick 0.  A detector
        #: restored from durable state already lives on the absolute axis,
        #: so its offset stays 0 while that incarnation lives.
        self.offsets: Dict[str, int] = {spec.name: 0 for spec in specs}
        #: Absolute ticks dispatched per unit, across incarnations.  Units
        #: resuming from durable state start at the state's next tick so a
        #: later crash re-anchors its fresh detector at the right spot.
        self.ticks_sent: Dict[str, int] = {
            spec.name: (
                state_next_tick(states[spec.name])
                if states and spec.name in states
                else 0
            )
            for spec in specs
        }
        self.process = None
        self.conn = None
        self.transport = transport_factory()
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.specs,
                self.history_limit,
                self._states,
                self.transport.worker_init(),
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def restart(self) -> None:
        """Respawn after a crash; detectors restart fresh from the next tick."""
        if self.conn is not None:
            self.conn.close()
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.restarts += 1
        # Recovered states belonged to the dead incarnation's startup; the
        # replacement builds fresh detectors that count from local zero.
        # The transport's buffers died with their consumer too: cursors in
        # a shared ring are owned by one incarnation, so the replacement
        # gets a fresh ring rather than inheriting half-consumed slots.
        self._states = None
        for unit in self.offsets:
            self.offsets[unit] = self.ticks_sent[unit]
        self.transport.dispose()
        self.transport = self._transport_factory()
        self._spawn()

    def request(self, message: tuple, timeout: float = 300.0):
        """Send one command and wait for its reply, detecting death."""
        self.conn.send(message)
        deadline = timeout
        while not self.conn.poll(0.05):
            deadline -= 0.05
            if deadline <= 0:
                raise WorkerDied("worker stopped responding")
            if not self.process.is_alive() and not self.conn.poll(0.0):
                raise EOFError("worker process died")
        return self.conn.recv()

    def dispose(self) -> None:
        self.transport.dispose()


class _DispatchSession:
    """One worker's in-flight share of a dispatch round.

    Wraps the transport's ``encode`` generator so the pool can multiplex
    many workers: :meth:`step` makes at most one unit of progress (send a
    message, bank a reply, or report a stall) and never blocks, which is
    what lets every shard compute concurrently while the parent
    round-robins the sessions.
    """

    def __init__(self, handle: _WorkerHandle, payload):
        self.handle = handle
        self.payload = payload
        self.replies: List[Tuple[str, List[Tuple[str, list]]]] = []
        self.sent = 0
        self._gen = handle.transport.encode(
            payload, _DISPATCH_TIMEOUT_SECONDS, self._drain
        )
        self._exhausted = False
        self._deadline = time.monotonic() + _DISPATCH_TIMEOUT_SECONDS

    def _drain(self) -> bool:
        """Bank one ready reply; tell the transport whether we got one."""
        if self.handle.conn.poll(0.0):
            self._take_reply()
            return True
        if not self.handle.process.is_alive() and not self.handle.conn.poll(0.0):
            raise EOFError("worker process died")
        return False

    def _take_reply(self) -> None:
        reply = self.handle.conn.recv()
        if reply[0] != "results":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
        self.replies.append(reply)

    def step(self) -> str:
        """Advance a little: returns ``"sent"``, ``"wait"`` or ``"done"``."""
        progressed = False
        while self.handle.conn.poll(0.0):
            self._take_reply()
            progressed = True
        if not self._exhausted:
            try:
                message = next(self._gen)
            except StopIteration:
                self._exhausted = True
            else:
                if message is not None:
                    self.handle.conn.send(message)
                    self.sent += 1
                    self._deadline = time.monotonic() + _DISPATCH_TIMEOUT_SECONDS
                    return "sent"
        if self._exhausted and len(self.replies) >= self.sent:
            return "done"
        if progressed:
            self._deadline = time.monotonic() + _DISPATCH_TIMEOUT_SECONDS
            return "sent"
        if not self.handle.process.is_alive() and not self.handle.conn.poll(0.0):
            raise EOFError("worker process died")
        if time.monotonic() > self._deadline:
            raise WorkerDied("worker stopped responding")
        return "wait"

    def unit_results(self):
        """Per-unit results in arrival order (chunks already ordered)."""
        for _, entries in self.replies:
            for unit, results in entries:
                yield unit, results


class ProcessWorkerPool:
    """Consistent-hash sharded ``multiprocessing`` pool with crash-restart.

    Parameters
    ----------
    specs:
        One :class:`UnitSpec` per unit, in fleet order.
    n_workers:
        Worker processes; capped at the unit count.
    history_limit:
        Forwarded to every worker-side detector (small by default via
        :class:`~repro.service.config.ServiceConfig` — the parent collects
        results each dispatch, workers don't need to hoard them).
    max_restarts:
        Per-worker crash budget before :class:`WorkerDied` is raised.
    transport:
        ``"pickle"`` (default) or ``"shm"`` — how dispatched tick blocks
        reach the workers (see :mod:`repro.service.transport`).
    ring_ticks:
        Shared-memory ring capacity per worker, in tick slots (``shm``
        only).

    Notes
    -----
    Worker identifiers (``w0``, ``w1``, …) are allocated monotonically and
    never reused: a crash-restarted process keeps its identity (same
    shard, re-anchored detectors), while :meth:`add_worker` mints a new
    identity whose ring arcs pull an expected ``units/n`` of the fleet.
    """

    def __init__(
        self,
        specs: Sequence[UnitSpec],
        n_workers: int,
        history_limit: Optional[int] = 8,
        max_restarts: int = 2,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
        transport: str = "pickle",
        ring_ticks: int = 1024,
    ):
        if not specs:
            raise ValueError("the pool needs at least one unit")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self._ctx = ctx
        self.max_restarts = max_restarts
        self.ticks_lost = 0
        self.transport_name = transport
        self._history_limit = history_limit
        self._unit_order = [spec.name for spec in specs]
        stride = max(
            spec.n_databases * spec.config.n_kpis for spec in specs
        )
        self._transport_factory = lambda: make_transport(
            transport, ring_ticks=ring_ticks, stride=stride
        )
        self._worker_seq = min(n_workers, len(specs))
        self._ring = HashRing([f"w{k}" for k in range(self._worker_seq)])
        self._owner: Dict[str, str] = self._ring.assign_many(self._unit_order)
        self._retired_restarts = 0
        self._component_seconds = {"correlation": 0.0, "observation": 0.0}
        by_name = {spec.name: spec for spec in specs}
        self._handles: Dict[str, _WorkerHandle] = {}
        for worker_id, shard in self._ring.shards(self._unit_order).items():
            shard_states = (
                {name: states[name] for name in shard if name in states}
                if states
                else None
            )
            self._handles[worker_id] = _WorkerHandle(
                worker_id,
                [by_name[name] for name in shard],
                history_limit,
                ctx,
                transport_factory=self._transport_factory,
                states=shard_states or None,
            )

    @property
    def n_workers(self) -> int:
        return len(self._handles)

    @property
    def restarts(self) -> int:
        return (
            sum(handle.restarts for handle in self._handles.values())
            + self._retired_restarts
        )

    def worker_ids(self) -> Tuple[str, ...]:
        return tuple(self._handles)

    def shard_of(self, unit: str) -> str:
        return self._owner[unit]

    def shard_map(self) -> Dict[str, List[str]]:
        """Worker id -> owned units (fleet order), every worker present."""
        shards: Dict[str, List[str]] = {wid: [] for wid in self._handles}
        for unit in self._unit_order:
            shards[self._owner[unit]].append(unit)
        return shards

    def _fail_worker(self, worker_id: str, payload) -> None:
        """Crash accounting + restart (within budget) for one worker.

        The whole in-flight payload counts as lost — partially computed
        replies are discarded rather than guessed at — which matches the
        'never silently replayed' contract of the original pool.
        """
        handle = self._handles[worker_id]
        self.ticks_lost += sum(len(block) for _, block in payload)
        for unit, block in payload:
            handle.ticks_sent[unit] += len(block)
        if handle.restarts >= self.max_restarts:
            raise WorkerDied(
                f"worker {worker_id} exceeded its restart budget "
                f"({self.max_restarts})"
            )
        handle.restart()

    def dispatch(
        self, batches: Dict[str, np.ndarray]
    ) -> Dict[str, List[UnitDetectionResult]]:
        """Fan the batches out to their owners and multiplex the round-trips.

        All owning workers are kept busy concurrently: the parent
        round-robins the per-worker sessions, sending transport messages
        and banking replies as each becomes ready, sleeping only when
        every session is stalled.  A worker that dies mid-dispatch is
        restarted (within budget); its batches count as lost ticks and
        simply produce no results this round — the caller's loss
        accounting, not an exception, reports it.  A worker whose
        transport stays saturated past the dispatch timeout surfaces as
        :class:`~repro.service.queues.QueueFull` backpressure.
        """
        per_worker: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        for unit, block in batches.items():
            per_worker.setdefault(self._owner[unit], []).append((unit, block))
        results: Dict[str, List[UnitDetectionResult]] = {
            unit: [] for unit in batches
        }
        sessions = {
            worker_id: _DispatchSession(self._handles[worker_id], payload)
            for worker_id, payload in per_worker.items()
        }
        active = list(sessions)
        failed: List[str] = []
        while active:
            progressed = False
            for worker_id in list(active):
                try:
                    state = sessions[worker_id].step()
                except _WORKER_FAILURES + (WorkerDied,):
                    active.remove(worker_id)
                    failed.append(worker_id)
                    continue
                if state == "done":
                    active.remove(worker_id)
                    progressed = True
                elif state == "sent":
                    progressed = True
            if active and not progressed:
                time.sleep(_IDLE_SLEEP_SECONDS)
        for worker_id in failed:
            self._fail_worker(worker_id, sessions[worker_id].payload)
        for worker_id, session in sessions.items():
            if worker_id in failed:
                continue
            handle = self._handles[worker_id]
            for unit, block in session.payload:
                handle.ticks_sent[unit] += len(block)
            for unit, unit_results in session.unit_results():
                offset = handle.offsets[unit]
                results[unit].extend(
                    _shift_result(result, offset) for result in unit_results
                )
        return results

    def install_config(self, unit: str, config: DBCatcherConfig) -> None:
        """Hot-swap one unit's thresholds between rounds.

        The owning worker's spec is updated *before* the message goes out,
        so a crash-restart at any point rebuilds the detector with the
        tuned thresholds rather than the stale ones.  A worker that dies
        during the swap is restarted (within budget) and the fresh
        incarnation picks the new config up from the spec.
        """
        worker_id = self._owner[unit]
        handle = self._handles[worker_id]
        handle.specs = [
            dataclasses.replace(spec, config=config)
            if spec.name == unit
            else spec
            for spec in handle.specs
        ]
        try:
            reply = handle.request(("config", (unit, config)))
        except _WORKER_FAILURES + (WorkerDied,):
            if handle.restarts >= self.max_restarts:
                raise WorkerDied(
                    f"worker {worker_id} exceeded its restart budget "
                    f"({self.max_restarts})"
                )
            handle.restart()
            return
        if reply[0] != "config_installed":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")

    def export_states(self) -> Dict[str, Dict[str, object]]:
        states: Dict[str, Dict[str, object]] = {}
        for handle in self._handles.values():
            try:
                reply = handle.request(("snapshot",))
            except _WORKER_FAILURES + (WorkerDied,):
                continue
            if reply[0] == "states":
                states.update(reply[1])
        return states

    def export_persist_states(
        self, units: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Durable detector states, re-anchored to the absolute tick axis.

        A worker that died and restarted counts ticks from its restart
        point, so its exported states are shifted by the unit's known
        offset before they reach disk.  A worker that dies *during* the
        export simply contributes nothing this time; the scheduler
        snapshots it on a later round.
        """
        names = list(self._owner) if units is None else list(units)
        per_worker: Dict[str, List[str]] = {}
        for name in names:
            per_worker.setdefault(self._owner[name], []).append(name)
        states: Dict[str, Dict[str, Any]] = {}
        for worker_id, shard in per_worker.items():
            handle = self._handles[worker_id]
            try:
                reply = handle.request(("persist", shard))
            except _WORKER_FAILURES + (WorkerDied,):
                continue
            if reply[0] != "persist_states":  # pragma: no cover - guard
                raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
            for unit, state in reply[1].items():
                states[unit] = shift_state(state, handle.offsets[unit])
        return states

    def _detach(self, unit: str, notify: bool = True) -> Tuple[UnitSpec, int]:
        """Remove ``unit`` from its owner; return (live spec, ticks sent).

        The spec comes from the owner's handle so tuned thresholds
        installed since construction migrate with the unit.
        """
        handle = self._handles[self._owner[unit]]
        spec = next(s for s in handle.specs if s.name == unit)
        sent = handle.ticks_sent.pop(unit)
        handle.offsets.pop(unit)
        handle.specs = [s for s in handle.specs if s.name != unit]
        if notify:
            try:
                handle.request(("forget", unit))
            except _WORKER_FAILURES + (WorkerDied,):
                pass  # dead; the crash path rebuilds from specs anyway
        return spec, sent

    def _attach(
        self,
        worker_id: str,
        spec: UnitSpec,
        state: Optional[Dict[str, Any]],
        fallback_sent: int,
    ) -> None:
        """Hand ``unit`` to ``worker_id``, warm from ``state`` if given.

        With a migrated state the detector resumes on the absolute tick
        axis (offset 0); without one it starts cold at the stream
        position the old owner had reached, exactly like a crash-restart.
        """
        handle = self._handles[worker_id]
        handle.specs = [*handle.specs, spec]
        if state is not None:
            handle.offsets[spec.name] = 0
            handle.ticks_sent[spec.name] = state_next_tick(state)
        else:
            handle.offsets[spec.name] = fallback_sent
            handle.ticks_sent[spec.name] = fallback_sent
        try:
            reply = handle.request(("adopt", (spec, state)))
        except _WORKER_FAILURES + (WorkerDied,):
            if handle.restarts >= self.max_restarts:
                raise WorkerDied(
                    f"worker {worker_id} exceeded its restart budget "
                    f"({self.max_restarts})"
                )
            handle.restart()
            return
        if reply[0] != "adopted":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")

    def add_worker(self) -> str:
        """Scale out: join a fresh worker, migrating only the units whose
        ring arcs it takes over.

        The moving units carry their detector state (exported absolute,
        re-imported warm), so their verdict history continues exactly
        where the old owner left it.  Returns the new worker id.
        """
        worker_id = f"w{self._worker_seq}"
        self._worker_seq += 1
        ring = self._ring.with_worker(worker_id)
        new_owner = ring.assign_many(self._unit_order)
        moved = [u for u in self._unit_order if new_owner[u] != self._owner[u]]
        migrated = self.export_persist_states(moved) if moved else {}
        detached = {unit: self._detach(unit) for unit in moved}
        spawn_units = [u for u in moved if new_owner[u] == worker_id]
        spawn_states = {
            unit: migrated[unit] for unit in spawn_units if unit in migrated
        }
        handle = _WorkerHandle(
            worker_id,
            [detached[unit][0] for unit in spawn_units],
            self._history_limit,
            self._ctx,
            transport_factory=self._transport_factory,
            states=spawn_states or None,
        )
        for unit in spawn_units:
            if unit not in migrated:
                # Cold adopt (the exporter was dead): the fresh detector
                # counts from local zero at the old stream position.
                handle.offsets[unit] = detached[unit][1]
                handle.ticks_sent[unit] = detached[unit][1]
        self._handles[worker_id] = handle
        self._ring = ring
        self._owner = new_owner
        for unit in moved:
            if new_owner[unit] != worker_id:
                # Bounded-load capacity shifts can shuffle a unit between
                # surviving workers; hand it over live.
                self._attach(
                    new_owner[unit],
                    detached[unit][0],
                    migrated.get(unit),
                    detached[unit][1],
                )
        return worker_id

    def retire_worker(
        self,
        worker_id: str,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        """Scale in (or bury a dead worker): spill its units onto the ring.

        A live worker exports its units' states before leaving, so they
        resume warm elsewhere.  For a dead worker, pass ``states``
        (absolute-axis payloads, e.g. from the persistence store) to
        resume warm from the last snapshot; units with no state at all
        restart cold at their stream position, like a crash-restart.
        """
        if worker_id not in self._handles:
            raise ValueError(f"unknown worker {worker_id!r}")
        if len(self._handles) == 1:
            raise ValueError("cannot retire the last worker")
        ring = self._ring.without_worker(worker_id)
        new_owner = ring.assign_many(self._unit_order)
        moved = [u for u in self._unit_order if new_owner[u] != self._owner[u]]
        handle = self._handles[worker_id]
        migrated = self.export_persist_states(moved) if moved else {}
        if states:
            for unit in moved:
                if unit not in migrated and unit in states:
                    migrated[unit] = states[unit]
        detached = {
            unit: self._detach(unit, notify=self._owner[unit] != worker_id)
            for unit in moved
        }
        self._stop_handle(handle)
        self._retired_restarts += handle.restarts
        del self._handles[worker_id]
        self._ring = ring
        self._owner = new_owner
        for unit in moved:
            self._attach(
                new_owner[unit],
                detached[unit][0],
                migrated.get(unit),
                detached[unit][1],
            )

    def crash_worker(self, unit: str) -> None:
        """Test hook: make the worker owning ``unit`` die like a segfault."""
        handle = self._handles[self._owner[unit]]
        try:
            handle.conn.send(("crash",))
        except (OSError, BrokenPipeError):  # pragma: no cover - already dead
            pass
        handle.process.join(timeout=5.0)

    def component_seconds(self) -> Dict[str, float]:
        return dict(self._component_seconds)

    def _stop_handle(self, handle: _WorkerHandle) -> None:
        """Gracefully stop one worker: collect timings, join, dispose."""
        try:
            reply = handle.request(("stop",), timeout=30.0)
            if reply[0] == "stopped":
                for key, value in reply[1].items():
                    self._component_seconds[key] = (
                        self._component_seconds.get(key, 0.0) + value
                    )
        except _WORKER_FAILURES + (WorkerDied,):
            pass
        if handle.process is not None:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - safety net
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        if handle.conn is not None:
            handle.conn.close()
        handle.dispose()

    def stop(self) -> None:
        """Graceful shutdown: collect timings, join, terminate stragglers."""
        for handle in self._handles.values():
            self._stop_handle(handle)


def make_pool(
    specs: Sequence[UnitSpec],
    config: Optional[ServiceConfig] = None,
    states: Optional[Dict[str, Dict[str, Any]]] = None,
):
    """Build the pool the service config asks for (the one construction
    surface: serial fallback, worker count, transport, restart budget).

    ``states`` maps unit names to recovered durable detector states
    (absolute tick axis); covered units resume warm instead of cold.
    """
    cfg = config if config is not None else ServiceConfig()
    if cfg.n_workers <= 0:
        return SerialWorkerPool(
            specs, history_limit=cfg.history_limit, states=states
        )
    return ProcessWorkerPool(
        specs,
        n_workers=cfg.n_workers,
        history_limit=cfg.history_limit,
        max_restarts=cfg.max_worker_restarts,
        states=states,
        transport=cfg.transport,
        ring_ticks=cfg.transport_ring_ticks,
    )
