"""Sharded detection worker pool.

One :class:`~repro.core.detector.DBCatcher` per unit, sharded round-robin
across worker processes.  The scheduler dispatches *batches* of ticks per
unit; each dispatch is one message round-trip per worker carrying every
batch destined for that worker's shard, which amortizes IPC over
``batch_ticks`` ticks.

Two pool flavours share one API:

* :class:`SerialWorkerPool` — every detector lives in-process.  No
  pickling, no IPC; the reference implementation the parallel pool must
  match verdict-for-verdict.
* :class:`ProcessWorkerPool` — ``multiprocessing`` processes connected by
  pipes.  A worker that dies (OOM kill, segfaulting native code, the test
  suite's deliberate crash hook) is respawned with fresh detectors for
  its shard, up to a restart budget; ticks in flight during the crash are
  counted as lost, never silently replayed.

Detection is deterministic — same ticks in, same verdicts out — so batch
boundaries and process placement cannot change results; the parity tests
pin this down.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher, UnitDetectionResult
from repro.persist.codec import shift_state, state_next_tick

__all__ = [
    "UnitSpec",
    "WorkerDied",
    "shard_units",
    "SerialWorkerPool",
    "ProcessWorkerPool",
    "make_pool",
]


@dataclass(frozen=True)
class UnitSpec:
    """Everything a worker needs to build one unit's detector.

    The spec crosses the process boundary, so it must stay picklable:
    plain config + database count, no live objects.
    """

    name: str
    n_databases: int
    config: DBCatcherConfig


class WorkerDied(RuntimeError):
    """A worker process exceeded its crash-restart budget."""


def shard_units(unit_names: Sequence[str], n_workers: int) -> List[List[str]]:
    """Round-robin unit -> worker assignment.

    Round-robin keeps shard sizes within one unit of each other for any
    fleet size, which is what makes the throughput scaling near-linear.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    shards: List[List[str]] = [[] for _ in range(min(n_workers, len(unit_names)))]
    for index, name in enumerate(unit_names):
        shards[index % len(shards)].append(name)
    return shards


def _build_detectors(
    specs: Sequence[UnitSpec],
    history_limit: Optional[int],
    states: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, DBCatcher]:
    # The pool's retention policy wins over whatever the spec's config
    # carries (including None): the parent collects results on every
    # dispatch, so worker-side detectors never need deep history.  A unit
    # with recovered durable state resumes warm from it — this is also
    # what lets shards migrate between workers with their state attached.
    detectors: Dict[str, DBCatcher] = {}
    for spec in specs:
        state = states.get(spec.name) if states else None
        if state is not None:
            detectors[spec.name] = DBCatcher.from_state(
                state, history_limit=history_limit
            )
        else:
            detectors[spec.name] = DBCatcher(
                dataclasses.replace(spec.config, history_limit=history_limit),
                n_databases=spec.n_databases,
            )
    return detectors


def _shift_result(result: UnitDetectionResult, offset: int) -> UnitDetectionResult:
    """Re-anchor a result from a restarted detector's local tick 0.

    After a crash-restart the replacement detector counts ticks from
    zero; ``offset`` is the absolute sequence number its first tick had,
    so alerts keep pointing at the right spot in the source stream.
    """
    if offset == 0:
        return result
    return dataclasses.replace(
        result,
        start=result.start + offset,
        end=result.end + offset,
        records={
            db: dataclasses.replace(
                record,
                window_start=record.window_start + offset,
                window_end=record.window_end + offset,
            )
            for db, record in result.records.items()
        },
    )


class SerialWorkerPool:
    """In-process reference pool: one detector per unit, no concurrency."""

    def __init__(
        self,
        specs: Sequence[UnitSpec],
        history_limit: Optional[int] = None,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.detectors = _build_detectors(specs, history_limit, states)
        self.history_limit = history_limit
        self.restarts = 0
        self.ticks_lost = 0

    def install_config(self, unit: str, config: DBCatcherConfig) -> None:
        """Hot-swap one unit's thresholds between rounds.

        The pool's retention policy still wins over the incoming config's,
        exactly as at construction time.
        """
        self.detectors[unit].install_config(
            dataclasses.replace(config, history_limit=self.history_limit)
        )

    def dispatch(
        self, batches: Dict[str, np.ndarray]
    ) -> Dict[str, List[UnitDetectionResult]]:
        """Feed each unit its batch; return completed rounds per unit."""
        results: Dict[str, List[UnitDetectionResult]] = {}
        for unit, block in batches.items():
            results[unit] = self.detectors[unit].process(block)
        return results

    def component_seconds(self) -> Dict[str, float]:
        totals = {"correlation": 0.0, "observation": 0.0}
        for detector in self.detectors.values():
            for key, value in detector.component_seconds.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def export_states(self) -> Dict[str, Dict[str, object]]:
        return {name: d.export_state() for name, d in self.detectors.items()}

    def export_persist_states(
        self, units: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Durable :meth:`DBCatcher.to_state` payloads for snapshotting."""
        names = list(self.detectors) if units is None else list(units)
        return {
            name: self.detectors[name].to_state(healthy_matrices=False)
            for name in names
        }

    def crash_worker(self, unit: str) -> None:  # pragma: no cover - API parity
        raise NotImplementedError("the serial pool has no processes to crash")

    def stop(self) -> None:
        pass


def _worker_main(
    conn,
    specs: List[UnitSpec],
    history_limit: Optional[int],
    states: Optional[Dict[str, Dict[str, Any]]] = None,
) -> None:
    """Worker process loop: build the shard's detectors, serve commands."""
    detectors = _build_detectors(specs, history_limit, states)
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "batch":
            replies = []
            for unit, block in message[1]:
                replies.append((unit, detectors[unit].process(block)))
            conn.send(("results", replies))
        elif kind == "config":
            unit, config = message[1]
            detectors[unit].install_config(
                dataclasses.replace(config, history_limit=history_limit)
            )
            conn.send(("config_installed", unit))
        elif kind == "snapshot":
            conn.send(
                ("states", {name: d.export_state() for name, d in detectors.items()})
            )
        elif kind == "persist":
            conn.send(
                (
                    "persist_states",
                    {
                        name: detectors[name].to_state(healthy_matrices=False)
                        for name in message[1]
                    },
                )
            )
        elif kind == "crash":
            # Test hook: die the way a segfault would — no cleanup, no reply.
            os._exit(13)
        elif kind == "stop":
            totals = {"correlation": 0.0, "observation": 0.0}
            for detector in detectors.values():
                for key, value in detector.component_seconds.items():
                    totals[key] = totals.get(key, 0.0) + value
            conn.send(("stopped", totals))
            conn.close()
            return
        else:  # pragma: no cover - protocol guard
            conn.send(("error", f"unknown command {kind!r}"))


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(
        self,
        specs: List[UnitSpec],
        history_limit: Optional[int],
        ctx,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        self.specs = specs
        self.history_limit = history_limit
        self._ctx = ctx
        self.restarts = 0
        self._states = states
        #: Absolute sequence number of the next tick each unit's *current*
        #: detector incarnation maps to its local tick 0.  A detector
        #: restored from durable state already lives on the absolute axis,
        #: so its offset stays 0 while that incarnation lives.
        self.offsets: Dict[str, int] = {spec.name: 0 for spec in specs}
        #: Absolute ticks dispatched per unit, across incarnations.  Units
        #: resuming from durable state start at the state's next tick so a
        #: later crash re-anchors its fresh detector at the right spot.
        self.ticks_sent: Dict[str, int] = {
            spec.name: (
                state_next_tick(states[spec.name])
                if states and spec.name in states
                else 0
            )
            for spec in specs
        }
        self.process = None
        self.conn = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.specs, self.history_limit, self._states),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def restart(self) -> None:
        """Respawn after a crash; detectors restart fresh from the next tick."""
        if self.conn is not None:
            self.conn.close()
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.restarts += 1
        # Recovered states belonged to the dead incarnation's startup; the
        # replacement builds fresh detectors that count from local zero.
        self._states = None
        for unit in self.offsets:
            self.offsets[unit] = self.ticks_sent[unit]
        self._spawn()

    def request(self, message: tuple, timeout: float = 300.0):
        """Send one command and wait for its reply, detecting death."""
        self.conn.send(message)
        deadline = timeout
        while not self.conn.poll(0.05):
            deadline -= 0.05
            if deadline <= 0:
                raise WorkerDied("worker stopped responding")
            if not self.process.is_alive() and not self.conn.poll(0.0):
                raise EOFError("worker process died")
        return self.conn.recv()


class ProcessWorkerPool:
    """Sharded ``multiprocessing`` pool with crash-restart.

    Parameters
    ----------
    specs:
        One :class:`UnitSpec` per unit, in fleet order.
    n_workers:
        Worker processes; capped at the unit count.
    history_limit:
        Forwarded to every worker-side detector (small by default via
        :class:`~repro.service.config.ServiceConfig` — the parent collects
        results each dispatch, workers don't need to hoard them).
    max_restarts:
        Per-worker crash budget before :class:`WorkerDied` is raised.
    """

    def __init__(
        self,
        specs: Sequence[UnitSpec],
        n_workers: int,
        history_limit: Optional[int] = 8,
        max_restarts: int = 2,
        states: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        if not specs:
            raise ValueError("the pool needs at least one unit")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        by_name = {spec.name: spec for spec in specs}
        shards = shard_units([spec.name for spec in specs], n_workers)
        self.max_restarts = max_restarts
        self.ticks_lost = 0
        self._owner: Dict[str, int] = {}
        self._workers: List[_WorkerHandle] = []
        self._component_seconds = {"correlation": 0.0, "observation": 0.0}
        for index, shard in enumerate(shards):
            shard_states = (
                {name: states[name] for name in shard if name in states}
                if states
                else None
            )
            handle = _WorkerHandle(
                [by_name[name] for name in shard],
                history_limit,
                ctx,
                states=shard_states or None,
            )
            self._workers.append(handle)
            for name in shard:
                self._owner[name] = index

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def restarts(self) -> int:
        return sum(worker.restarts for worker in self._workers)

    def shard_of(self, unit: str) -> int:
        return self._owner[unit]

    def dispatch(
        self, batches: Dict[str, np.ndarray]
    ) -> Dict[str, List[UnitDetectionResult]]:
        """One message round-trip per worker owning any of the batches.

        A worker that dies mid-dispatch is restarted (within budget); its
        batches count as lost ticks and simply produce no results this
        round — the caller's loss accounting, not an exception, reports
        it.
        """
        per_worker: Dict[int, List[Tuple[str, np.ndarray]]] = {}
        for unit, block in batches.items():
            per_worker.setdefault(self._owner[unit], []).append((unit, block))
        results: Dict[str, List[UnitDetectionResult]] = {
            unit: [] for unit in batches
        }
        for index, payload in per_worker.items():
            worker = self._workers[index]
            try:
                reply = worker.request(("batch", payload))
            except (EOFError, OSError, BrokenPipeError, WorkerDied):
                lost = sum(len(block) for _, block in payload)
                self.ticks_lost += lost
                for unit, block in payload:
                    worker.ticks_sent[unit] += len(block)
                if worker.restarts >= self.max_restarts:
                    raise WorkerDied(
                        f"worker {index} exceeded its restart budget "
                        f"({self.max_restarts})"
                    )
                worker.restart()
                continue
            if reply[0] != "results":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
            for unit, block in payload:
                worker.ticks_sent[unit] += len(block)
            for unit, unit_results in reply[1]:
                offset = worker.offsets[unit]
                results[unit].extend(
                    _shift_result(result, offset) for result in unit_results
                )
        return results

    def install_config(self, unit: str, config: DBCatcherConfig) -> None:
        """Hot-swap one unit's thresholds between rounds.

        The owning worker's spec is updated *before* the message goes out,
        so a crash-restart at any point rebuilds the detector with the
        tuned thresholds rather than the stale ones.  A worker that dies
        during the swap is restarted (within budget) and the fresh
        incarnation picks the new config up from the spec.
        """
        worker = self._workers[self._owner[unit]]
        worker.specs = [
            dataclasses.replace(spec, config=config)
            if spec.name == unit
            else spec
            for spec in worker.specs
        ]
        try:
            reply = worker.request(("config", (unit, config)))
        except (EOFError, OSError, BrokenPipeError, WorkerDied):
            if worker.restarts >= self.max_restarts:
                raise WorkerDied(
                    f"worker {self._owner[unit]} exceeded its restart budget "
                    f"({self.max_restarts})"
                )
            worker.restart()
            return
        if reply[0] != "config_installed":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected worker reply {reply[0]!r}")

    def export_states(self) -> Dict[str, Dict[str, object]]:
        states: Dict[str, Dict[str, object]] = {}
        for worker in self._workers:
            try:
                reply = worker.request(("snapshot",))
            except (EOFError, OSError, BrokenPipeError, WorkerDied):
                continue
            if reply[0] == "states":
                states.update(reply[1])
        return states

    def export_persist_states(
        self, units: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Durable detector states, re-anchored to the absolute tick axis.

        A worker that died and restarted counts ticks from its restart
        point, so its exported states are shifted by the unit's known
        offset before they reach disk.  A worker that dies *during* the
        export simply contributes nothing this time; the scheduler
        snapshots it on a later round.
        """
        names = list(self._owner) if units is None else list(units)
        per_worker: Dict[int, List[str]] = {}
        for name in names:
            per_worker.setdefault(self._owner[name], []).append(name)
        states: Dict[str, Dict[str, Any]] = {}
        for index, shard in per_worker.items():
            worker = self._workers[index]
            try:
                reply = worker.request(("persist", shard))
            except (EOFError, OSError, BrokenPipeError, WorkerDied):
                continue
            if reply[0] != "persist_states":  # pragma: no cover - guard
                raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
            for unit, state in reply[1].items():
                states[unit] = shift_state(state, worker.offsets[unit])
        return states

    def crash_worker(self, unit: str) -> None:
        """Test hook: make the worker owning ``unit`` die like a segfault."""
        worker = self._workers[self._owner[unit]]
        try:
            worker.conn.send(("crash",))
        except (OSError, BrokenPipeError):  # pragma: no cover - already dead
            pass
        worker.process.join(timeout=5.0)

    def component_seconds(self) -> Dict[str, float]:
        return dict(self._component_seconds)

    def stop(self) -> None:
        """Graceful shutdown: collect timings, join, terminate stragglers."""
        for worker in self._workers:
            try:
                reply = worker.request(("stop",), timeout=30.0)
                if reply[0] == "stopped":
                    for key, value in reply[1].items():
                        self._component_seconds[key] = (
                            self._component_seconds.get(key, 0.0) + value
                        )
            except (EOFError, OSError, BrokenPipeError, WorkerDied):
                pass
            if worker.process is not None:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():  # pragma: no cover - safety net
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
            if worker.conn is not None:
                worker.conn.close()


def make_pool(
    specs: Sequence[UnitSpec],
    n_workers: int = 0,
    history_limit: Optional[int] = 8,
    max_restarts: int = 2,
    states: Optional[Dict[str, Dict[str, Any]]] = None,
):
    """Build the right pool for ``n_workers`` (0 -> serial fallback).

    ``states`` maps unit names to recovered durable detector states
    (absolute tick axis); covered units resume warm instead of cold.
    """
    if n_workers <= 0:
        return SerialWorkerPool(specs, history_limit=history_limit, states=states)
    return ProcessWorkerPool(
        specs,
        n_workers=n_workers,
        history_limit=history_limit,
        max_restarts=max_restarts,
        states=states,
    )
