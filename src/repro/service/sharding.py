"""Consistent-hash shard assignment for the detection worker pool.

Round-robin sharding (the PR-1 scheme) balances perfectly but reassigns
almost *every* unit whenever the worker count changes: unit ``i`` moves
from ``i % n`` to ``i % (n ± 1)``.  At fleet scale that turns one worker
joining or dying into a full-fleet state migration.  A consistent-hash
ring bounds the blast radius instead: each worker owns the arc between
its virtual nodes and its predecessors', so

* a worker *joining* only pulls the units that land on its new arcs
  (expected ``units / n_workers`` of them), and
* a worker *leaving* only spills its own units onto the survivors;

every other unit keeps its owner, and with it the worker-side detector
state that :mod:`repro.persist` migrates alongside the shard.

Plain consistent hashing balances poorly at small fleets (hashing 16
units into 4 buckets binomially spreads 1-7 units per worker), and the
slowest shard bounds every dispatch round.  :meth:`HashRing.assign_many`
therefore applies the *bounded-load* refinement: no worker may own more
than ``ceil(load_factor * units / workers)`` units; a unit whose primary
arc is full walks the ring to the next worker with room.  The walk is a
pure function of the (unit set, worker set, seed) triple — units are
processed in canonical hash order — so every component still derives the
identical assignment independently.

Determinism is load-bearing: the scheduler, the RCA topology overlay and
a crash-restarted pool must all derive the *same* assignment from the
same worker set.  The ring therefore hashes with :func:`hashlib.blake2b`
keyed by an explicit seed — never Python's randomized ``hash()`` — and
stamps its layout with :data:`RING_VERSION` so a future rehash (different
point width, replica count or digest) is an explicit, versioned break
rather than a silent one.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Dict, List, Sequence, Tuple

__all__ = ["RING_VERSION", "RING_SEED", "HashRing", "assign_units"]

#: Layout version of the ring's hash scheme.  Bump when the digest, the
#: point width or the virtual-node key format changes: persisted shard
#: maps and cross-process assignments are only comparable within one
#: version.
RING_VERSION = 1

#: Default hash seed.  All cooperating components must agree on it; it is
#: a constructor parameter only so tests can probe seed-sensitivity.
RING_SEED = 0xDBCA

#: Virtual nodes per worker.  64 keeps the raw-ring imbalance moderate
#: (bounded loads do the rest) while the ring stays tiny.
DEFAULT_REPLICAS = 64

#: Default bounded-load factor: no worker owns more than 1.25x the mean
#: shard size (rounded up).  1.25 keeps dispatch rounds within ~25% of
#: perfectly balanced while leaving enough slack that capacity overflow —
#: and therefore reassignment cascade on membership change — stays rare.
DEFAULT_LOAD_FACTOR = 1.25


def _point(key: str, seed: int) -> int:
    """Deterministic 64-bit ring coordinate of ``key`` under ``seed``."""
    digest = blake2b(
        key.encode("utf-8"),
        digest_size=8,
        salt=seed.to_bytes(8, "little"),
        person=b"dbc-ring",
    ).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """A consistent-hash ring over worker identifiers.

    Parameters
    ----------
    workers:
        Worker identifiers (unique strings; the pool uses ``"w<k>"`` with
        ``k`` never reused, so a replacement worker is a *new* ring member
        rather than an alias of the dead one).
    replicas:
        Virtual nodes per worker; more replicas = smoother balance.
    seed:
        Hash seed (see :data:`RING_SEED`).

    Notes
    -----
    The ring is immutable; membership changes build a new ring (see
    :meth:`with_worker` / :meth:`without_worker`), which is what makes
    reassignment diffs easy to compute and test.
    """

    def __init__(
        self,
        workers: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
        seed: int = RING_SEED,
        load_factor: float = DEFAULT_LOAD_FACTOR,
    ):
        if not workers:
            raise ValueError("the ring needs at least one worker")
        if len(set(workers)) != len(workers):
            raise ValueError("worker identifiers must be unique")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if load_factor < 1.0:
            raise ValueError("load_factor must be >= 1.0")
        self.workers: Tuple[str, ...] = tuple(workers)
        self.replicas = replicas
        self.seed = seed
        self.load_factor = load_factor
        points: List[Tuple[int, str]] = []
        for worker in self.workers:
            for replica in range(replicas):
                points.append((_point(f"{worker}#{replica}", seed), worker))
        # Ties are broken by worker id so insertion order never matters.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def assign(self, unit: str) -> str:
        """``unit``'s *primary* owner: first ring point at or after its hash.

        Capacity-blind — the fleet-wide :meth:`assign_many` is what the
        pool uses; this is the raw ring lookup it starts from.
        """
        index = bisect.bisect_left(self._points, _point(unit, self.seed))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assign_many(self, units: Sequence[str]) -> Dict[str, str]:
        """Bounded-load unit -> worker assignment for a whole fleet.

        Units are processed in canonical order (by ring coordinate, ties
        by name) so the result is a pure function of the unit *set*; the
        returned dict preserves the caller's unit order.  A unit whose
        primary worker is at capacity walks clockwise to the next worker
        with room — with at least one worker always under the ceiling,
        the walk terminates.
        """
        if len(set(units)) != len(units):
            raise ValueError("unit names must be unique")
        capacity = -(-int(self.load_factor * len(units)) // len(self.workers))
        capacity = max(capacity, -(-len(units) // len(self.workers)))
        counts: Dict[str, int] = {worker: 0 for worker in self.workers}
        placed: Dict[str, str] = {}
        order = sorted(units, key=lambda unit: (_point(unit, self.seed), unit))
        n_points = len(self._points)
        for unit in order:
            index = bisect.bisect_left(self._points, _point(unit, self.seed))
            for step in range(n_points):
                owner = self._owners[(index + step) % n_points]
                if counts[owner] < capacity:
                    placed[unit] = owner
                    counts[owner] += 1
                    break
        return {unit: placed[unit] for unit in units}

    def with_worker(self, worker: str) -> "HashRing":
        """A new ring with ``worker`` added (same replicas/seed/factor)."""
        if worker in self.workers:
            raise ValueError(f"worker {worker!r} is already on the ring")
        return HashRing(
            (*self.workers, worker),
            replicas=self.replicas,
            seed=self.seed,
            load_factor=self.load_factor,
        )

    def without_worker(self, worker: str) -> "HashRing":
        """A new ring with ``worker`` removed (same replicas/seed/factor)."""
        if worker not in self.workers:
            raise ValueError(f"worker {worker!r} is not on the ring")
        remaining = tuple(w for w in self.workers if w != worker)
        return HashRing(
            remaining,
            replicas=self.replicas,
            seed=self.seed,
            load_factor=self.load_factor,
        )

    def shards(self, units: Sequence[str]) -> Dict[str, List[str]]:
        """Worker -> owned units (fleet order), every worker present."""
        shards: Dict[str, List[str]] = {worker: [] for worker in self.workers}
        for unit, worker in self.assign_many(units).items():
            shards[worker].append(unit)
        return shards


def assign_units(
    unit_names: Sequence[str],
    workers: Sequence[str],
    replicas: int = DEFAULT_REPLICAS,
    seed: int = RING_SEED,
    load_factor: float = DEFAULT_LOAD_FACTOR,
) -> Dict[str, str]:
    """One-shot bounded-load consistent-hash assignment of units."""
    return HashRing(
        workers, replicas=replicas, seed=seed, load_factor=load_factor
    ).assign_many(unit_names)
