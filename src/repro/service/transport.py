"""Tick transports: how KPI blocks reach the worker processes.

The PR-1 pool pickled every dispatched batch into its worker's pipe —
correct, but at fleet scale the copy + pickle + unpickle per round-trip
is what the scheduler spends its time on.  This module puts that choice
behind the :class:`~repro.service.protocols.TickTransport` protocol with
two implementations:

* :class:`PickleTickTransport` — the legacy path: blocks ride inside the
  pipe message.  Zero setup cost, works everywhere, the conformance
  reference the shm path must match verdict-for-verdict.
* :class:`ShmTickTransport` — a :class:`ShmTickRing` per worker: a
  fixed-stride ``float64`` ring buffer in
  :mod:`multiprocessing.shared_memory`.  The parent writes tick blocks
  straight into the ring; the pipe message carries only slot
  descriptors; the worker maps each descriptor back to a zero-copy
  ``numpy`` view.  Per-tick transport cost drops from a pickle
  round-trip to one ``memcpy`` into the ring.

Ring protocol (one ring per worker, single producer / single consumer):

* The header holds two monotonically increasing ``int64`` cursors —
  ``head`` (slots the parent has written) and ``tail`` (slots the worker
  has consumed).  The parent only writes ``head``, the worker only
  writes ``tail``; aligned 8-byte stores are atomic on every platform
  CPython supports, so no cross-process lock is needed.
* Slots are tick-sized: ``stride = max(n_databases * n_kpis)`` over the
  fleet, so slot arithmetic never depends on which unit is in flight.
  A block of ``T`` ticks occupies ``T`` *contiguous* slots; when the
  free span at the end of the buffer is too short, the parent pads past
  it (the descriptor's ``release`` count covers the pad) so a view never
  wraps.
* **Backpressure** maps onto the existing queue semantics: when the ring
  is full the parent first drains any worker replies (so the worker can
  make progress and advance ``tail``), then waits; a wait that exceeds
  the timeout raises :class:`~repro.service.queues.QueueFull`, exactly
  like a blocked :meth:`~repro.service.queues.TickQueue.put`.  A
  dispatch larger than the ring is chunked across several pipe messages,
  each naming only slots already written.

Crash semantics: a ring belongs to one worker *incarnation*.  When the
pool restarts a crashed worker it disposes the old ring (its cursors
died with the worker) and creates a fresh one; the replacement attaches
by name during spawn.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.obs import runtime as obs
from repro.service.config import TRANSPORTS
from repro.service.queues import QueueFull

__all__ = [
    "TRANSPORTS",
    "ShmTickRing",
    "PickleTickTransport",
    "ShmTickTransport",
    "WorkerRingReader",
    "make_transport",
]

#: Header layout (int64 words) of a :class:`ShmTickRing`.
_H_CAPACITY = 0
_H_STRIDE = 1
_H_HEAD = 2
_H_TAIL = 3
_HEADER_WORDS = 4
_HEADER_BYTES = _HEADER_WORDS * 8

#: One batch descriptor: (unit, first slot, ticks, databases, kpis,
#: slots to release — ticks plus any wraparound padding).
Descriptor = Tuple[str, int, int, int, int, int]


class ShmTickRing:
    """Fixed-stride shared-memory ring of float64 KPI ticks.

    Parameters
    ----------
    capacity:
        Ring size in tick slots.
    stride:
        Slot width in float64 values — the fleet's widest
        ``n_databases * n_kpis``.  Narrower units leave slot tails
        unused; fixed stride is what keeps cursor arithmetic branch-free.
    name:
        Attach to an existing segment instead of creating one (the
        worker side of the pair).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        stride: Optional[int] = None,
        name: Optional[str] = None,
    ):
        from multiprocessing import shared_memory

        if name is None:
            if capacity is None or stride is None:
                raise ValueError("creating a ring needs capacity and stride")
            if capacity < 1 or stride < 1:
                raise ValueError("capacity and stride must be >= 1")
            size = _HEADER_BYTES + capacity * stride * 8
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self.created = True
            header = np.ndarray(
                (_HEADER_WORDS,), dtype=np.int64, buffer=self._shm.buf
            )
            header[_H_CAPACITY] = capacity
            header[_H_STRIDE] = stride
            header[_H_HEAD] = 0
            header[_H_TAIL] = 0
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.created = False
            header = np.ndarray(
                (_HEADER_WORDS,), dtype=np.int64, buffer=self._shm.buf
            )
            capacity = int(header[_H_CAPACITY])
            stride = int(header[_H_STRIDE])
        self.capacity = capacity
        self.stride = stride
        self._header = header
        self._data = np.ndarray(
            (capacity * stride,),
            dtype=np.float64,
            buffer=self._shm.buf,
            offset=_HEADER_BYTES,
        )

    @property
    def name(self) -> str:
        """Segment name the worker attaches by."""
        return self._shm.name

    @property
    def head(self) -> int:
        return int(self._header[_H_HEAD])

    @property
    def tail(self) -> int:
        return int(self._header[_H_TAIL])

    @property
    def free_slots(self) -> int:
        return self.capacity - (self.head - self.tail)

    def try_write(self, unit: str, block: np.ndarray) -> Optional[Descriptor]:
        """Write one ``(T, n_databases, n_kpis)`` block into the ring.

        Returns the descriptor naming the written slots, or ``None`` when
        the block (plus any wraparound padding) does not fit right now —
        the caller decides whether to flush in-flight messages or wait.
        Blocks longer than the ring can never fit and are the caller's
        job to split (see :func:`split_block`).
        """
        ticks, n_databases, n_kpis = block.shape
        width = n_databases * n_kpis
        if width > self.stride:
            raise ValueError(
                f"block width {width} exceeds ring stride {self.stride}"
            )
        if ticks > self.capacity:
            raise ValueError(
                f"{ticks}-tick block exceeds ring capacity {self.capacity}"
            )
        head = self.head
        offset = head % self.capacity
        pad = 0
        if offset + ticks > self.capacity:
            # Not enough contiguous room before the end: skip past it so
            # the worker's view never wraps.  The padded slots are dead
            # weight released together with the block.
            pad = self.capacity - offset
            offset = 0
        if self.capacity - (head - self.tail) < pad + ticks:
            return None
        start = offset * self.stride
        span = self._data[start : start + ticks * self.stride]
        span.shape = (ticks, self.stride)
        span[:, :width] = block.reshape(ticks, width)
        self._header[_H_HEAD] = head + pad + ticks
        return (unit, offset, ticks, n_databases, n_kpis, pad + ticks)

    def view(self, descriptor: Descriptor) -> np.ndarray:
        """Zero-copy read view of a descriptor's block (worker side)."""
        _, offset, ticks, n_databases, n_kpis, _ = descriptor
        base = self._data[offset * self.stride :]
        return as_strided(
            base,
            shape=(ticks, n_databases, n_kpis),
            strides=(self.stride * 8, n_kpis * 8, 8),
            writeable=False,
        )

    def release(self, slots: int) -> None:
        """Advance the consumer cursor past ``slots`` consumed slots."""
        self._header[_H_TAIL] = self.tail + slots

    def close(self) -> None:
        """Drop this process's mapping (both sides)."""
        self._header = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator side, after close)."""
        self._shm.unlink()


def split_block(block: np.ndarray, max_ticks: int) -> Iterator[np.ndarray]:
    """Split a tick block into ring-sized pieces.

    Detection is streaming — feeding a detector two half-blocks produces
    exactly the verdicts of one whole block — so chunking a dispatch that
    outgrows the ring is a pure transport concern.
    """
    for start in range(0, block.shape[0], max_ticks):
        yield block[start : start + max_ticks]


def _max_piece_ticks(capacity: int) -> int:
    """Largest block guaranteed to eventually fit in a draining ring.

    A ``T``-tick block landing at offset ``capacity - T + 1`` or later
    pads past the end, so it needs up to ``2T - 1`` free slots; capping
    pieces at half the ring keeps that under ``capacity`` and rules out
    the permanently-wedged write.
    """
    return max(1, capacity // 2)


class PickleTickTransport:
    """Legacy transport: tick blocks pickled into the worker pipe."""

    name = "pickle"

    def worker_init(self) -> Optional[Tuple[str, int, int]]:
        """Attach info shipped to the worker process (none needed)."""
        return None

    def encode(
        self,
        payload: Sequence[Tuple[str, np.ndarray]],
        timeout: float,
        drain: Callable[[], bool],
    ) -> Iterator[Optional[Tuple[str, List]]]:
        """One pipe message carrying the whole payload, as ever."""
        yield ("batch", [(unit, block) for unit, block in payload])

    def dispose(self) -> None:
        pass


class ShmTickTransport:
    """Shared-memory transport: one :class:`ShmTickRing` per worker."""

    name = "shm"

    def __init__(self, ring_ticks: int, stride: int):
        self._ring = ShmTickRing(capacity=ring_ticks, stride=stride)

    @property
    def ring(self) -> ShmTickRing:
        return self._ring

    def worker_init(self) -> Tuple[str, int, int]:
        return (self._ring.name, self._ring.capacity, self._ring.stride)

    def encode(
        self,
        payload: Sequence[Tuple[str, np.ndarray]],
        timeout: float,
        drain: Callable[[], bool],
    ) -> Iterator[Optional[Tuple[str, List[Descriptor]]]]:
        """Write blocks into the ring, yielding descriptor messages.

        Greedy chunking: descriptors accumulate while the ring has room;
        when a block no longer fits the accumulated message is flushed
        (yielded) so the worker can start consuming.  A full ring with
        nothing left to flush yields ``None`` — cooperative stall, the
        caller is free to service other workers — after one ``drain``
        attempt that keeps the worker's reply pipe from wedging.
        ``QueueFull`` after ``timeout`` stalled seconds maps ring
        saturation onto the same failure the ingest queues use.
        """
        ring = self._ring
        pending: List[Descriptor] = []
        for unit, block in payload:
            block = np.ascontiguousarray(block, dtype=np.float64)
            for piece in split_block(block, _max_piece_ticks(ring.capacity)):
                deadline: Optional[float] = None
                while True:
                    descriptor = ring.try_write(unit, piece)
                    if descriptor is not None:
                        break
                    if pending:
                        yield ("batch_shm", pending)
                        pending = []
                        continue
                    # Ring full with nothing of ours in flight to flush:
                    # the worker is still chewing; give it pipe room and
                    # wait for the commit cursor.
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + timeout
                    elif now > deadline:
                        raise QueueFull(
                            f"shm ring stayed full for {timeout:.3g}s "
                            f"(capacity {ring.capacity} ticks)"
                        )
                    obs.counter("transport.ring_full_waits").increment()
                    drain()
                    yield None
                pending.append(descriptor)
        if pending:
            yield ("batch_shm", pending)

    def dispose(self) -> None:
        """Release the ring (parent side owns the segment's lifetime)."""
        self._ring.close()
        self._ring.unlink()


class WorkerRingReader:
    """Worker-side counterpart: map descriptors to views, release slots."""

    def __init__(self, init: Tuple[str, int, int]):
        name, _, _ = init
        self._ring = ShmTickRing(name=name)

    def blocks(
        self, descriptors: Sequence[Descriptor]
    ) -> Iterator[Tuple[str, np.ndarray, int]]:
        """Yield ``(unit, zero-copy block view, release count)`` per entry.

        The caller must finish with each view *before* calling
        :meth:`release` for it — the slots are recycled immediately.
        """
        for descriptor in descriptors:
            yield descriptor[0], self._ring.view(descriptor), descriptor[5]

    def release(self, slots: int) -> None:
        self._ring.release(slots)

    def close(self) -> None:
        self._ring.close()


def make_transport(
    kind: str, ring_ticks: int, stride: int
):
    """Build one worker's parent-side transport endpoint."""
    if kind == "pickle":
        return PickleTickTransport()
    if kind == "shm":
        return ShmTickTransport(ring_ticks=ring_ticks, stride=stride)
    raise ValueError(
        f"transport must be one of {TRANSPORTS}, got {kind!r}"
    )
