"""Service metrics — re-exported from the canonical :mod:`repro.obs` layer.

The metrics registry started life here, private to the online service;
the observability subsystem (:mod:`repro.obs`) promoted it to a
library-wide layer with spans, a null no-op runtime and exposition
formats.  This module stays as the service-facing import path —
``from repro.service import MetricsRegistry`` keeps working — and simply
re-exports the canonical implementations.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)

#: Canonical RCA counter names, shared by the alert pipeline (registry
#: counters) and dashboards reading the metrics snapshot.  The analyzer
#: additionally mirrors lifecycle counts into the ambient observability
#: registry as ``rca.incidents_<kind>``.
INCIDENTS_OPENED = "incidents_opened"
INCIDENTS_UPDATED = "incidents_updated"
INCIDENTS_RESOLVED = "incidents_resolved"
ALERTS_SUPPRESSED = "alerts_suppressed"

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "INCIDENTS_OPENED",
    "INCIDENTS_UPDATED",
    "INCIDENTS_RESOLVED",
    "ALERTS_SUPPRESSED",
]
