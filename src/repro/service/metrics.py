"""Lightweight metrics registry for the online detection service.

The paper reports operational numbers — per-component computation time,
online throughput (§IV-D4) — that a deployed system would expose through a
metrics endpoint.  This module is a dependency-free stand-in for such an
endpoint: counters, gauges and fixed-bucket latency histograms behind one
thread-safe registry whose :meth:`MetricsRegistry.snapshot` returns a plain
dict suitable for printing, JSON-encoding, or asserting on in tests.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default latency buckets in seconds: microseconds through tens of seconds,
#: roughly log-spaced — tick ingest sits at the bottom, a full worker
#: round-trip over a big batch at the top.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Last-written value plus the maximum ever observed.

    Queue depths are the main consumer: the instantaneous value tells the
    operator where the system is now, the max tells them how close to the
    bound the backlog ever got.
    """

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._max:
                self._max = float(value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value, "max": self._max}


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max.

    Buckets are cumulative-upper-bound style (as in Prometheus): bucket
    ``i`` counts observations ``<= bounds[i]``; one implicit overflow
    bucket catches the rest.
    """

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> "_Timer":
        """Context manager recording the elapsed wall-clock seconds."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self.mean,
                "min": self._min,
                "max": self._max,
                "buckets": dict(zip(
                    [f"le_{b:g}" for b in self.bounds] + ["overflow"],
                    list(self._counts),
                )),
            }


class _Timer:
    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named metric instruments, created on first use.

    ``registry.counter("ticks_ingested").increment()`` is the whole API:
    asking twice for the same name returns the same instrument, asking for
    a name already registered as a different kind raises.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = kind(name, **kwargs)
                self._metrics[name] = existing
            elif not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds=bounds)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self) -> Dict[str, object]:
        """One plain dict of every instrument's current state."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}
