"""Service metrics — re-exported from the canonical :mod:`repro.obs` layer.

The metrics registry started life here, private to the online service;
the observability subsystem (:mod:`repro.obs`) promoted it to a
library-wide layer with spans, a null no-op runtime and exposition
formats.  This module stays as the service-facing import path —
``from repro.service import MetricsRegistry`` keeps working — and simply
re-exports the canonical implementations.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]
