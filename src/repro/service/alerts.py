"""Alert pipeline: detection rounds out, operator notifications in.

Every completed :class:`~repro.core.detector.UnitDetectionResult` flows
through the :class:`AlertPipeline`; rounds that judged at least one
database abnormal become :class:`Alert`\\ s and fan out to the configured
sinks.  Sinks are deliberately tiny — stdout for interactive runs, JSONL
for ingestion into downstream tooling, callback/memory for embedding and
tests — and new ones only need ``emit`` and ``close``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.detector import UnitDetectionResult
from repro.service.metrics import MetricsRegistry

if TYPE_CHECKING:  # imported lazily at runtime: repro.rca pulls in sources
    from repro.ensemble import FusedVerdict
    from repro.rca.analyzer import RootCauseAnalyzer
    from repro.rca.attribution import Attribution
    from repro.rca.incidents import IncidentEvent

__all__ = [
    "Alert",
    "AlertSink",
    "StdoutSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "AlertPipeline",
    "build_sink",
]


@dataclass(frozen=True)
class Alert:
    """One abnormal detection round, flattened for operators.

    Parameters
    ----------
    unit:
        Name of the unit the round belongs to.
    start, end:
        Absolute tick span ``[start, end)`` of the round's final window.
    abnormal_databases:
        Indices judged abnormal.
    expansions:
        Flexible-window expansions of the worst judged database — a proxy
        for how long the verdict stayed ambiguous.
    kpi_levels:
        Per abnormal database, the KPI -> correlation-level map behind the
        verdict (level 1 = extreme deviation), for root-cause triage.
    latency_seconds:
        Detection latency implied by the window: ticks consumed times the
        collection interval.
    attribution:
        Optional culprit ranking from :mod:`repro.rca`, attached when the
        pipeline runs with an analyzer.
    incident_id:
        Identifier of the incident this alert was correlated into, when
        incident correlation is on.
    provenance:
        Per abnormal database, which mechanism flagged it —
        ``"correlation"`` / ``"log"`` / ``"both"`` — attached only when
        the log channel contributed to the verdict (see
        :func:`repro.ensemble.fuse_round`).  ``kpi_levels`` stays keyed
        by the correlation-flagged databases: a log-only database has
        log evidence, not KPI evidence.
    """

    unit: str
    start: int
    end: int
    abnormal_databases: Tuple[int, ...]
    expansions: int = 0
    kpi_levels: Dict[int, Dict[str, int]] = field(default_factory=dict)
    latency_seconds: float = 0.0
    attribution: Optional["Attribution"] = None
    incident_id: Optional[str] = None
    provenance: Optional[Dict[int, str]] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "unit": self.unit,
            "start": self.start,
            "end": self.end,
            "abnormal_databases": list(self.abnormal_databases),
            "expansions": self.expansions,
            "kpi_levels": {
                str(db): dict(levels) for db, levels in self.kpi_levels.items()
            },
            "latency_seconds": self.latency_seconds,
        }
        # Optional RCA fields ride along as absent keys, not nulls, so
        # pre-RCA JSONL consumers see byte-identical records.
        if self.attribution is not None:
            payload["attribution"] = self.attribution.to_dict()
        if self.incident_id is not None:
            payload["incident_id"] = self.incident_id
        if self.provenance is not None:
            payload["provenance"] = {
                str(db): tag for db, tag in self.provenance.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Alert":
        """Rebuild an alert from its :meth:`to_dict` form."""
        attribution: Optional["Attribution"] = None
        if "attribution" in payload:
            from repro.rca.attribution import Attribution

            attribution = Attribution.from_dict(payload["attribution"])  # type: ignore[arg-type]
        return cls(
            unit=str(payload["unit"]),
            start=int(payload["start"]),  # type: ignore[arg-type]
            end=int(payload["end"]),  # type: ignore[arg-type]
            abnormal_databases=tuple(
                int(db) for db in payload["abnormal_databases"]  # type: ignore[union-attr]
            ),
            expansions=int(payload.get("expansions", 0)),  # type: ignore[arg-type]
            kpi_levels={
                int(db): {str(kpi): int(level) for kpi, level in levels.items()}
                for db, levels in payload.get("kpi_levels", {}).items()  # type: ignore[union-attr]
            },
            latency_seconds=float(payload.get("latency_seconds", 0.0)),  # type: ignore[arg-type]
            attribution=attribution,
            incident_id=(
                str(payload["incident_id"])
                if "incident_id" in payload
                else None
            ),
            provenance=(
                {
                    int(db): str(tag)
                    for db, tag in payload["provenance"].items()  # type: ignore[union-attr]
                }
                if "provenance" in payload
                else None
            ),
        )

    @classmethod
    def from_result(
        cls,
        unit: str,
        result: UnitDetectionResult,
        interval_seconds: float = 5.0,
    ) -> "Alert":
        """Build an alert from an abnormal detection round."""
        abnormal = result.abnormal_databases
        records = {db: result.records[db] for db in abnormal}
        return cls(
            unit=unit,
            start=result.start,
            end=result.end,
            abnormal_databases=abnormal,
            expansions=max(
                (record.expansions for record in records.values()), default=0
            ),
            kpi_levels={
                db: dict(record.kpi_levels) for db, record in records.items()
            },
            latency_seconds=result.window_size * interval_seconds,
        )


class AlertSink:
    """Destination for alerts.  Subclasses override :meth:`emit`.

    :meth:`emit_incident` receives incident lifecycle events when the
    pipeline runs with RCA enabled; the default ignores them so existing
    sinks stay valid.
    """

    def emit(self, alert: Alert) -> None:
        raise NotImplementedError

    def emit_incident(self, event: "IncidentEvent") -> None:
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class StdoutSink(AlertSink):
    """Human-readable one-liners, the default for ``repro serve``."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        flagged = ", ".join(f"D{db + 1}" for db in alert.abnormal_databases)
        suffix = ""
        if alert.provenance is not None:
            tags = ",".join(
                f"D{db + 1}:{alert.provenance[db]}"
                for db in alert.abnormal_databases
                if db in alert.provenance
            )
            suffix = f" provenance={tags}"
        if alert.incident_id is not None:
            suffix += f" incident={alert.incident_id}"
        if alert.attribution is not None and alert.attribution.top_database is not None:
            suffix += f" culprit=D{alert.attribution.top_database + 1}"
        print(
            f"ALERT {alert.unit} ticks [{alert.start}, {alert.end}): "
            f"abnormal {flagged} (expansions={alert.expansions}, "
            f"latency={alert.latency_seconds:.0f}s)" + suffix,
            file=stream,
        )

    def emit_incident(self, event: "IncidentEvent") -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        incident = event.incident
        print(
            f"INCIDENT {incident.incident_id} {event.kind} "
            f"[{incident.severity}] units={','.join(incident.unit_names)} "
            f"verdicts={incident.frequency} @tick {event.tick}",
            file=stream,
        )


class JSONLSink(AlertSink):
    """One JSON object per record, appended to a file.

    Every record is flushed *and* fsynced before :meth:`emit` returns —
    the same per-record durability discipline ``TuningCheckpoint`` uses
    for its atomic writes — so a crash immediately after an alert cannot
    lose it to OS buffers.  Incident events land in the same file as
    ``{"type": "incident", ...}`` objects; alert records carry no
    ``type`` key, which is how replay tells them apart.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def _write(self, payload: Dict[str, object]) -> None:
        if self._handle is None:
            raise RuntimeError("sink is closed")
        json.dump(payload, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def emit(self, alert: Alert) -> None:
        self._write(alert.to_dict())

    def emit_incident(self, event: "IncidentEvent") -> None:
        self._write(event.to_dict())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invokes a user callable per alert (embedding the service in-app)."""

    def __init__(self, callback: Callable[[Alert], None]):
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


class MemorySink(AlertSink):
    """Collects alerts (and incident events) in lists; the test workhorse."""

    def __init__(self):
        self.alerts: List[Alert] = []
        self.incident_events: List["IncidentEvent"] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def emit_incident(self, event: "IncidentEvent") -> None:
        self.incident_events.append(event)


def build_sink(spec: Union[str, AlertSink, Callable[[Alert], None]]) -> AlertSink:
    """Resolve a sink specification.

    Accepts an :class:`AlertSink` (passed through), a callable (wrapped in
    a :class:`CallbackSink`), or one of the string forms ``"stdout"``,
    ``"memory"``, ``"null"`` and ``"jsonl:<path>"`` used by the CLI.
    """
    if isinstance(spec, AlertSink):
        return spec
    if callable(spec):
        return CallbackSink(spec)
    if not isinstance(spec, str):
        raise TypeError(f"cannot build a sink from {type(spec).__name__}")
    if spec == "stdout":
        return StdoutSink()
    if spec == "memory":
        return MemorySink()
    if spec == "null":
        return _NullSink()
    if spec.startswith("jsonl:"):
        path = spec.split(":", 1)[1]
        if not path:
            raise ValueError("jsonl sink needs a path: jsonl:<path>")
        return JSONLSink(path)
    raise ValueError(
        f"unknown sink spec {spec!r}; expected stdout, memory, null or "
        "jsonl:<path>"
    )


class _NullSink(AlertSink):
    def emit(self, alert: Alert) -> None:
        pass


class AlertPipeline:
    """Routes detection rounds to sinks and keeps the alert metrics.

    Parameters
    ----------
    sinks:
        Sink specifications, resolved through :func:`build_sink`.
    metrics:
        Registry receiving ``rounds_completed`` / ``alerts_emitted``
        counters; a private one is created when omitted.
    interval_seconds:
        Collection interval used to derive alert latencies.
    min_databases:
        Minimum abnormal databases for a round to alert.
    rca:
        Optional :class:`~repro.rca.analyzer.RootCauseAnalyzer`.  When
        present, every round (normal or not) is fed through it — normal
        rounds move the incident clock — and alerts carry their
        attribution and incident id; incident lifecycle events fan out to
        the sinks via :meth:`AlertSink.emit_incident`.
    rate_limit:
        Maximum alerts emitted per unit within ``rate_window_ticks``
        (``None`` = unlimited).  Suppressed rounds still feed RCA and the
        ``alerts_suppressed`` counter — the verdict is not lost, only the
        notification.
    rate_window_ticks:
        Sliding window (in ticks) the rate limit is measured over.
    """

    def __init__(
        self,
        sinks: Sequence[Union[str, AlertSink, Callable[[Alert], None]]] = ("stdout",),
        metrics: Optional[MetricsRegistry] = None,
        interval_seconds: float = 5.0,
        min_databases: int = 1,
        rca: Optional["RootCauseAnalyzer"] = None,
        rate_limit: Optional[int] = None,
        rate_window_ticks: int = 60,
    ):
        if rate_limit is not None and rate_limit < 1:
            raise ValueError("rate_limit must be >= 1 (or None)")
        if rate_window_ticks < 1:
            raise ValueError("rate_window_ticks must be >= 1")
        self.sinks: Tuple[AlertSink, ...] = tuple(build_sink(s) for s in sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.interval_seconds = float(interval_seconds)
        self.min_databases = int(min_databases)
        self.rca = rca
        self.rate_limit = rate_limit
        self.rate_window_ticks = int(rate_window_ticks)
        self._recent_alerts: Dict[str, Deque[int]] = {}
        self._last_tick = 0
        self._closed = False

    def _rate_limited(self, unit: str, tick: int) -> bool:
        if self.rate_limit is None:
            return False
        recent = self._recent_alerts.setdefault(unit, deque())
        while recent and recent[0] <= tick - self.rate_window_ticks:
            recent.popleft()
        if len(recent) >= self.rate_limit:
            return True
        recent.append(tick)
        return False

    def _fan_out_events(
        self, events: Sequence["IncidentEvent"], replay: bool = False
    ) -> None:
        for event in events:
            if not replay:
                for sink in self.sinks:
                    sink.emit_incident(event)
            self.metrics.counter(f"incidents_{event.kind}").increment()

    def publish(
        self,
        unit: str,
        result: UnitDetectionResult,
        replay: bool = False,
        fused: Optional["FusedVerdict"] = None,
        log_attribution: Optional["Attribution"] = None,
    ) -> Optional[Alert]:
        """Feed one completed round; returns the alert if one was emitted.

        ``replay=True`` rebuilds pipeline state from recovered history
        (see :mod:`repro.persist`): counters, the rate limiter, RCA
        incident state and the returned alert all advance exactly as they
        did the first time, but nothing reaches the sinks — those
        notifications already went out before the crash.

        ``fused`` is the round's KPI/log union verdict when the service
        runs the log ensemble: the alert decision is then made on the
        *combined* databases, and an alert the log channel contributed
        to carries the union plus per-database provenance.  A fused
        verdict whose log side is empty changes nothing — the emitted
        alert is byte-identical to the un-fused one.  ``log_attribution``
        is the log-evidence culprit ranking for rounds abnormal on log
        evidence alone; it stands in for the correlation attribution the
        RCA analyzer cannot derive from a quiet correlation verdict.
        """
        if self._closed:
            raise RuntimeError("alert pipeline is closed")
        self.metrics.counter("rounds_completed").increment()
        self._last_tick = max(self._last_tick, result.end)
        attribution: Optional["Attribution"] = None
        incident_id: Optional[str] = None
        events: Sequence["IncidentEvent"] = ()
        if self.rca is not None:
            outcome = self.rca.process(
                unit, result, log_attribution=log_attribution
            )
            attribution = outcome.attribution
            incident_id = outcome.incident_id
            events = outcome.events
        abnormal = (
            fused.combined if fused is not None else result.abnormal_databases
        )
        alert: Optional[Alert] = None
        if len(abnormal) >= self.min_databases:
            if self._rate_limited(unit, result.end):
                self.metrics.counter("alerts_suppressed").increment()
            else:
                alert = Alert.from_result(unit, result, self.interval_seconds)
                if fused is not None and fused.log:
                    alert = dataclasses.replace(
                        alert,
                        abnormal_databases=tuple(fused.combined),
                        provenance=dict(fused.provenance),
                    )
                if attribution is not None or incident_id is not None:
                    alert = dataclasses.replace(
                        alert, attribution=attribution, incident_id=incident_id
                    )
                if not replay:
                    for sink in self.sinks:
                        sink.emit(alert)
                self.metrics.counter("alerts_emitted").increment()
        self._fan_out_events(events, replay=replay)
        return alert

    def finish(self, tick: Optional[int] = None) -> None:
        """End of stream: resolve open incidents and fan the events out."""
        if self.rca is not None and not self._closed:
            final = tick if tick is not None else self._last_tick
            self._fan_out_events(self.rca.finish(final))

    def close(self) -> None:
        if not self._closed:
            for sink in self.sinks:
                sink.close()
            self._closed = True
