"""Alert pipeline: detection rounds out, operator notifications in.

Every completed :class:`~repro.core.detector.UnitDetectionResult` flows
through the :class:`AlertPipeline`; rounds that judged at least one
database abnormal become :class:`Alert`\\ s and fan out to the configured
sinks.  Sinks are deliberately tiny — stdout for interactive runs, JSONL
for ingestion into downstream tooling, callback/memory for embedding and
tests — and new ones only need ``emit`` and ``close``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.core.detector import UnitDetectionResult
from repro.service.metrics import MetricsRegistry

__all__ = [
    "Alert",
    "AlertSink",
    "StdoutSink",
    "JSONLSink",
    "CallbackSink",
    "MemorySink",
    "AlertPipeline",
    "build_sink",
]


@dataclass(frozen=True)
class Alert:
    """One abnormal detection round, flattened for operators.

    Parameters
    ----------
    unit:
        Name of the unit the round belongs to.
    start, end:
        Absolute tick span ``[start, end)`` of the round's final window.
    abnormal_databases:
        Indices judged abnormal.
    expansions:
        Flexible-window expansions of the worst judged database — a proxy
        for how long the verdict stayed ambiguous.
    kpi_levels:
        Per abnormal database, the KPI -> correlation-level map behind the
        verdict (level 1 = extreme deviation), for root-cause triage.
    latency_seconds:
        Detection latency implied by the window: ticks consumed times the
        collection interval.
    """

    unit: str
    start: int
    end: int
    abnormal_databases: Tuple[int, ...]
    expansions: int = 0
    kpi_levels: Dict[int, Dict[str, int]] = field(default_factory=dict)
    latency_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "start": self.start,
            "end": self.end,
            "abnormal_databases": list(self.abnormal_databases),
            "expansions": self.expansions,
            "kpi_levels": {
                str(db): dict(levels) for db, levels in self.kpi_levels.items()
            },
            "latency_seconds": self.latency_seconds,
        }

    @classmethod
    def from_result(
        cls,
        unit: str,
        result: UnitDetectionResult,
        interval_seconds: float = 5.0,
    ) -> "Alert":
        """Build an alert from an abnormal detection round."""
        abnormal = result.abnormal_databases
        records = {db: result.records[db] for db in abnormal}
        return cls(
            unit=unit,
            start=result.start,
            end=result.end,
            abnormal_databases=abnormal,
            expansions=max(
                (record.expansions for record in records.values()), default=0
            ),
            kpi_levels={
                db: dict(record.kpi_levels) for db, record in records.items()
            },
            latency_seconds=result.window_size * interval_seconds,
        )


class AlertSink:
    """Destination for alerts.  Subclasses override :meth:`emit`."""

    def emit(self, alert: Alert) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class StdoutSink(AlertSink):
    """Human-readable one-liners, the default for ``repro serve``."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        flagged = ", ".join(f"D{db + 1}" for db in alert.abnormal_databases)
        print(
            f"ALERT {alert.unit} ticks [{alert.start}, {alert.end}): "
            f"abnormal {flagged} (expansions={alert.expansions}, "
            f"latency={alert.latency_seconds:.0f}s)",
            file=stream,
        )


class JSONLSink(AlertSink):
    """One JSON object per alert, appended to a file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def emit(self, alert: Alert) -> None:
        if self._handle is None:
            raise RuntimeError("sink is closed")
        json.dump(alert.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invokes a user callable per alert (embedding the service in-app)."""

    def __init__(self, callback: Callable[[Alert], None]):
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


class MemorySink(AlertSink):
    """Collects alerts in a list; the test workhorse."""

    def __init__(self):
        self.alerts: List[Alert] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)


def build_sink(spec: Union[str, AlertSink, Callable[[Alert], None]]) -> AlertSink:
    """Resolve a sink specification.

    Accepts an :class:`AlertSink` (passed through), a callable (wrapped in
    a :class:`CallbackSink`), or one of the string forms ``"stdout"``,
    ``"memory"``, ``"null"`` and ``"jsonl:<path>"`` used by the CLI.
    """
    if isinstance(spec, AlertSink):
        return spec
    if callable(spec):
        return CallbackSink(spec)
    if not isinstance(spec, str):
        raise TypeError(f"cannot build a sink from {type(spec).__name__}")
    if spec == "stdout":
        return StdoutSink()
    if spec == "memory":
        return MemorySink()
    if spec == "null":
        return _NullSink()
    if spec.startswith("jsonl:"):
        path = spec.split(":", 1)[1]
        if not path:
            raise ValueError("jsonl sink needs a path: jsonl:<path>")
        return JSONLSink(path)
    raise ValueError(
        f"unknown sink spec {spec!r}; expected stdout, memory, null or "
        "jsonl:<path>"
    )


class _NullSink(AlertSink):
    def emit(self, alert: Alert) -> None:
        pass


class AlertPipeline:
    """Routes detection rounds to sinks and keeps the alert metrics.

    Parameters
    ----------
    sinks:
        Sink specifications, resolved through :func:`build_sink`.
    metrics:
        Registry receiving ``rounds_completed`` / ``alerts_emitted``
        counters; a private one is created when omitted.
    interval_seconds:
        Collection interval used to derive alert latencies.
    min_databases:
        Minimum abnormal databases for a round to alert.
    """

    def __init__(
        self,
        sinks: Sequence[Union[str, AlertSink, Callable[[Alert], None]]] = ("stdout",),
        metrics: Optional[MetricsRegistry] = None,
        interval_seconds: float = 5.0,
        min_databases: int = 1,
    ):
        self.sinks: Tuple[AlertSink, ...] = tuple(build_sink(s) for s in sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.interval_seconds = float(interval_seconds)
        self.min_databases = int(min_databases)
        self._closed = False

    def publish(self, unit: str, result: UnitDetectionResult) -> Optional[Alert]:
        """Feed one completed round; returns the alert if one was emitted."""
        if self._closed:
            raise RuntimeError("alert pipeline is closed")
        self.metrics.counter("rounds_completed").increment()
        if len(result.abnormal_databases) < self.min_databases:
            return None
        alert = Alert.from_result(unit, result, self.interval_seconds)
        for sink in self.sinks:
            sink.emit(alert)
        self.metrics.counter("alerts_emitted").increment()
        return alert

    def close(self) -> None:
        if not self._closed:
            for sink in self.sinks:
                sink.close()
            self._closed = True
