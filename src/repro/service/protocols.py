"""The service-layer contracts: tick feeds in, tick transports down.

The scheduler, the chaos harness and the CLI all consume tick feeds
duck-typed until now; :class:`TickSource` writes the contract down once.
A source describes its fleet (``units``, ``kpi_names``,
``interval_seconds``) and iterates :class:`~repro.service.sources.TickEvent`
objects with per-unit monotonically increasing sequence numbers.

:class:`TickTransport` is the downstream twin: how a dispatched batch of
KPI blocks reaches one worker process.  The pool speaks only this
protocol; whether blocks ride pickled inside the worker pipe
(:class:`~repro.service.transport.PickleTickTransport`) or as slot
descriptors into a shared-memory ring
(:class:`~repro.service.transport.ShmTickTransport`) is selected by
``ServiceConfig.transport`` and invisible above the pool.

Both protocols are :func:`~typing.runtime_checkable`, so conformance is
an ``isinstance`` check — which is exactly what the protocol tests do
for every shipped source (:class:`~repro.service.sources.ReplaySource`,
:class:`~repro.service.sources.MonitorSource`,
:class:`~repro.service.sources.MonitorStreamSource`,
:class:`~repro.service.sources.RetryingSource`,
:class:`~repro.chaos.source.ChaosSource`,
:class:`~repro.service.api.NetworkSource`) and transport.  Sources may
additionally expose ``take_actions()`` for control-plane events
(scale-out, failover); the scheduler probes for it with ``getattr``, it
is not part of the minimum contract.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.service.sources import TickEvent

__all__ = ["TickSource", "TickTransport"]


@runtime_checkable
class TickSource(Protocol):
    """What the detection service needs from a feed of monitoring ticks."""

    @property
    def units(self) -> Dict[str, int]:
        """Unit name -> database count, for sharding and detector setup."""
        ...

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        """KPI names shared by every unit in the fleet."""
        ...

    @property
    def interval_seconds(self) -> float:
        """Collection cadence the stream was sampled at."""
        ...

    def __iter__(self) -> Iterator[TickEvent]:
        """Yield tick events; ``seq`` is per-unit gapless at the source."""
        ...


@runtime_checkable
class TickTransport(Protocol):
    """How one worker's share of a dispatch round reaches its process.

    The pool owns one transport endpoint per worker handle.  Dispatch
    calls :meth:`encode` with the worker's ``(unit, block)`` payload and
    forwards every yielded pipe message, collecting one reply per
    message; everything else — ring cursors, chunking, backpressure —
    stays inside the transport.
    """

    @property
    def name(self) -> str:
        """Transport kind (``"pickle"`` or ``"shm"``)."""
        ...

    def worker_init(self) -> Optional[Any]:
        """Picklable attach info shipped to the worker at spawn time.

        ``None`` means the worker needs no transport-side setup (the
        pickle path); the shm path ships its ring's segment name.
        """
        ...

    def encode(
        self,
        payload: Sequence[Tuple[str, np.ndarray]],
        timeout: float,
        drain: Callable[[], bool],
    ) -> Iterator[Optional[Tuple[str, List[Any]]]]:
        """Yield the pipe messages that carry ``payload`` to the worker.

        A ``None`` yield is a cooperative stall — no buffer space right
        now; the caller may service other workers and resume later.
        ``drain`` lets the transport pull completed replies off the
        worker pipe while it waits for space — the caller banks them —
        and a stall outlasting ``timeout`` seconds raises
        :class:`~repro.service.queues.QueueFull`.
        """
        ...

    def dispose(self) -> None:
        """Release transport resources for a dead or retired worker."""
        ...
