"""The tick-source contract every service feed satisfies.

The scheduler, the chaos harness and the CLI all consume tick feeds
duck-typed until now; :class:`TickSource` writes the contract down once.
A source describes its fleet (``units``, ``kpi_names``,
``interval_seconds``) and iterates :class:`~repro.service.sources.TickEvent`
objects with per-unit monotonically increasing sequence numbers.

The protocol is :func:`~typing.runtime_checkable`, so conformance is an
``isinstance`` check — which is exactly what the protocol test does for
every shipped source (:class:`~repro.service.sources.ReplaySource`,
:class:`~repro.service.sources.MonitorSource`,
:class:`~repro.service.sources.MonitorStreamSource`,
:class:`~repro.service.sources.RetryingSource`,
:class:`~repro.chaos.source.ChaosSource`).  Sources may additionally
expose ``take_actions()`` for control-plane events (scale-out, failover);
the scheduler probes for it with ``getattr``, it is not part of the
minimum contract.
"""

from __future__ import annotations

from typing import Dict, Iterator, Protocol, Tuple, runtime_checkable

from repro.service.sources import TickEvent

__all__ = ["TickSource"]


@runtime_checkable
class TickSource(Protocol):
    """What the detection service needs from a feed of monitoring ticks."""

    @property
    def units(self) -> Dict[str, int]:
        """Unit name -> database count, for sharding and detector setup."""
        ...

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        """KPI names shared by every unit in the fleet."""
        ...

    @property
    def interval_seconds(self) -> float:
        """Collection cadence the stream was sampled at."""
        ...

    def __iter__(self) -> Iterator[TickEvent]:
        """Yield tick events; ``seq`` is per-unit gapless at the source."""
        ...
