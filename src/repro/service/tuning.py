"""Online drift-triggered threshold retraining for the fleet service.

The paper's feedback loop (Section III-D / Fig. 6) assumes one detector
and a DBA marking its records.  At fleet scale the loop has to run per
unit, off the hot path, and swap tuned thresholds into *live* detectors
without perturbing the detection stream.  :class:`TuningCoordinator`
owns that loop for :class:`~repro.service.scheduler.DetectionService`:

* it observes every dispatched batch (raw ticks feed per-unit replay
  buffers) and every completed round (records are marked against ground
  truth and scored over a sliding window with the
  :mod:`repro.eval.metrics` confusion helpers);
* when a unit's windowed F-Measure decays below ``min_f_measure``, it
  launches a :class:`~repro.tuning.GeneticThresholdLearner` over the
  unit's replay buffer — inline (``background=False``, deterministic for
  the golden fixture) or on a daemon thread (``background=True``, the
  production shape);
* finished searches are *installed between rounds only*: the scheduler
  polls the coordinator immediately before each pool round-trip, so a
  swap can never tear a flexible-window round in half.  Workers receive
  the new config through the pools' ``install_config`` (which also
  updates crash-restart specs, so a worker death after the swap keeps
  the tuned thresholds).

Retraining seeds are derived per ``(base seed, unit, trigger ordinal)``,
so a seeded service run retunes reproducibly regardless of thread
timing.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import UnitDetectionResult
from repro.core.feedback import DEFAULT_MIN_F_MEASURE, mark_records
from repro.core.records import JudgementRecord
from repro.eval.metrics import ConfusionCounts, scores_from_confusion
from repro.obs import runtime as obs
from repro.tuning import GeneticThresholdLearner, VectorizedObjective

__all__ = ["RetrainEvent", "TuningCoordinator"]

#: Builds a fresh learner for one retrain; receives the derived seed.
LearnerFactory = Callable[[int], GeneticThresholdLearner]


def _default_learner_factory(seed: int) -> GeneticThresholdLearner:
    return GeneticThresholdLearner(
        population_size=8, n_iterations=4, seed=seed
    )


@dataclass(frozen=True)
class RetrainEvent:
    """One completed drift-triggered retrain, as reported to operators."""

    unit: str
    trigger_f_measure: float
    tuned_fitness: float
    generations: int
    swap_seconds: float
    swap_tick: int
    alphas: tuple
    theta: float
    tolerance: int


@dataclass
class _UnitState:
    config: DBCatcherConfig
    labels: np.ndarray
    window: Deque[JudgementRecord]
    replay: Deque[np.ndarray] = field(default_factory=deque)
    replay_ticks: int = 0
    ticks_seen: int = 0
    retrain_count: int = 0
    in_flight: bool = False


class _RetrainJob:
    """One search, runnable inline or as a daemon thread."""

    def __init__(
        self,
        coordinator: "TuningCoordinator",
        unit: str,
        config: DBCatcherConfig,
        values: np.ndarray,
        labels: np.ndarray,
        seed: int,
        trigger_f_measure: float,
    ):
        self.unit = unit
        self.trigger_f_measure = trigger_f_measure
        self.tuned_config: Optional[DBCatcherConfig] = None
        self.tuned_fitness = 0.0
        self.generations = 0
        self.error: Optional[BaseException] = None
        self._coordinator = coordinator
        self._config = config
        self._values = values
        self._labels = labels
        self._seed = seed
        self._thread: Optional[threading.Thread] = None

    def run(self) -> None:
        try:
            with obs.span("tuning.retrain"):
                learner = self._coordinator.learner_factory(self._seed)
                objective = VectorizedObjective(
                    self._config, self._values, self._labels
                )
                genome, fitness = learner.search(objective)
                self.tuned_config = genome.apply_to(self._config)
                self.tuned_fitness = float(fitness)
                trace = learner.last_trace
                self.generations = (
                    len(trace.best_fitness) if trace is not None else 0
                )
        except BaseException as error:  # surfaced by poll(), never lost
            self.error = error

    def start_background(self) -> None:
        self._thread = threading.Thread(
            target=self.run, name=f"retrain-{self.unit}", daemon=True
        )
        self._thread.start()

    def done(self) -> bool:
        return self._thread is None or not self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)


class TuningCoordinator:
    """Watches per-unit drift; retunes and hot-swaps thresholds.

    Parameters
    ----------
    labels:
        Ground truth per unit, ``(n_databases, n_ticks)`` boolean arrays
        indexed by absolute tick — the DBA marks of the paper's feedback
        loop, available up front in replay/simulation deployments.
    learner_factory:
        ``seed -> GeneticThresholdLearner`` for each retrain.  The seed
        is derived deterministically from ``(seed, unit, trigger
        ordinal)``.
    min_f_measure:
        Drift criterion: retrain when the sliding window's F-Measure
        falls below this (paper default 0.75).
    window_records:
        Sliding-window length, in judgement records, for drift scoring.
    min_records:
        Don't score (or trigger) before this many records accumulated —
        an all-but-empty window is noise, not drift.
    replay_ticks:
        Raw ticks retained per unit for the retraining objective.
    background:
        ``True`` runs searches on daemon threads and installs results on
        a later :meth:`poll`; ``False`` retrains inline at observation
        time (deterministic swap ticks, what the golden fixture pins).
    seed:
        Base seed for per-trigger seed derivation.
    """

    def __init__(
        self,
        labels: Dict[str, np.ndarray],
        learner_factory: LearnerFactory = _default_learner_factory,
        min_f_measure: float = DEFAULT_MIN_F_MEASURE,
        window_records: int = 64,
        min_records: int = 16,
        replay_ticks: int = 240,
        background: bool = False,
        seed: int = 0,
    ):
        if not 0.0 < min_f_measure <= 1.0:
            raise ValueError("min_f_measure must lie in (0, 1]")
        if window_records < 1:
            raise ValueError("window_records must be >= 1")
        if min_records < 1:
            raise ValueError("min_records must be >= 1")
        if replay_ticks < 1:
            raise ValueError("replay_ticks must be >= 1")
        self.learner_factory = learner_factory
        self.min_f_measure = min_f_measure
        self.window_records = window_records
        self.min_records = min_records
        self.replay_ticks = replay_ticks
        self.background = background
        self.seed = seed
        self.events: List[RetrainEvent] = []
        self._labels = {
            unit: np.asarray(truth, dtype=bool)
            for unit, truth in labels.items()
        }
        self._units: Dict[str, _UnitState] = {}
        #: The bound worker pool (any pool exposing ``install_config``).
        self._pool: Optional[Any] = None
        self._jobs: List[_RetrainJob] = []

    # -- wiring -----------------------------------------------------------

    def bind(self, pool, configs: Dict[str, DBCatcherConfig]) -> None:
        """Attach to a worker pool for the duration of one service run."""
        self._pool = pool
        self._units = {}
        for unit, config in configs.items():
            if unit not in self._labels:
                continue
            self._units[unit] = _UnitState(
                config=config,
                labels=self._labels[unit],
                window=deque(maxlen=self.window_records),
            )

    # -- durable state ----------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Versioned, JSON-friendly durable state (see :mod:`repro.persist`).

        Captures per-unit tuned configs, the marked-record drift windows,
        the replay buffers and the retrain ordinals, plus the completed
        retrain events.  In-flight *background* searches are not
        captured: after a restart the drift trigger simply fires again if
        the decay persists.  Inline mode (``background=False``) never has
        a search open between rounds, so its snapshots are exact.
        """
        from repro.persist import codec

        units: Dict[str, Any] = {}
        for unit, state in self._units.items():
            units[unit] = {
                "config": codec.encode_config(state.config),
                "window": [codec.encode_record(r) for r in state.window],
                "replay": [block.tolist() for block in state.replay],
                "ticks_seen": state.ticks_seen,
                "retrain_count": state.retrain_count,
            }
        return {
            "version": codec.STATE_VERSION,
            "units": units,
            "events": [
                {
                    "unit": event.unit,
                    "trigger_f_measure": event.trigger_f_measure,
                    "tuned_fitness": event.tuned_fitness,
                    "generations": event.generations,
                    "swap_seconds": event.swap_seconds,
                    "swap_tick": event.swap_tick,
                    "alphas": list(event.alphas),
                    "theta": event.theta,
                    "tolerance": event.tolerance,
                }
                for event in self.events
            ],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`to_state` payload.  Call after :meth:`bind`.

        Units absent from the current run's bind are skipped; the pool's
        detectors already carry their tuned configs through their own
        recovered state, so no ``install_config`` round-trip happens
        here.
        """
        from repro.persist import codec

        if state.get("version") != codec.STATE_VERSION:
            raise ValueError(
                f"unsupported coordinator state version {state.get('version')!r}"
            )
        for unit, payload in state["units"].items():
            unit_state = self._units.get(unit)
            if unit_state is None:
                continue
            unit_state.config = codec.decode_config(payload["config"])
            unit_state.window = deque(
                (codec.decode_record(r) for r in payload["window"]),
                maxlen=self.window_records,
            )
            unit_state.replay = deque(
                np.asarray(block, dtype=np.float64)
                for block in payload["replay"]
            )
            unit_state.replay_ticks = sum(
                block.shape[0] for block in unit_state.replay
            )
            unit_state.ticks_seen = int(payload["ticks_seen"])
            unit_state.retrain_count = int(payload["retrain_count"])
        self.events = [
            RetrainEvent(
                unit=str(payload["unit"]),
                trigger_f_measure=float(payload["trigger_f_measure"]),
                tuned_fitness=float(payload["tuned_fitness"]),
                generations=int(payload["generations"]),
                swap_seconds=float(payload["swap_seconds"]),
                swap_tick=int(payload["swap_tick"]),
                alphas=tuple(payload["alphas"]),
                theta=float(payload["theta"]),
                tolerance=int(payload["tolerance"]),
            )
            for payload in state["events"]
        ]

    # -- observation ------------------------------------------------------

    def observe_batch(self, unit: str, block: np.ndarray) -> None:
        """Buffer one dispatched batch (``(n_ticks, n_dbs, n_kpis)``)."""
        state = self._units.get(unit)
        if state is None:
            return
        state.replay.append(block)
        state.replay_ticks += block.shape[0]
        state.ticks_seen += block.shape[0]
        while (
            state.replay_ticks - state.replay[0].shape[0] >= self.replay_ticks
        ):
            dropped = state.replay.popleft()
            state.replay_ticks -= dropped.shape[0]

    def observe_results(
        self, unit: str, results: Sequence[UnitDetectionResult]
    ) -> None:
        """Mark a round's records, update drift, maybe launch a retrain."""
        state = self._units.get(unit)
        if state is None or not results:
            return
        for result in results:
            records = [result.records[db] for db in sorted(result.records)]
            state.window.extend(mark_records(records, state.labels))
        if state.in_flight or len(state.window) < self.min_records:
            return
        f_measure = self._window_f_measure(state)
        if f_measure is None or f_measure >= self.min_f_measure:
            return
        obs.counter("tuning.retrain_triggers").increment()
        self._launch(unit, state, f_measure)

    def poll(self) -> int:
        """Install finished background searches; return swaps performed.

        The scheduler calls this immediately before each pool round-trip,
        which is what makes every swap land *between* rounds.
        """
        installed = 0
        remaining: List[_RetrainJob] = []
        for job in self._jobs:
            if not job.done():
                remaining.append(job)
                continue
            self._install(job)
            installed += 1
        self._jobs = remaining
        return installed

    def drain(self, timeout: Optional[float] = 60.0) -> int:
        """Wait for all in-flight searches and install them (shutdown)."""
        for job in self._jobs:
            job.join(timeout)
        return self.poll()

    # -- internals --------------------------------------------------------

    def _window_f_measure(self, state: _UnitState) -> Optional[float]:
        total = ConfusionCounts()
        for record in state.window:
            tp, fp, tn, fn = record.confusion_cell()
            total = total + ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)
        if total.tp + total.fn == 0 and total.fp == 0:
            # Clean window, clean verdicts: nothing to learn from.
            return None
        return scores_from_confusion(total).f_measure

    def _launch(
        self, unit: str, state: _UnitState, f_measure: float
    ) -> None:
        if not state.replay:
            return
        block = np.concatenate(list(state.replay), axis=0)
        # Batches stack ticks first; the objective wants the datasets
        # layout (n_databases, n_kpis, n_ticks).
        values = np.ascontiguousarray(block.transpose(1, 2, 0))
        if values.shape[2] < state.config.initial_window:
            return
        start = state.ticks_seen - values.shape[2]
        labels = state.labels[:, start : state.ticks_seen]
        seed = (
            self.seed
            + zlib.crc32(unit.encode("utf-8"))
            + 1000 * state.retrain_count
        )
        state.retrain_count += 1
        state.in_flight = True
        job = _RetrainJob(
            self, unit, state.config, values, labels, seed, f_measure
        )
        if self.background:
            job.start_background()
            self._jobs.append(job)
        else:
            job.run()
            self._install(job)

    def _install(self, job: _RetrainJob) -> None:
        state = self._units[job.unit]
        state.in_flight = False
        if job.error is not None or job.tuned_config is None:
            obs.counter("tuning.retrain_failures").increment()
            return
        swap_started = time.perf_counter()
        if self._pool is not None:
            self._pool.install_config(job.unit, job.tuned_config)
        swap_seconds = time.perf_counter() - swap_started
        state.config = job.tuned_config
        # The window scored the old thresholds; judging the new ones by
        # it would re-trigger immediately.
        state.window.clear()
        obs.counter("tuning.swaps").increment()
        obs.histogram("tuning.swap_seconds").observe(swap_seconds)
        obs.gauge("tuning.last_fitness").set(job.tuned_fitness)
        self.events.append(
            RetrainEvent(
                unit=job.unit,
                trigger_f_measure=job.trigger_f_measure,
                tuned_fitness=job.tuned_fitness,
                generations=job.generations,
                swap_seconds=swap_seconds,
                swap_tick=state.ticks_seen,
                alphas=job.tuned_config.alphas,
                theta=job.tuned_config.theta,
                tolerance=job.tuned_config.max_tolerance_deviations,
            )
        )
