"""Configuration of the online detection service.

Everything operational lives here — pool size, batching, queue bounds,
backpressure policy, alert sinks, restart budget — separate from
:class:`~repro.core.config.DBCatcherConfig`, which stays purely about the
detection algorithm.  The split mirrors the paper's architecture: §III
defines the detector, §IV-D4 describes how a fleet of them is driven
online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ServiceConfig", "BACKPRESSURE_POLICIES", "TRANSPORTS"]

#: What the ingestion bridge does when a unit's bounded queue is full.
#: ``block`` makes the producer wait (lossless, propagates pressure to the
#: collector); ``drop_oldest`` evicts the stalest tick (bounded staleness,
#: lossy under sustained overload).
BACKPRESSURE_POLICIES: Tuple[str, ...] = ("block", "drop_oldest")

#: How dispatched KPI blocks reach the worker processes.  ``pickle``
#: ships them inside the worker pipe messages; ``shm`` writes them into
#: per-worker shared-memory ring buffers and ships only slot descriptors
#: (see :mod:`repro.service.transport`).
TRANSPORTS: Tuple[str, ...] = ("pickle", "shm")


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable operational configuration for :class:`DetectionService`.

    Parameters
    ----------
    n_workers:
        Detection worker processes.  ``0`` (default) runs every unit's
        detector serially in-process — no pickling, no IPC — and is the
        reference the parallel path must match bit-for-bit.
    batch_ticks:
        Ticks buffered per unit before a worker round-trip.  Larger
        batches amortize IPC per dispatch; smaller batches lower detection
        latency.  The serial path is insensitive to this knob.
    queue_capacity:
        Bound of each unit's ingest queue, in ticks.
    backpressure:
        ``"block"`` or ``"drop_oldest"`` (see
        :data:`BACKPRESSURE_POLICIES`).
    put_timeout_seconds:
        How long a blocked producer waits before the put fails; ``None``
        waits forever.  Only meaningful under the ``block`` policy.
    max_worker_restarts:
        Crash-restart budget per worker process.  A worker dying beyond
        this budget fails the run instead of looping on a hard crash.
    history_limit:
        Completed rounds each worker-side detector retains; the service
        collects results after every dispatch, so workers only need a
        small tail for debugging.  ``None`` keeps everything (unbounded —
        not what a long-running service wants).
    alert_min_databases:
        Minimum abnormal databases in a round before an alert is emitted;
        1 alerts on every abnormal verdict.
    state_dir:
        Directory for durable state (snapshots + WAL, see
        :mod:`repro.persist`).  When set, the service recovers any state
        found there on startup and resumes mid-stream; ``None`` (default)
        keeps everything in memory.
    snapshot_every:
        Completed detection rounds per unit between atomic snapshots.
        Between snapshots, every completed round is already WAL-durable;
        this knob only bounds how much WAL a restart replays.
    wal_sync:
        WAL fsync discipline: ``"snapshot"`` (default) flushes appends to
        the OS and lets the atomic snapshot be the durability point — a
        process crash loses nothing, only power loss can drop
        post-snapshot rounds, which recovery re-derives live;
        ``"commit"`` fsyncs every group-commit for power-loss durability
        at a serving-latency cost.
    ingest_capacity:
        Bound of the network ingestion queue (``serve --ingest-port``),
        in ticks across the whole fleet.  Separate from
        ``queue_capacity``: the HTTP plane buffers *arrival order*, the
        bridge buffers per unit.
    ingest_max_batch:
        Most ticks one ``POST /v1/ticks`` may carry (413 beyond).
    ingest_retry_after_seconds:
        ``Retry-After`` hint sent with every 429 backpressure response.
    transport:
        How dispatched tick blocks reach the worker processes:
        ``"pickle"`` (default, portable) rides them inside the worker
        pipe messages; ``"shm"`` stages them in per-worker shared-memory
        ring buffers for zero-copy reads (see
        :mod:`repro.service.transport`).  Ignored on the serial path.
    transport_ring_ticks:
        Capacity of each worker's shared-memory ring, in tick slots
        (``shm`` transport only).  A dispatch larger than the ring is
        chunked across several round-trips; a ring that stays full past
        ``put_timeout_seconds``-style limits surfaces as explicit
        backpressure.
    log_ensemble:
        Run the log-frequency channel (:class:`~repro.logs.channel.
        LogChannel`) alongside correlation detection and fuse the two
        verdicts per round (:func:`repro.ensemble.fuse_round`).  The
        channel lives in the scheduler process and only consumes the
        log events the tick source carries, so on a log-free stream the
        run is bit-identical to ``log_ensemble=False`` — fusion can add
        databases to an alert, never remove or change correlation
        verdicts.
    """

    n_workers: int = 0
    batch_ticks: int = 32
    queue_capacity: int = 256
    backpressure: str = "block"
    put_timeout_seconds: Optional[float] = 30.0
    max_worker_restarts: int = 2
    history_limit: Optional[int] = 8
    alert_min_databases: int = 1
    state_dir: Optional[str] = None
    snapshot_every: int = 8
    wal_sync: str = "snapshot"
    ingest_capacity: int = 1024
    ingest_max_batch: int = 256
    ingest_retry_after_seconds: float = 0.05
    transport: str = "pickle"
    transport_ring_ticks: int = 1024
    log_ensemble: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.batch_ticks < 1:
            raise ValueError("batch_ticks must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.queue_capacity < self.batch_ticks:
            raise ValueError(
                "queue_capacity must be >= batch_ticks, otherwise a batch "
                "can never accumulate"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.put_timeout_seconds is not None and self.put_timeout_seconds <= 0:
            raise ValueError("put_timeout_seconds must be positive or None")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.history_limit is not None and self.history_limit < 1:
            raise ValueError("history_limit must be >= 1 or None")
        if self.alert_min_databases < 1:
            raise ValueError("alert_min_databases must be >= 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.wal_sync not in ("commit", "snapshot"):
            raise ValueError(
                f"wal_sync must be 'commit' or 'snapshot', got {self.wal_sync!r}"
            )
        if self.ingest_capacity < 1:
            raise ValueError("ingest_capacity must be >= 1")
        if self.ingest_max_batch < 1:
            raise ValueError("ingest_max_batch must be >= 1")
        if self.ingest_retry_after_seconds <= 0:
            raise ValueError("ingest_retry_after_seconds must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.transport_ring_ticks < 2:
            raise ValueError("transport_ring_ticks must be >= 2")

    @property
    def parallel(self) -> bool:
        """Whether the sharded process pool is in play."""
        return self.n_workers > 0
