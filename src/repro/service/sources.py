"""Tick sources feeding the ingestion bridge.

Two ways monitoring ticks reach the service:

* :class:`ReplaySource` — replays a saved labelled dataset (a ``.npz``
  archive from ``repro simulate`` or an in-memory
  :class:`~repro.datasets.containers.Dataset`) tick by tick, interleaving
  the fleet's units in collection order.  This is the reproducible path
  the parity tests and benches use.
* :class:`MonitorSource` — drives live simulated units through the
  :meth:`~repro.cluster.monitor.BypassMonitor.stream` online collector,
  so ticks are *generated* as the service consumes them, exactly like the
  paper's bypass monitoring pipeline feeding DBCatcher every 5 s.
* :class:`MonitorStreamSource` — adapts one already-built
  :class:`~repro.cluster.monitor.BypassMonitor` (its raw ``stream`` of
  bare KPI matrices) into a single-unit tick source, for callers that
  configured the monitor themselves — custom settings, fault injectors.
* :class:`RetryingSource` — resilience wrapper: rebuilds a failing source
  with exponential backoff and resumes where delivery stopped, so one
  transport hiccup costs a sequence gap instead of the whole run.

All satisfy :class:`~repro.service.protocols.TickSource`: they yield
:class:`TickEvent`\\ s with per-unit monotonically increasing sequence
numbers, which is what the bridge's loss accounting keys on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime: logs are an optional rider
    from repro.logs.events import LogBook, LogEvent

__all__ = [
    "TickEvent",
    "ReplaySource",
    "MonitorSource",
    "MonitorStreamSource",
    "RetryingSource",
]


@dataclass(frozen=True)
class TickEvent:
    """One collected monitoring tick for one unit.

    Parameters
    ----------
    unit:
        Unit name.
    seq:
        Per-unit sequence number (0-based, gapless at the source).
    sample:
        KPI matrix of shape ``(n_databases, n_kpis)``.
    logs:
        Structured log events the unit's databases wrote during this
        tick (empty unless the source carries a logbook).  They ride
        the event for the scheduler-side log channel only — workers
        never see them, so the correlation path is untouched.
    """

    unit: str
    seq: int
    sample: np.ndarray
    logs: Tuple["LogEvent", ...] = ()


class ReplaySource:
    """Replays a saved dataset as an interleaved stream of tick events.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.containers.Dataset` or a path to a
        ``.npz`` archive written by ``repro simulate``.
    max_ticks:
        Optional cap on ticks replayed per unit (``None`` replays all).
    logbook:
        Optional per-unit logbooks (unit name ->
        :data:`~repro.logs.events.LogBook`): each replayed tick then
        carries the log events its databases wrote during that tick,
        for the service's log channel.  Units absent from the mapping
        replay log-silent.
    """

    def __init__(
        self,
        dataset,
        max_ticks: Optional[int] = None,
        logbook: Optional[Mapping[str, "LogBook"]] = None,
    ):
        from repro.datasets import Dataset, load_dataset

        if isinstance(dataset, (str, Path)):
            dataset = load_dataset(dataset)
        if not isinstance(dataset, Dataset):
            raise TypeError(
                f"expected a Dataset or .npz path, got {type(dataset).__name__}"
            )
        if max_ticks is not None and max_ticks < 1:
            raise ValueError("max_ticks must be >= 1 or None")
        if logbook is not None:
            known = {unit.name for unit in dataset.units}
            unknown = sorted(set(logbook) - known)
            if unknown:
                raise ValueError(
                    f"logbook names units not in the dataset: {unknown}"
                )
        self.dataset = dataset
        self.max_ticks = max_ticks
        self.logbook = dict(logbook) if logbook is not None else {}

    @property
    def units(self) -> Dict[str, int]:
        """Unit name -> database count, for sharding and detector setup."""
        return {unit.name: unit.n_databases for unit in self.dataset.units}

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return self.dataset.kpi_names

    @property
    def interval_seconds(self) -> float:
        return self.dataset.units[0].interval_seconds

    def __iter__(self) -> Iterator[TickEvent]:
        units = self.dataset.units
        horizon = max(unit.n_ticks for unit in units)
        if self.max_ticks is not None:
            horizon = min(horizon, self.max_ticks)
        for t in range(horizon):
            for unit in units:
                if t < unit.n_ticks:
                    book = self.logbook.get(unit.name)
                    yield TickEvent(
                        unit=unit.name,
                        seq=t,
                        sample=unit.values[:, :, t],
                        logs=book.get(t, ()) if book else (),
                    )


class MonitorSource:
    """Live simulation feed: units stepped online through bypass monitors.

    Parameters
    ----------
    units:
        Simulated :class:`~repro.cluster.unit.Unit` objects.
    demands:
        Per-unit request-mix sequences (one
        :class:`~repro.cluster.requests.RequestMix` per tick); all units
        run the same horizon, the shortest sequence bounds it.
    settings:
        Shared :class:`~repro.cluster.monitor.MonitorSettings`.
    seed:
        Base seed for the per-unit monitors (unit ``i`` gets ``seed + i``).
    """

    def __init__(
        self,
        units: Sequence,
        demands: Sequence[Sequence],
        settings=None,
        seed: Optional[int] = None,
    ):
        from repro.cluster.monitor import BypassMonitor

        if len(units) != len(demands):
            raise ValueError("need one demand sequence per unit")
        if not units:
            raise ValueError("need at least one unit")
        names = [unit.name for unit in units]
        if len(set(names)) != len(names):
            raise ValueError("unit names must be unique")
        self._units = list(units)
        self._demands = [list(d) for d in demands]
        self._monitors = [
            BypassMonitor(
                unit,
                settings=settings,
                seed=None if seed is None else seed + index,
            )
            for index, unit in enumerate(units)
        ]

    @classmethod
    def simulate(
        cls,
        n_units: int = 4,
        family: str = "tencent",
        n_databases: int = 5,
        n_ticks: int = 600,
        seed: int = 0,
        periodic: bool = False,
        settings=None,
    ) -> "MonitorSource":
        """Build a fleet of healthy simulated units with fresh workloads."""
        from repro.cluster.unit import Unit
        from repro.workloads.sysbench import sysbench_irregular, sysbench_periodic
        from repro.workloads.tencent import TENCENT_SCENARIOS, tencent_workload
        from repro.workloads.tpcc import tpcc_irregular, tpcc_periodic

        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        units, demands = [], []
        for index in range(n_units):
            rng = np.random.default_rng(seed + 1000 * index)
            if family == "tencent":
                names = sorted(TENCENT_SCENARIOS)
                scenario = names[int(rng.integers(0, len(names)))]
                mixes = tencent_workload(
                    n_ticks, scenario=scenario, periodic=periodic, rng=rng
                )
            elif family == "sysbench":
                build = sysbench_periodic if periodic else sysbench_irregular
                mixes = build(n_ticks, rng)
            elif family == "tpcc":
                build = tpcc_periodic if periodic else tpcc_irregular
                mixes = build(n_ticks, rng)
            else:
                raise ValueError(
                    f"unknown workload family {family!r}; "
                    "choose tencent, sysbench or tpcc"
                )
            units.append(
                Unit(f"unit-{index:03d}", n_databases=n_databases, seed=seed + index)
            )
            demands.append(mixes)
        return cls(units, demands, settings=settings, seed=seed)

    @property
    def units(self) -> Dict[str, int]:
        return {unit.name: unit.n_databases for unit in self._units}

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return tuple(self._units[0].kpi_names)

    @property
    def interval_seconds(self) -> float:
        return float(self._monitors[0].settings.interval_seconds)

    def __iter__(self) -> Iterator[TickEvent]:
        streams: List[Iterator[np.ndarray]] = [
            monitor.stream(demand)
            for monitor, demand in zip(self._monitors, self._demands)
        ]
        horizon = min(len(d) for d in self._demands)
        for t in range(horizon):
            for unit, stream in zip(self._units, streams):
                yield TickEvent(unit=unit.name, seq=t, sample=next(stream))


class MonitorStreamSource:
    """Adapt one bypass monitor's raw stream to the tick-source contract.

    :meth:`~repro.cluster.monitor.BypassMonitor.stream` yields bare
    ``(n_databases, n_kpis)`` arrays; this wrapper stamps them with the
    unit name and a gapless sequence number so a hand-configured monitor
    (custom settings, fault injectors) plugs straight into
    :meth:`~repro.service.scheduler.DetectionService.run` like any other
    :class:`~repro.service.protocols.TickSource`.

    Parameters
    ----------
    monitor:
        A ready :class:`~repro.cluster.monitor.BypassMonitor`.
    demands:
        Request mixes to drive the unit with, one per tick.
    injectors:
        Optional fault injectors forwarded to the stream.
    """

    def __init__(self, monitor, demands: Sequence, injectors: Sequence = ()):
        self._monitor = monitor
        self._demands = list(demands)
        self._injectors = tuple(injectors)

    @property
    def units(self) -> Dict[str, int]:
        return {self._monitor.unit.name: self._monitor.unit.n_databases}

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return tuple(self._monitor.unit.kpi_names)

    @property
    def interval_seconds(self) -> float:
        return float(self._monitor.settings.interval_seconds)

    def __iter__(self) -> Iterator[TickEvent]:
        name = self._monitor.unit.name
        stream = self._monitor.stream(self._demands, injectors=self._injectors)
        for seq, sample in enumerate(stream):
            yield TickEvent(unit=name, seq=seq, sample=sample)


class RetryingSource:
    """Retry-with-backoff wrapper around a fallible tick source.

    A real collection pipeline fails in bursts: a connection drops, the
    source raises mid-iteration, and a naive consumer loses the whole run.
    This wrapper rebuilds the source from a factory, waits an
    exponentially growing backoff between attempts, and *resumes*: events
    whose sequence number was already delivered for a unit are skipped, so
    downstream consumers see each ``(unit, seq)`` at most once and a crash
    surfaces as an ordinary sequence gap in the bridge's accounting.

    The retry contract covers the *network path* too: with a factory that
    opens a connection (say, a client iterating a remote ingestion feed),
    the factory call itself is what fails while the far end restarts —
    connection refused, timeouts, 5xx.  Those rebuild failures consume
    the same retry budget with the same backoff as mid-iteration
    failures, instead of propagating instantly and defeating the wrapper
    exactly when it is needed most.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh source (anything with
        ``units`` / ``kpi_names`` / ``interval_seconds`` and iteration
        yielding :class:`TickEvent`).  Called once up front for metadata
        and again after every failure; a *raising* factory is retried
        under the same budget.
    max_retries:
        Failures tolerated over one iteration (and, separately, over
        construction) before the last error propagates.
    backoff_seconds:
        Sleep before retry ``k`` is ``backoff_seconds * 2**(k - 1)``;
        ``0`` disables sleeping (what the tests use).
    """

    def __init__(
        self,
        factory: Callable[[], object],
        max_retries: int = 3,
        backoff_seconds: float = 0.1,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        self._factory = factory
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        #: Retry attempts performed so far (rebuilds and failed factory
        #: calls both count — each consumed budget and backed off).
        self.retries = 0
        _, self._current = self._rebuild(0)

    def _rebuild(self, failures: int) -> Tuple[int, object]:
        """Call the factory until it yields a source or the budget is gone.

        ``failures`` continues the caller's count, so factory failures
        and iteration failures share one budget per iteration.
        """
        while True:
            try:
                return failures, self._factory()
            except Exception:
                failures += 1
                if failures > self.max_retries:
                    raise
                if self.backoff_seconds:
                    time.sleep(self.backoff_seconds * 2 ** (failures - 1))
                self.retries += 1

    @property
    def units(self) -> Dict[str, int]:
        return dict(self._current.units)

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return tuple(self._current.kpi_names)

    @property
    def interval_seconds(self) -> float:
        return float(self._current.interval_seconds)

    def take_actions(self) -> List[tuple]:
        """Forward control-plane actions from the wrapped source, if any."""
        inner = getattr(self._current, "take_actions", None)
        return inner() if inner is not None else []

    def __iter__(self) -> Iterator[TickEvent]:
        delivered: Dict[str, int] = {}
        failures = 0
        source = self._current
        while True:
            try:
                for event in source:
                    if event.seq < delivered.get(event.unit, 0):
                        continue  # already delivered before a retry
                    delivered[event.unit] = event.seq + 1
                    yield event
                return
            except Exception:
                failures += 1
                if failures > self.max_retries:
                    raise
                if self.backoff_seconds:
                    time.sleep(self.backoff_seconds * 2 ** (failures - 1))
                self.retries += 1
                failures, source = self._rebuild(failures)
                self._current = source
