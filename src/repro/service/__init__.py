"""Online multi-unit detection service (the §IV-D4 deployment shape).

The library's :class:`~repro.core.detector.DBCatcher` screens one unit;
this package runs a *fleet* of them online:

* :mod:`~repro.service.sources` — tick sources (dataset replay, live
  simulated bypass monitoring);
* :mod:`~repro.service.queues` — the ingestion bridge: bounded per-unit
  queues with block / drop-oldest backpressure and sequence accounting;
* :mod:`~repro.service.api` — the network ingestion plane: HTTP tick
  ingestion into a bounded :class:`NetworkSource` (429 backpressure),
  plus query endpoints over verdicts, incidents and durable state;
* :mod:`~repro.service.sharding` — consistent-hash shard assignment
  (bounded-load ring; deterministic rebalancing on worker join/leave);
* :mod:`~repro.service.transport` — tick transports behind the
  :class:`TickTransport` protocol (``pickle`` pipes, shared-memory rings);
* :mod:`~repro.service.workers` — the sharded worker pool
  (``multiprocessing`` with crash-restart, serial in-process fallback);
* :mod:`~repro.service.alerts` — the alert pipeline and its sinks;
* :mod:`~repro.service.metrics` — counters / gauges / latency histograms;
* :mod:`~repro.service.scheduler` — :class:`DetectionService`, which
  wires it all together, and :func:`detect_fleet` for offline fan-out.

Quick start::

    from repro.service import DetectionService, ServiceConfig, ReplaySource

    service = DetectionService(
        default_config(),
        service_config=ServiceConfig(n_workers=4),
        sinks=("stdout",),
    )
    report = service.run(ReplaySource("fleet.npz"))
    print(report.alerts_emitted, report.metrics["dispatch_latency_seconds"])
"""

from repro.service.api import (
    ApiClient,
    ApiState,
    Backpressure,
    IngestServer,
    NetworkSource,
    push_dataset,
)
from repro.service.alerts import (
    Alert,
    AlertPipeline,
    AlertSink,
    CallbackSink,
    JSONLSink,
    MemorySink,
    StdoutSink,
    build_sink,
)
from repro.service.config import BACKPRESSURE_POLICIES, TRANSPORTS, ServiceConfig
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.protocols import TickSource, TickTransport
from repro.service.queues import IngestionBridge, QueueClosed, QueueFull, TickQueue
from repro.service.scheduler import DetectionService, ServiceReport, detect_fleet
from repro.service.sharding import RING_SEED, RING_VERSION, HashRing, assign_units
from repro.service.sources import (
    MonitorSource,
    MonitorStreamSource,
    ReplaySource,
    RetryingSource,
    TickEvent,
)
from repro.service.transport import (
    PickleTickTransport,
    ShmTickRing,
    ShmTickTransport,
    make_transport,
)
from repro.service.tuning import RetrainEvent, TuningCoordinator
from repro.service.workers import (
    ProcessWorkerPool,
    SerialWorkerPool,
    UnitSpec,
    WorkerDied,
    make_pool,
)

__all__ = [
    "Alert",
    "AlertPipeline",
    "AlertSink",
    "ApiClient",
    "ApiState",
    "BACKPRESSURE_POLICIES",
    "Backpressure",
    "CallbackSink",
    "Counter",
    "DetectionService",
    "Gauge",
    "HashRing",
    "Histogram",
    "IngestServer",
    "IngestionBridge",
    "JSONLSink",
    "MemorySink",
    "MetricsRegistry",
    "MonitorSource",
    "MonitorStreamSource",
    "NetworkSource",
    "PickleTickTransport",
    "ProcessWorkerPool",
    "QueueClosed",
    "QueueFull",
    "RING_SEED",
    "RING_VERSION",
    "ReplaySource",
    "RetrainEvent",
    "RetryingSource",
    "SerialWorkerPool",
    "ServiceConfig",
    "ServiceReport",
    "ShmTickRing",
    "ShmTickTransport",
    "StdoutSink",
    "TRANSPORTS",
    "TickEvent",
    "TickQueue",
    "TickSource",
    "TickTransport",
    "TuningCoordinator",
    "UnitSpec",
    "WorkerDied",
    "assign_units",
    "build_sink",
    "detect_fleet",
    "make_pool",
    "make_transport",
    "push_dataset",
]
