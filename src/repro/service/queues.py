"""Ingestion bridge: bounded per-unit tick queues with backpressure.

The bypass monitoring pipeline pushes one tick per unit per collection
interval; the detection side consumes them in batches.  Between the two
sits a bounded queue per unit.  When a queue fills the configured
:class:`~repro.service.config.ServiceConfig.backpressure` policy decides
what happens: ``block`` stalls the producer (lossless), ``drop_oldest``
evicts the stalest tick so the queue always holds the freshest window of
traffic (lossy, bounded staleness).  Per-unit sequence tracking makes any
loss visible: every tick carries its source sequence number, and the
bridge records gaps instead of silently compacting them away.  Duplicate
and out-of-order arrivals (seen under degraded transports and exercised
by :mod:`repro.chaos`) are rejected as *stale* and counted, never fed to
a detector twice.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Generic, List, Optional, Sequence, TypeVar

from repro.service.metrics import MetricsRegistry

__all__ = ["QueueClosed", "QueueFull", "TickQueue", "IngestionBridge"]

T = TypeVar("T")


class QueueClosed(RuntimeError):
    """Put after close, or get on a closed-and-drained queue."""


class QueueFull(RuntimeError):
    """Blocking put timed out while the queue stayed full."""


class TickQueue(Generic[T]):
    """Bounded FIFO with a selectable overflow policy.

    Thread-safe; safe for one or many producers and consumers.

    Parameters
    ----------
    capacity:
        Maximum items held.
    policy:
        ``"block"`` — :meth:`put` waits for room (raising
        :class:`QueueFull` on timeout); ``"drop_oldest"`` — :meth:`put`
        always succeeds, evicting the oldest item when full.
    """

    def __init__(self, capacity: int, policy: str = "block"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in ("block", "drop_oldest"):
            raise ValueError(f"unknown backpressure policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Items evicted by the drop_oldest policy so far.
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: T, timeout: Optional[float] = None) -> int:
        """Enqueue one item.

        Returns the number of items evicted to make room (0 or 1; always
        0 under the ``block`` policy).
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy == "drop_oldest":
                    self._items.popleft()
                    self.dropped += 1
                    self._items.append(item)
                    self._not_empty.notify()
                    return 1
                if not self._not_full.wait_for(
                    lambda: self._closed or len(self._items) < self.capacity,
                    timeout=timeout,
                ):
                    raise QueueFull(
                        f"queue stayed full for {timeout:.3g}s "
                        f"(capacity {self.capacity})"
                    )
                if self._closed:
                    raise QueueClosed("queue closed while waiting for room")
            self._items.append(item)
            self._not_empty.notify()
            return 0

    def try_put(self, item: T) -> bool:
        """Enqueue without waiting: ``False`` means full, try again later.

        The network ingestion path uses this instead of a blocking
        :meth:`put` — an HTTP handler must never park a server thread on
        queue room; it answers 429 and lets the *client* wait.  Under the
        ``drop_oldest`` policy this always succeeds (evicting like
        :meth:`put` would).
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy != "drop_oldest":
                    return False
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue one item, waiting up to ``timeout`` seconds."""
        with self._lock:
            if not self._not_empty.wait_for(
                lambda: self._closed or self._items, timeout=timeout
            ):
                raise QueueFull(f"queue stayed empty for {timeout:.3g}s")
            if not self._items:
                raise QueueClosed("queue is closed and drained")
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def drain(self, max_items: Optional[int] = None) -> List[T]:
        """Dequeue up to ``max_items`` immediately available items."""
        with self._lock:
            count = len(self._items) if max_items is None else min(
                max_items, len(self._items)
            )
            taken = [self._items.popleft() for _ in range(count)]
            if taken:
                self._not_full.notify_all()
            return taken

    def close(self) -> None:
        """Reject future puts; wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()


class IngestionBridge:
    """Per-unit bounded queues plus sequence accounting.

    Parameters
    ----------
    unit_names:
        The fleet's unit names; one queue per unit.
    capacity, policy:
        Queue bound and overflow policy, shared by every unit.
    metrics:
        Registry receiving the ``ticks_ingested`` / ``ticks_dropped`` /
        ``ticks_stale`` / ``sequence_gap_ticks`` counters and the
        ``queue_depth`` / ``queue_stale_total`` / ``queue_evictions_total``
        gauges.
    """

    def __init__(
        self,
        unit_names: Sequence[str],
        capacity: int = 256,
        policy: str = "block",
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not unit_names:
            raise ValueError("the bridge needs at least one unit")
        if len(set(unit_names)) != len(unit_names):
            raise ValueError("unit names must be unique")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queues: Dict[str, TickQueue] = {
            name: TickQueue(capacity, policy) for name in unit_names
        }
        #: Guards the sequence bookkeeping (stale / gap / next-seq) so the
        #: accept-or-reject decision is atomic under concurrent producers
        #: and the stale counters never lose updates to interleaving.
        self._seq_lock = threading.Lock()
        #: Next sequence number expected per unit (monotonic source order).
        self._next_seq: Dict[str, int] = {name: 0 for name in unit_names}
        #: Sequence gaps observed per unit (ticks the source never delivered).
        self.sequence_gaps: Dict[str, int] = {name: 0 for name in unit_names}
        #: Stale ticks rejected per unit (duplicates and out-of-order
        #: arrivals whose sequence number the bridge had already passed).
        self.stale_rejected: Dict[str, int] = {name: 0 for name in unit_names}

    @property
    def unit_names(self) -> List[str]:
        return list(self._queues)

    def offer(self, event, timeout: Optional[float] = None) -> int:
        """Enqueue one :class:`~repro.service.sources.TickEvent`.

        Returns the number of ticks evicted by backpressure.  Raises
        ``KeyError`` for unknown units.  A *stale* tick — a duplicate or
        out-of-order arrival whose sequence number the bridge has already
        passed — is rejected rather than enqueued: accepting it would feed
        the unit's detector the same wall-clock instant twice (or in the
        wrong order) and silently skew every window after it.  Rejections
        are counted in :attr:`stale_rejected` and the ``ticks_stale``
        metric, so a degraded transport is visible, not fatal.
        """
        queue = self._queues[event.unit]
        with self._seq_lock:
            expected = self._next_seq[event.unit]
            if event.seq < expected:
                self.stale_rejected[event.unit] += 1
                self.metrics.counter("ticks_stale").increment()
                self.metrics.gauge("queue_stale_total").set(
                    sum(self.stale_rejected.values())
                )
                return 0
            if event.seq > expected:
                gap = event.seq - expected
                self.sequence_gaps[event.unit] += gap
                self.metrics.counter("sequence_gap_ticks").increment(gap)
            self._next_seq[event.unit] = event.seq + 1
        dropped = queue.put(event, timeout=timeout)
        self.metrics.counter("ticks_ingested").increment()
        if dropped:
            self.metrics.counter("ticks_dropped").increment(dropped)
        self.metrics.gauge("queue_depth").set(len(queue))
        if dropped:
            self.metrics.gauge("queue_evictions_total").set(
                self.total_dropped()
            )
        return dropped

    def pending(self, unit: str) -> int:
        return len(self._queues[unit])

    def total_pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def drain(self, unit: str, max_ticks: Optional[int] = None) -> List:
        """Take up to ``max_ticks`` buffered events for one unit."""
        taken = self._queues[unit].drain(max_ticks)
        self.metrics.gauge("queue_depth").set(len(self._queues[unit]))
        return taken

    def dropped(self, unit: str) -> int:
        """Ticks evicted from one unit's queue so far."""
        return self._queues[unit].dropped

    def total_dropped(self) -> int:
        return sum(q.dropped for q in self._queues.values())

    def close(self) -> None:
        for queue in self._queues.values():
            queue.close()
