"""The service-side log channel: ingest events, fuse per-round verdicts.

One :class:`LogChannel` serves a whole fleet.  It lives in the scheduler
process — log events never ride the worker transports, so the KCD
workers (and therefore the correlation verdicts) are untouched whether
the channel runs or not; KCD-only equivalence on log-free streams holds
*by construction*, not by tolerance.

Per unit it keeps a :class:`~repro.logs.templates.TemplateCounter` and a
:class:`~repro.logs.detector.LogFrequencyDetector`; the scheduler feeds
it every tick's events as they are consumed and, after each completed
correlation round, asks it to judge the same ``[start, end)`` span and
fuse the two verdicts (:func:`repro.ensemble.fuse_round`).  When only
the log channel fires, the channel also builds the log-evidence
:class:`~repro.rca.attribution.Attribution` that lets the incident
correlator thread the round into an incident the same way a
decorrelation verdict would.

All channel work is timed on the ``logs.channel_seconds`` histogram —
the in-run overhead the ``benchmarks/test_logs_overhead.py`` gate holds
to the same <=5% budget as persistence and the ingestion API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.detector import UnitDetectionResult
from repro.ensemble import FusedVerdict, fuse_round
from repro.logs.detector import LogFrequencyDetector, LogVerdict
from repro.logs.events import LogEvent
from repro.logs.templates import TemplateCounter
from repro.obs import runtime as obs
from repro.rca.attribution import Attribution

__all__ = ["LogChannel"]


class LogChannel:
    """Fleet-wide log ingestion, template counting and verdict fusion.

    Parameters
    ----------
    units:
        Unit name -> database count, as the tick source exposes it.
    reference_windows:
        Tick length counts are normalized to per unit — the detector's
        ``initial_window`` — either one shared value or a per-unit map.
    threshold_sigma, min_count, warmup_rounds:
        Forwarded to each unit's
        :class:`~repro.logs.detector.LogFrequencyDetector`.
    """

    def __init__(
        self,
        units: Mapping[str, int],
        reference_windows: Union[int, Mapping[str, int]] = 20,
        threshold_sigma: float = 6.0,
        min_count: int = 4,
        warmup_rounds: int = 2,
    ):
        if not units:
            raise ValueError("the channel needs at least one unit")
        self._counters: Dict[str, TemplateCounter] = {}
        self._detectors: Dict[str, LogFrequencyDetector] = {}
        self._next_seq: Dict[str, int] = {}
        for name, n_databases in units.items():
            window = (
                reference_windows
                if isinstance(reference_windows, int)
                else reference_windows[name]
            )
            self._counters[name] = TemplateCounter(n_databases)
            self._detectors[name] = LogFrequencyDetector(
                n_databases,
                reference_window=window,
                threshold_sigma=threshold_sigma,
                min_count=min_count,
                warmup_rounds=warmup_rounds,
            )
            self._next_seq[name] = 0

    @property
    def unit_names(self) -> Tuple[str, ...]:
        return tuple(self._counters)

    def events_counted(self, unit: str) -> int:
        return self._counters[unit].events_counted

    def ingest(self, unit: str, seq: int, events: Iterable[LogEvent]) -> int:
        """Count one tick's events; returns how many were counted.

        Re-deliveries and out-of-order ticks (chaos duplicates, retry
        replays) are dropped by sequence number, so every tick's events
        are counted at most once however the transport misbehaved.
        """
        counter = self._counters.get(unit)
        if counter is None:
            return 0
        if seq < self._next_seq[unit]:
            return 0
        self._next_seq[unit] = seq + 1
        if not events:
            return 0
        with obs.histogram("logs.channel_seconds").time():
            counted = counter.observe(seq, events)
        if counted:
            obs.counter("logs.events_ingested").increment(counted)
        return counted

    def judge(self, unit: str, start: int, end: int) -> LogVerdict:
        """Judge one tick span on log evidence alone."""
        counts = self._counters[unit].window_counts(start, end)
        verdict = self._detectors[unit].judge(start, end, counts)
        self._counters[unit].trim(end)
        return verdict

    def fuse(
        self, unit: str, result: UnitDetectionResult
    ) -> Tuple[FusedVerdict, Optional[Attribution]]:
        """Fuse one completed correlation round with the log verdict.

        Returns the fused verdict plus, when the round is abnormal on
        log evidence *alone*, the log-side attribution that stands in
        for the correlation attribution the round cannot have.
        """
        with obs.histogram("logs.channel_seconds").time():
            verdict = self.judge(unit, result.start, result.end)
            fused = fuse_round(unit, result, verdict)
            attribution: Optional[Attribution] = None
            if verdict.abnormal and not result.abnormal_databases:
                attribution = self._log_attribution(unit, verdict)
        obs.counter("logs.rounds_fused").increment()
        if fused.log_only:
            obs.counter("logs.log_only_rounds").increment()
        return fused, attribution

    @staticmethod
    def _log_attribution(unit: str, verdict: LogVerdict) -> Attribution:
        """Culprit evidence from log bursts, on the attribution schema.

        Database shares come from the per-database burst scores;
        template shares (aggregated across databases, weighted by the
        database's score) stand in for KPI shares under a ``log:``
        prefix so downstream consumers can tell the modalities apart.
        """
        total_score = sum(verdict.scores.values())
        database_scores = tuple(
            sorted(
                (
                    (db, score / total_score)
                    for db, score in verdict.scores.items()
                ),
                key=lambda item: (-item[1], item[0]),
            )
        )
        template_weight: Dict[str, float] = {}
        for db, templates in verdict.culprit_templates.items():
            db_score = verdict.scores[db]
            for template, share in templates:
                key = f"log:{template}"
                template_weight[key] = (
                    template_weight.get(key, 0.0) + share * db_score
                )
        weight_total = sum(template_weight.values())
        kpi_scores = tuple(
            sorted(
                (
                    (template, weight / weight_total)
                    for template, weight in template_weight.items()
                ),
                key=lambda item: (-item[1], item[0]),
            )
        )
        return Attribution(
            unit=unit,
            start=verdict.start,
            end=verdict.end,
            database_scores=database_scores,
            kpi_scores=kpi_scores,
            pair_scores=(),
            strength=verdict.strength,
            abnormal_databases=verdict.abnormal_databases,
        )
