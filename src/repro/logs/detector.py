"""Online log-frequency detection over template count series.

The second modality in the ensemble: where DBCatcher asks *did this
database's KPIs decorrelate from its peers*, the log-frequency detector
asks *did this database's log mix change* — per ``(database, template)``
it keeps running frequency baselines (Welford mean/variance over
completed detection rounds, normalized to a fixed reference window so
flexible-window rounds of different lengths are comparable) and judges a
round abnormal when either

* a **known** template's windowed rate bursts past
  ``mean + threshold_sigma * std`` with at least ``min_count`` raw
  occurrences, or
* a **novel** WARN/ERROR template appears with ``min_count`` or more
  occurrences — a brand-new error shape is a signal in itself (MultiLog's
  unseen-template heuristic), while novel INFO chatter is ignored.

Baselines update *after* judging, from every known cell including its
zeros, so the detector is strictly online: a verdict depends only on
rounds that ended before the judged one.  Everything is integer/float
arithmetic over dictionaries — no RNG, no wall clock — so equal streams
give equal verdicts, which the fused-verdict determinism suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["LogVerdict", "LogFrequencyDetector"]

#: Severities whose *novel* templates fire the unseen-template rule.
_ALARM_LEVELS = ("WARN", "ERROR")

#: Std floor in normalized-rate units: a template seen at a perfectly
#: steady rate must still need a real burst (not one stray line) to
#: fire.  The judging floor is the larger of this and the Poisson noise
#: ``sqrt(mean)`` — counting processes are at least shot-noisy, and a
#: few observed windows systematically underestimate that.
_STD_FLOOR = 0.75

#: Score -> incident-strength mapping: a burst at exactly the default
#: threshold lands near 0.15 (below the HIGH severity knee at 0.25), a
#: 10-sigma burst saturates toward the 0.5 CRITICAL knee.
_STRENGTH_SCALE = 20.0


@dataclass(frozen=True)
class LogVerdict:
    """What the log channel concluded about one detection round.

    Parameters
    ----------
    start, end:
        Absolute tick span ``[start, end)`` of the judged round — the
        same span the paired correlation round covers.
    abnormal_databases:
        Databases whose log mix burst, sorted ascending.
    scores:
        Per flagged database, the maximum burst score in sigma-like
        units (novel templates score ``threshold_sigma * count /
        min_count``).
    culprit_templates:
        Per flagged database, ``(template, share)`` evidence sorted by
        decreasing share; shares sum to 1 per database.
    strength:
        Mean burst score over flagged databases mapped to the incident
        severity scale (see :data:`_STRENGTH_SCALE`), 0 when quiet.
    """

    start: int
    end: int
    abnormal_databases: Tuple[int, ...] = ()
    scores: Mapping[int, float] = field(default_factory=dict)
    culprit_templates: Mapping[int, Tuple[Tuple[str, float], ...]] = field(
        default_factory=dict
    )
    strength: float = 0.0

    @property
    def abnormal(self) -> bool:
        return bool(self.abnormal_databases)


class _CellStats:
    """Welford accumulator for one ``(database, template)`` cell."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.n - 1))


class LogFrequencyDetector:
    """Online burst detection over one unit's template count stream.

    Parameters
    ----------
    n_databases:
        Databases in the unit.
    reference_window:
        Tick length counts are normalized to before judging, usually the
        detector's initial window ``W`` — a 60-tick expanded round and a
        20-tick round then judge comparable rates.
    threshold_sigma:
        Burst threshold for known templates, in std units over the
        normalized rate.
    min_count:
        Raw occurrence floor: a burst (or novel template) below it never
        fires, whatever the z-score says.
    warmup_rounds:
        Rounds that only feed the baselines before judging starts;
        also how much history a cell needs before its z-score counts.
    """

    def __init__(
        self,
        n_databases: int,
        reference_window: int = 20,
        threshold_sigma: float = 6.0,
        min_count: int = 4,
        warmup_rounds: int = 2,
    ):
        if n_databases < 1:
            raise ValueError("n_databases must be >= 1")
        if reference_window < 1:
            raise ValueError("reference_window must be >= 1")
        if threshold_sigma <= 0:
            raise ValueError("threshold_sigma must be positive")
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        if warmup_rounds < 1:
            raise ValueError("warmup_rounds must be >= 1")
        self.n_databases = n_databases
        self.reference_window = reference_window
        self.threshold_sigma = threshold_sigma
        self.min_count = min_count
        self.warmup_rounds = warmup_rounds
        self.rounds_judged = 0
        self._stats: Dict[Tuple[int, str], _CellStats] = {}

    def judge(
        self, start: int, end: int, counts: Mapping[Tuple[int, str], int]
    ) -> LogVerdict:
        """Score one round's summed counts, then absorb them as baseline."""
        if end <= start:
            raise ValueError("round must satisfy start < end")
        scale = self.reference_window / (end - start)
        burst_scores: Dict[int, float] = {}
        burst_templates: Dict[int, Dict[str, float]] = {}
        warm = self.rounds_judged >= self.warmup_rounds
        if warm:
            for (database, template), count in counts.items():
                if count < self.min_count:
                    continue
                rate = count * scale
                stats = self._stats.get((database, template))
                if stats is None or stats.n < self.warmup_rounds:
                    # Novel (or near-novel) template: alarming only at
                    # WARN/ERROR severity.
                    if template.split(":", 1)[0] not in _ALARM_LEVELS:
                        continue
                    score = self.threshold_sigma * count / self.min_count
                else:
                    std = max(
                        stats.std, math.sqrt(max(stats.mean, 0.0)), _STD_FLOOR
                    )
                    score = (rate - stats.mean) / std
                if score < self.threshold_sigma:
                    continue
                burst_scores[database] = max(
                    burst_scores.get(database, 0.0), score
                )
                per_db = burst_templates.setdefault(database, {})
                per_db[template] = per_db.get(template, 0.0) + score
        # Baselines absorb the round after judging: every known cell
        # updates, zeros included, so a template's *absence* is evidence.
        known = set(self._stats)
        for cell in counts:
            if cell not in known:
                self._stats[cell] = _CellStats()
        for cell, stats in self._stats.items():
            stats.update(counts.get(cell, 0) * scale)
        self.rounds_judged += 1

        abnormal = tuple(sorted(burst_scores))
        culprits: Dict[int, Tuple[Tuple[str, float], ...]] = {}
        for database in abnormal:
            total = sum(burst_templates[database].values())
            culprits[database] = tuple(
                sorted(
                    (
                        (template, score / total)
                        for template, score in burst_templates[database].items()
                    ),
                    key=lambda item: (-item[1], item[0]),
                )
            )
        strength = 0.0
        if abnormal:
            mean_score = sum(burst_scores.values()) / len(abnormal)
            strength = min(1.0, mean_score / _STRENGTH_SCALE)
        return LogVerdict(
            start=start,
            end=end,
            abnormal_databases=abnormal,
            scores=burst_scores,
            culprit_templates=culprits,
            strength=strength,
        )
