"""Log-template extraction: raw lines -> stable template keys -> counts.

The detector never looks at raw messages.  Each line is *masked* — the
variable tokens (numbers, durations, hex identifiers, quoted strings,
IPs, paths) replaced with ``<*>`` — and the masked string, prefixed with
the line's severity, becomes the template key.  Keying on the masked
string itself (a Drain-style parse tree collapsed to its leaf) keeps the
mapping deterministic under any arrival order: two runs that see the
same lines in different interleavings still count against identical
keys, which is what the service's serial==pool parity discipline
requires of every component on the verdict path.

:class:`TemplateCounter` accumulates per-tick ``(database, template)``
counts for one unit and sums them over a detection round's tick span
``[start, end)`` — the per-tick, per-database log-template count series
the log-frequency detector scores.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.logs.events import LogEvent

__all__ = ["mask_message", "template_key", "TemplateCounter"]

#: One scanning pass, alternatives in priority order (the regex engine
#: tries them left to right at each position).  Quoted strings and hex
#: ids come first so their numeric innards never match the later digit
#: alternatives; the digit alternatives mirror, in order: dotted numbers
#: (IPs, versions), ``=``/``:``/``/``/``#``-prefixed values, plain
#: numbers, and the digit halves of tokens like ``87s`` or ``txn9138``.
#: A single compiled pass instead of one pass per token class keeps the
#: per-event cost flat — masking runs on the serving path, inside the
#: log channel's <=5% overhead budget.
_MASK: re.Pattern = re.compile(
    r"'[^']*'"
    r"|\"[^\"]*\""
    r"|\b0x[0-9a-fA-F]+\b"
    r"|\b\d+(?:\.\d+)+\b"
    r"|(?<=[=:/#])\d+"
    r"|\b\d+(?:\.\d+)?\b"
    r"|\b\d+(?=[a-zA-Z])"
    r"|(?<=[a-zA-Z])\d+\b"
)


#: Memo of token -> masked token.  Every mask pattern except the quoted
#: strings is confined to a single space-delimited token (a space is a
#: non-word character, so ``\b`` at a token edge behaves exactly as it
#: does mid-string), which lets masking run per token through this
#: cache.  Log vocabulary is small — template words repeat endlessly and
#: variable tokens draw from bounded ranges — so the hit rate approaches
#: one and the cached path is several times cheaper than scanning.  The
#: cache only short-circuits recomputation of a pure function; entries
#: past the cap are simply not stored, so results never depend on cache
#: state.
_TOKEN_CACHE: Dict[str, str] = {}
_TOKEN_CACHE_LIMIT = 1 << 16


def mask_message(message: str) -> str:
    """Collapse a log line's variable tokens to ``<*>`` placeholders.

    >>> mask_message("slow query: 812 ms scanning 53211 rows on t42")
    'slow query: <*> ms scanning <*> rows on t<*>'
    """
    if "'" in message or '"' in message:
        # Quoted strings may span spaces; scan the whole line.
        return _MASK.sub("<*>", message)
    cache = _TOKEN_CACHE
    masked: List[str] = []
    for token in message.split(" "):
        value = cache.get(token)
        if value is None:
            value = "<*>" if token.isdigit() else _MASK.sub("<*>", token)
            if len(cache) < _TOKEN_CACHE_LIMIT:
                cache[token] = value
        masked.append(value)
    return " ".join(masked)


def template_key(event: LogEvent) -> str:
    """The counting key of one event: severity-qualified masked line.

    The severity prefix keeps an ERROR burst distinct from INFO chatter
    that happens to mask to the same shape, and lets the detector apply
    severity-aware rules (a *novel* ERROR template is itself a signal; a
    novel INFO template is not).
    """
    return f"{event.level}:{mask_message(event.message)}"


class TemplateCounter:
    """Per-tick ``(database, template)`` counts for one unit.

    Parameters
    ----------
    n_databases:
        Databases in the unit; events indexing beyond it are rejected.

    The counter is append-only per tick and trimmed from the front as
    detection rounds consume the stream, so memory stays bounded by the
    in-flight window, not the run length.
    """

    def __init__(self, n_databases: int):
        if n_databases < 1:
            raise ValueError("n_databases must be >= 1")
        self.n_databases = n_databases
        self._by_tick: Dict[int, Dict[Tuple[int, str], int]] = {}
        self._templates: Dict[str, None] = {}
        self.events_counted = 0

    @property
    def templates(self) -> Tuple[str, ...]:
        """Every template key seen so far, in first-seen order."""
        return tuple(self._templates)

    def observe(self, tick: int, events: Iterable[LogEvent]) -> int:
        """Count one tick's events; returns how many were counted."""
        # Per-event work rides the scheduler loop, so the body is kept
        # allocation-light: one bucket per call, locals for the hot
        # lookups, and the key built inline (== template_key(event)).
        counted = 0
        n_databases = self.n_databases
        templates = self._templates
        bucket = self._by_tick.setdefault(tick, {})
        mask = mask_message
        for event in events:
            database = event.database
            if not 0 <= database < n_databases:
                raise ValueError(
                    f"event database {database} outside unit of "
                    f"{n_databases} databases"
                )
            key = event.level + ":" + mask(event.message)
            if key not in templates:
                templates[key] = None
            cell = (database, key)
            bucket[cell] = bucket.get(cell, 0) + 1
            counted += 1
        self.events_counted += counted
        return counted

    def window_counts(self, start: int, end: int) -> Dict[Tuple[int, str], int]:
        """Summed ``(database, template) -> count`` over ``[start, end)``."""
        if end <= start:
            raise ValueError("window must satisfy start < end")
        totals: Dict[Tuple[int, str], int] = {}
        for tick in range(start, end):
            bucket = self._by_tick.get(tick)
            if not bucket:
                continue
            for cell, count in bucket.items():
                totals[cell] = totals.get(cell, 0) + count
        return totals

    def count_series(
        self, start: int, end: int
    ) -> Tuple[Tuple[str, ...], List[List[List[int]]]]:
        """Dense per-tick count series over ``[start, end)``.

        Returns ``(templates, counts)`` where ``counts[d][k][t]`` is
        database ``d``'s count of template ``k`` at tick ``start + t`` —
        the log analogue of the unit's ``(D, K, T)`` KPI block, for
        offline analysis and tests.
        """
        templates = self.templates
        index = {key: position for position, key in enumerate(templates)}
        counts = [
            [[0] * (end - start) for _ in templates]
            for _ in range(self.n_databases)
        ]
        for tick in range(start, end):
            bucket = self._by_tick.get(tick)
            if not bucket:
                continue
            for (database, key), count in bucket.items():
                counts[database][index[key]][tick - start] = count
        return templates, counts

    def trim(self, before_tick: int) -> None:
        """Drop per-tick buckets below ``before_tick`` (already consumed)."""
        for tick in [t for t in self._by_tick if t < before_tick]:
            del self._by_tick[tick]
