"""Structured log events: the second observability modality.

MultiLog and LogDB (PAPERS.md) detect and diagnose distributed-database
failures from *log* streams, orthogonal to the KPI-correlation signal
DBCatcher works on.  This module defines the event record that modality
rides on: one :class:`LogEvent` per emitted log line, stamped with the
tick it was collected in and the database that produced it, so the
template counting downstream can build per-tick, per-database count
series aligned with the KPI tick grid.

Events are deliberately tiny and immutable — they ride inside
:class:`~repro.service.sources.TickEvent` through the ingestion path,
survive :func:`dataclasses.replace`-based chaos fault rewrites, and
serialize to plain JSON for sinks and fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["LEVELS", "LogEvent", "LogBook"]

#: Severity levels, in increasing order of alarm.
LEVELS: Tuple[str, ...] = ("INFO", "WARN", "ERROR")


@dataclass(frozen=True)
class LogEvent:
    """One structured log line from one database at one tick.

    Parameters
    ----------
    tick:
        Collection tick the line landed in (the unit's sequence number).
    database:
        Index of the database that emitted the line.
    level:
        Severity: ``"INFO"``, ``"WARN"`` or ``"ERROR"``.
    message:
        The rendered log line, variable parts included — template
        extraction masks them back out downstream.
    """

    tick: int
    database: int
    level: str
    message: str

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {self.level!r}")
        if self.tick < 0:
            raise ValueError("tick must be >= 0")
        if self.database < 0:
            raise ValueError("database must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "tick": self.tick,
            "database": self.database,
            "level": self.level,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LogEvent":
        return cls(
            tick=int(payload["tick"]),  # type: ignore[arg-type]
            database=int(payload["database"]),  # type: ignore[arg-type]
            level=str(payload["level"]),
            message=str(payload["message"]),
        )


#: Per-unit logbook: tick -> the log events collected in that tick.
#: ``Dict[str, LogBook]`` maps a fleet's unit names to their books.
LogBook = Dict[int, Tuple[LogEvent, ...]]
