"""KPI-blind scenario presets: incidents only the log channel can see.

DBCatcher's correlation signal needs the anomaly to *break UKPIC* — the
victim's KPIs must decorrelate from its peers'.  A whole class of real
incidents never does that: an error burst that fails requests without
moving load, replication falling behind while the replica keeps serving
reads at normal rates, a noisy neighbor exhausting a shared connection
pool while every database's own KPIs stay on-profile.  Each preset here
builds exactly that shape: a *healthy* simulated KPI stream (no KPI
injectors at all, so KCD alone is structurally blind), a seeded logbook
carrying the incident's log signature over a known window, and ground
truth labels over that window — the substrate the fusion eval harness
scores KCD-alone against the ensemble on.

Presets are pure functions of their seed: same name + seed -> identical
dataset, logbook, and labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.datasets.containers import Dataset
from repro.logs.emitter import healthy_logbook, merge_logbooks, profile_logbook
from repro.logs.events import LogBook

__all__ = [
    "LOG_SCENARIOS",
    "LogScenario",
    "log_scenario",
]

#: Geometry shared by every preset — small enough for CI smoke, long
#: enough for detector warmup plus a mid-stream incident window.
_N_DATABASES = 5
_N_TICKS = 240

#: Incident log signatures, ``(level, template, per-tick rate)``.
_ERROR_BURST = (
    ("ERROR", "query failed: deadlock detected on t{table}; txn {txn} rolled back", 5.0),
    ("WARN", "lock wait timeout; transaction {txn} waited {secs} s", 2.0),
)
_REPLICATION_LAG = (
    ("ERROR", "replication lag {secs} s behind primary at binlog pos={pos}", 4.0),
    ("WARN", "io thread reconnecting to primary, attempt {attempt}", 1.5),
)
_POOL_EXHAUSTION = (
    ("ERROR", "connection pool exhausted; request {req} queued", 3.0),
    ("WARN", "connection pool saturated: {used}/{cap} connections in use", 4.0),
)


@dataclass(frozen=True)
class LogScenario:
    """One KPI-blind preset, ready to replay through the service.

    Parameters
    ----------
    name, description:
        Preset identity, for CLI listings and reports.
    dataset:
        Healthy-KPI fleet with the incident window labeled as ground
        truth (labels mark what *should* be detected; the KPI values
        carry no trace of it).
    logbooks:
        Per-unit logbooks to attach to the replay source.
    incidents:
        ``(unit, database, start, end)`` ground-truth windows.
    """

    name: str
    description: str
    dataset: Dataset
    logbooks: Dict[str, LogBook]
    incidents: Tuple[Tuple[str, int, int, int], ...]


def _healthy_unit(name: str, seed: int):
    from repro.datasets.builder import build_unit_series

    return build_unit_series(
        profile="tencent",
        n_databases=_N_DATABASES,
        n_ticks=_N_TICKS,
        seed=seed,
        abnormal_ratio=0.0,
        name=name,
    )


def _build(
    name: str,
    description: str,
    seed: int,
    profile,
    victims: Tuple[int, ...],
    start: int,
    end: int,
) -> LogScenario:
    unit = _healthy_unit(f"log-{name}", seed)
    for victim in victims:
        unit.labels[victim, start:end] = True
    books = [healthy_logbook(_N_DATABASES, _N_TICKS, seed=seed)]
    for victim in victims:
        books.append(
            profile_logbook(
                profile, victim, start, end, seed=seed + 17 * (victim + 1)
            )
        )
    return LogScenario(
        name=name,
        description=description,
        dataset=Dataset(name=f"log-{name}", units=(unit,)),
        logbooks={unit.name: merge_logbooks(*books)},
        incidents=tuple(
            (unit.name, victim, start, end) for victim in victims
        ),
    )


def _error_burst(seed: int) -> LogScenario:
    return _build(
        "error-burst",
        "deadlock/error burst failing queries without moving load: "
        "throughput and resource KPIs stay on-profile, only the error "
        "log rate changes",
        seed,
        _ERROR_BURST,
        victims=(2,),
        start=120,
        end=150,
    )


def _replication_lag(seed: int) -> LogScenario:
    return _build(
        "replication-lag",
        "failover aftermath: a replica falls behind the primary while "
        "still serving reads at normal rates, so R-R correlation never "
        "breaks — the replication error stream is the only signal",
        seed,
        _REPLICATION_LAG,
        victims=(3,),
        start=100,
        end=160,
    )


def _noisy_neighbor(seed: int) -> LogScenario:
    return _build(
        "noisy-neighbor",
        "noisy-neighbor pool exhaustion: a co-located tenant drains the "
        "shared connection pool of two databases at once; their own KPIs "
        "stay correlated with the unit, requests queue in the logs",
        seed,
        _POOL_EXHAUSTION,
        victims=(1, 4),
        start=140,
        end=180,
    )


#: Preset registry: name -> seeded builder.
LOG_SCENARIOS: Dict[str, Callable[[int], LogScenario]] = {
    "error-burst": _error_burst,
    "replication-lag": _replication_lag,
    "noisy-neighbor": _noisy_neighbor,
}


def log_scenario(name: str, seed: int = 0) -> LogScenario:
    """Build one preset by name (see :data:`LOG_SCENARIOS`)."""
    try:
        builder = LOG_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown log scenario {name!r}; "
            f"choose from {sorted(LOG_SCENARIOS)}"
        ) from None
    return builder(seed)
