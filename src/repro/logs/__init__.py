"""Log-event channel: the second detection modality.

The packages under :mod:`repro.logs` give the reproduction the log
stream a real cloud-database fleet has alongside its KPIs, and the
machinery to detect from it:

* :mod:`~repro.logs.events` — the :class:`LogEvent` record and per-unit
  :data:`LogBook` shape;
* :mod:`~repro.logs.emitter` — seeded log emission causally tied to the
  anomaly plans of :mod:`repro.anomalies` and the fault schedules of
  :mod:`repro.chaos`;
* :mod:`~repro.logs.templates` — Drain-style template masking and the
  per-tick, per-database template count series;
* :mod:`~repro.logs.detector` — the online log-frequency detector
  (windowed burst + novel-template rules over running baselines);
* :mod:`~repro.logs.scenarios` — KPI-blind presets where correlation
  alone is structurally blind;
* :mod:`~repro.logs.channel` — the service-side :class:`LogChannel`
  that ingests events and fuses per-round verdicts with
  :func:`repro.ensemble.fuse_round`.

Quick start::

    from repro.logs import LogChannel, dataset_logbook, log_scenario
    from repro.service import DetectionService, ReplaySource, ServiceConfig

    scenario = log_scenario("error-burst")
    service = DetectionService(
        default_config(),
        service_config=ServiceConfig(log_ensemble=True),
        sinks=("stdout",),
        rca=True,
    )
    report = service.run(
        ReplaySource(scenario.dataset, logbook=scenario.logbooks)
    )
"""

from repro.logs.channel import LogChannel
from repro.logs.detector import LogFrequencyDetector, LogVerdict
from repro.logs.emitter import (
    ANOMALY_LOG_PROFILES,
    FAULT_LOG_PROFILES,
    dataset_logbook,
    events_logbook,
    fault_logbook,
    healthy_logbook,
    merge_logbooks,
    profile_logbook,
    unit_logbook,
)
from repro.logs.events import LEVELS, LogBook, LogEvent
from repro.logs.scenarios import LOG_SCENARIOS, LogScenario, log_scenario
from repro.logs.templates import TemplateCounter, mask_message, template_key

__all__ = [
    "ANOMALY_LOG_PROFILES",
    "FAULT_LOG_PROFILES",
    "LEVELS",
    "LOG_SCENARIOS",
    "LogBook",
    "LogChannel",
    "LogEvent",
    "LogFrequencyDetector",
    "LogScenario",
    "LogVerdict",
    "TemplateCounter",
    "dataset_logbook",
    "events_logbook",
    "fault_logbook",
    "healthy_logbook",
    "log_scenario",
    "mask_message",
    "merge_logbooks",
    "profile_logbook",
    "template_key",
    "unit_logbook",
]
