"""Seeded log emission, causally tied to the injected incidents.

The simulator's anomaly plan (:mod:`repro.anomalies.catalog`) and the
chaos scenarios (:mod:`repro.chaos`) already say *what went wrong,
where, and when* — each event is ``(kind, victim, [start, end))``.  This
module turns those schedules into the log lines a real database fleet
would have written while the incident unfolded: slow-query entries
during a slow-query incident, lock-wait timeouts while fragmentation
thrashes the buffer pool, connection-pool exhaustion under a
load-balance defect, replication errors around a stall or failover.

Every emission is seeded — ``default_rng([seed, database])`` per
database, the same spawn-key discipline the chaos injectors use — so a
logbook is a pure function of ``(schedule, seed)`` and replays
bit-identically, which the fused-verdict determinism tests rely on.

Healthy databases are not silent: a low-rate background of INFO chatter
(checkpoints, connection churn, log rotation) runs under everything, so
template extraction and the detector's baselines are exercised on
anomaly-free streams too.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.logs.events import LogBook, LogEvent

__all__ = [
    "ANOMALY_LOG_PROFILES",
    "FAULT_LOG_PROFILES",
    "healthy_logbook",
    "profile_logbook",
    "events_logbook",
    "unit_logbook",
    "dataset_logbook",
    "fault_logbook",
    "merge_logbooks",
]

#: Background chatter every healthy database emits, ``(level, template,
#: per-tick rate)``.  Templates carry ``{...}`` slots filled from the
#: seeded rng so masking has real variable parts to collapse.
_HEALTHY_PROFILE: Tuple[Tuple[str, str, float], ...] = (
    ("INFO", "checkpoint complete in {ms} ms, {pages} pages flushed", 0.25),
    ("INFO", "connection from 10.0.{octet}.{host} established", 0.4),
    ("INFO", "slow log rotated to binlog.{index}", 0.08),
)

#: Incident log profiles keyed by anomaly kind (``repro.anomalies``).
#: Each entry is ``(level, template, per-tick rate while active)``.
ANOMALY_LOG_PROFILES: Dict[str, Tuple[Tuple[str, str, float], ...]] = {
    "slow_query": (
        ("WARN", "slow query: {ms} ms scanning {rows} rows on t{table}", 4.0),
        ("ERROR", "query exceeded execution budget after {ms} ms", 0.8),
    ),
    "fragmentation": (
        ("WARN", "lock wait timeout; transaction {txn} waited {secs} s", 3.0),
        ("ERROR", "deadlock found when trying to get lock; txn {txn} rolled back", 0.6),
    ),
    "lb_defect": (
        ("WARN", "connection pool saturated: {used}/{cap} connections in use", 3.0),
        ("ERROR", "connection pool exhausted; request {req} queued", 1.0),
    ),
    "stall": (
        ("ERROR", "replication lag {secs} s behind primary at binlog pos={pos}", 3.0),
        ("WARN", "io thread reconnecting to primary, attempt {attempt}", 1.0),
    ),
    "spike": (
        ("WARN", "request queue depth {depth} exceeds soft limit", 2.0),
    ),
    "level_shift": (
        ("WARN", "sustained load shift: qps {qps} for {secs} s", 1.5),
    ),
    "concept_drift": (
        ("WARN", "workload drift: plan cache invalidated for {n} statements", 1.5),
    ),
}

#: Infrastructure log profiles keyed by chaos fault kind
#: (``repro.chaos.faults``).  Collector-side faults log from every
#: database the fault touches; membership churn logs replication errors.
FAULT_LOG_PROFILES: Dict[str, Tuple[Tuple[str, str, float], ...]] = {
    "membership": (
        ("ERROR", "replica failover: primary election started, term {term}", 2.0),
        ("WARN", "topology change: peer {peer} left the replica set", 0.8),
    ),
    "worker_kill": (
        ("ERROR", "connection to monitoring agent lost: errno={errno}", 2.0),
    ),
    "dropout": (
        ("WARN", "metrics collector timeout after {ms} ms", 1.5),
    ),
    "blackout": (
        ("ERROR", "metrics collector unreachable for {secs} s", 1.5),
    ),
    "clock_skew": (
        ("WARN", "collector clock skew detected: {ms} ms drift", 1.0),
    ),
}


def _render(template: str, rng: np.random.Generator) -> str:
    """Fill a profile template's ``{...}`` slots with seeded values."""
    values = {
        "ms": int(rng.integers(40, 20000)),
        "pages": int(rng.integers(100, 5000)),
        "octet": int(rng.integers(0, 256)),
        "host": int(rng.integers(1, 255)),
        "index": int(rng.integers(1, 10000)),
        "rows": int(rng.integers(10000, 5000000)),
        "table": int(rng.integers(1, 64)),
        "txn": int(rng.integers(10**6, 10**9)),
        "secs": int(rng.integers(1, 600)),
        "used": int(rng.integers(180, 256)),
        "cap": 256,
        "req": int(rng.integers(10**3, 10**6)),
        "pos": int(rng.integers(10**6, 10**9)),
        "attempt": int(rng.integers(1, 40)),
        "depth": int(rng.integers(200, 4000)),
        "qps": int(rng.integers(1000, 90000)),
        "n": int(rng.integers(10, 2000)),
        "term": int(rng.integers(1, 100)),
        "peer": int(rng.integers(0, 16)),
        "errno": int(rng.integers(1, 120)),
    }
    return template.format(**values)


def _emit_profile(
    book: Dict[int, List[LogEvent]],
    profile: Sequence[Tuple[str, str, float]],
    database: int,
    start: int,
    end: int,
    rng: np.random.Generator,
    rate_scale: float = 1.0,
) -> None:
    for tick in range(start, end):
        for level, template, rate in profile:
            for _ in range(int(rng.poisson(rate * rate_scale))):
                book.setdefault(tick, []).append(
                    LogEvent(
                        tick=tick,
                        database=database,
                        level=level,
                        message=_render(template, rng),
                    )
                )


def _freeze(book: Dict[int, List[LogEvent]]) -> LogBook:
    return {tick: tuple(events) for tick, events in sorted(book.items())}


def healthy_logbook(
    n_databases: int, n_ticks: int, seed: int = 0, rate_scale: float = 1.0
) -> LogBook:
    """Background INFO chatter for every database of a healthy unit."""
    book: Dict[int, List[LogEvent]] = {}
    for database in range(n_databases):
        rng = np.random.default_rng([seed, database])
        _emit_profile(
            book, _HEALTHY_PROFILE, database, 0, n_ticks, rng, rate_scale
        )
    return _freeze(book)


def profile_logbook(
    profile: Sequence[Tuple[str, str, float]],
    database: int,
    start: int,
    end: int,
    seed: int = 0,
    rate_scale: float = 1.0,
) -> LogBook:
    """Emit one ``(level, template, rate)`` profile for one database.

    The building block the scenario presets compose: a seeded stream of
    one incident's log shape over ``[start, end)``.
    """
    book: Dict[int, List[LogEvent]] = {}
    rng = np.random.default_rng([seed, database])
    _emit_profile(book, profile, database, start, end, rng, rate_scale)
    return _freeze(book)


def events_logbook(
    events: Iterable[Tuple[str, int, int, int]],
    n_ticks: int,
    seed: int = 0,
) -> LogBook:
    """Incident logs for a ``(kind, victim, start, end)`` schedule.

    Unknown kinds are skipped silently so the emitter stays forward
    compatible with anomaly catalog growth; the schedule shape matches
    both :attr:`AnomalyPlan.events` (with ``interval`` flattened) and the
    ``events`` entry :func:`build_unit_series` stores in unit metadata.
    """
    book: Dict[int, List[LogEvent]] = {}
    for index, (kind, victim, start, end) in enumerate(events):
        profile = ANOMALY_LOG_PROFILES.get(kind)
        if profile is None:
            continue
        rng = np.random.default_rng([seed, 7001 + index, victim])
        _emit_profile(book, profile, victim, start, min(end, n_ticks), rng)
    return _freeze(book)


def unit_logbook(unit, seed: Optional[int] = None) -> LogBook:
    """Healthy chatter + incident logs for one built unit series.

    Reads the anomaly schedule ``build_unit_series`` recorded in the
    unit's metadata, so the emitted logs are causally tied to exactly the
    incidents that shaped the unit's KPI series and labels.
    """
    events = [
        (str(kind), int(victim), int(start), int(end))
        for kind, victim, start, end in unit.metadata.get("events", [])
    ]
    base = seed if seed is not None else unit.metadata.get("seed") or 0
    return merge_logbooks(
        healthy_logbook(unit.n_databases, unit.n_ticks, seed=int(base)),
        events_logbook(events, unit.n_ticks, seed=int(base)),
    )


def dataset_logbook(dataset, seed: Optional[int] = None) -> Dict[str, LogBook]:
    """Per-unit logbooks for a whole dataset, keyed by unit name."""
    return {
        unit.name: unit_logbook(unit, seed=seed) for unit in dataset.units
    }


def fault_logbook(
    faults: Sequence,
    units: Dict[str, int],
    n_ticks: int,
    seed: int = 0,
) -> Dict[str, LogBook]:
    """Infrastructure logs for a chaos fault schedule, per unit.

    Mirrors :class:`~repro.chaos.source.ChaosSource` seeding — injector
    ``i`` draws from ``default_rng([seed, i])`` — and reads each fault's
    declarative ``kind`` / ``start`` / ``end`` / ``units`` fields, so the
    logbook lines up with the windows the faults actually arm in.
    Fault kinds without a log profile (pure transport rewrites like
    duplicates or reordering) stay silent, as they would in production.
    """
    books: Dict[str, Dict[int, List[LogEvent]]] = {name: {} for name in units}
    for index, fault in enumerate(faults):
        profile = FAULT_LOG_PROFILES.get(getattr(fault, "kind", ""))
        if profile is None:
            continue
        start = int(getattr(fault, "start", 0))
        end = getattr(fault, "end", None)
        end = n_ticks if end is None else min(int(end), n_ticks)
        targets = getattr(fault, "units", None)
        for name in units if targets is None else targets:
            if name not in books:
                continue
            rng = np.random.default_rng([seed, index])
            for database in range(units[name]):
                _emit_profile(
                    books[name], profile, database, start, end, rng,
                    rate_scale=1.0 / max(1, units[name]),
                )
    return {name: _freeze(book) for name, book in books.items()}


def merge_logbooks(*books: LogBook) -> LogBook:
    """Merge logbooks tick-wise, preserving each book's internal order."""
    merged: Dict[int, List[LogEvent]] = {}
    for book in books:
        for tick, events in book.items():
            merged.setdefault(tick, []).extend(events)
    return _freeze(merged)
