"""Chaos scenarios: named fault schedules, loadable from JSON files.

A scenario is an ordered list of fault specs plus a seed.  The JSON shape
mirrors the injector dataclasses one-to-one::

    {
      "name": "blackout-then-failover",
      "seed": 7,
      "faults": [
        {"type": "blackout", "start": 60, "end": 90, "units": ["unit-000"]},
        {"type": "membership", "start": 120, "end": 200, "databases": [2]}
      ]
    }

``PRESETS`` ships one ready-made scenario per fault family so ``repro
chaos --scenario <name>`` and the smoke tests need no files on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Type, Union

from repro.chaos.faults import (
    Blackout,
    ClockSkew,
    DropoutBurst,
    DuplicateTicks,
    FaultInjector,
    GaugeNoise,
    MembershipChange,
    NaNGauge,
    OutOfOrderTicks,
    StuckGauge,
    WorkerKill,
)

__all__ = [
    "FAULT_TYPES",
    "ChaosScenario",
    "fault_from_dict",
    "scenario_from_dict",
    "load_scenario",
    "PRESETS",
    "preset_scenario",
]

#: Scenario-file ``type`` tag -> injector class.
FAULT_TYPES: Dict[str, Type[FaultInjector]] = {
    cls.kind: cls
    for cls in (
        DropoutBurst,
        Blackout,
        NaNGauge,
        StuckGauge,
        GaugeNoise,
        DuplicateTicks,
        OutOfOrderTicks,
        ClockSkew,
        MembershipChange,
        WorkerKill,
    )
}

#: JSON list fields coerced to the tuples the dataclasses expect.
_TUPLE_FIELDS = ("units", "databases", "kpis")


@dataclass(frozen=True)
class ChaosScenario:
    """One named, seeded fault schedule."""

    name: str
    faults: Tuple[FaultInjector, ...]
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(fault, FaultInjector):
                raise TypeError(f"not a fault injector: {fault!r}")

    @property
    def fault_kinds(self) -> Tuple[str, ...]:
        return tuple(fault.kind for fault in self.faults)


def fault_from_dict(spec: Dict[str, object]) -> FaultInjector:
    """Build one injector from its scenario-file dict."""
    payload = dict(spec)
    try:
        kind = payload.pop("type")
    except KeyError:
        raise ValueError(f"fault spec needs a 'type' field: {spec!r}") from None
    try:
        cls = FAULT_TYPES[kind]
    except KeyError:
        known = ", ".join(sorted(FAULT_TYPES))
        raise ValueError(f"unknown fault type {kind!r} (known: {known})") from None
    for name in _TUPLE_FIELDS:
        if payload.get(name) is not None:
            payload[name] = tuple(payload[name])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ValueError(f"bad fields for fault {kind!r}: {exc}") from None


def scenario_from_dict(spec: Dict[str, object]) -> ChaosScenario:
    """Build a scenario from its JSON object form."""
    faults = spec.get("faults")
    if not isinstance(faults, (list, tuple)) or not faults:
        raise ValueError("scenario needs a non-empty 'faults' list")
    return ChaosScenario(
        name=str(spec.get("name", "scenario")),
        faults=tuple(fault_from_dict(f) for f in faults),
        seed=int(spec.get("seed", 0)),
        description=str(spec.get("description", "")),
    )


def load_scenario(path: Union[str, Path]) -> ChaosScenario:
    """Load a scenario from a JSON file written in the shape above."""
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ValueError(f"{path}: scenario file must hold a JSON object")
    return scenario_from_dict(spec)


def _presets() -> Dict[str, ChaosScenario]:
    """One representative scenario per fault family, bench-scale windows."""
    presets = {
        "dropout-burst": ChaosScenario(
            "dropout-burst",
            (DropoutBurst(start=40, end=120, probability=0.5),),
            description="half the ticks lost for 80 ticks, all units",
        ),
        "blackout": ChaosScenario(
            "blackout",
            (Blackout(start=60, end=100),),
            description="total monitor blackout for 40 ticks",
        ),
        "nan-gauges": ChaosScenario(
            "nan-gauges",
            (NaNGauge(start=50, end=110, databases=(1,), probability=0.8),),
            description="database 1's gauges report NaN for 60 ticks",
        ),
        "stuck-gauge": ChaosScenario(
            "stuck-gauge",
            (StuckGauge(start=50, end=130, databases=(0,)),),
            description="database 0 frozen at its last value for 80 ticks",
        ),
        "gauge-noise": ChaosScenario(
            "gauge-noise",
            (GaugeNoise(start=50, end=130, databases=(1,), rel_std=0.4),),
            description="database 1's gauges jitter ±40% for 80 ticks",
        ),
        "duplicates": ChaosScenario(
            "duplicates",
            (DuplicateTicks(probability=0.2),),
            description="transport re-delivers ~20% of ticks",
        ),
        "reorder": ChaosScenario(
            "reorder",
            (OutOfOrderTicks(probability=0.15),),
            description="~15% of ticks arrive swapped with their successor",
        ),
        "clock-skew": ChaosScenario(
            "clock-skew",
            (ClockSkew(skew_ticks=2, databases=(2,)),),
            description="database 2 lags its peers by 2 ticks throughout",
        ),
        "failover": ChaosScenario(
            "failover",
            (MembershipChange(start=60, end=140, databases=(1,)),),
            description="database 1 leaves the unit for 80 ticks, rejoins",
        ),
        "worker-kill": ChaosScenario(
            "worker-kill",
            (WorkerKill(at_tick=64),),
            description="kill drill against every unit's worker at tick 64",
        ),
        "kitchen-sink": ChaosScenario(
            "kitchen-sink",
            (
                DropoutBurst(start=30, end=70, probability=0.3),
                NaNGauge(start=80, end=120, databases=(1,), probability=0.7),
                StuckGauge(start=130, end=170, databases=(0,)),
                DuplicateTicks(probability=0.1),
                OutOfOrderTicks(probability=0.1),
                ClockSkew(skew_ticks=2, databases=(2,), start=100),
                MembershipChange(start=180, end=240, databases=(3,)),
            ),
            description="every telemetry fault family at once",
        ),
    }
    return presets


#: Ready-made scenarios, keyed by name.
PRESETS: Dict[str, ChaosScenario] = _presets()


def preset_scenario(name: str) -> ChaosScenario:
    """Look up a preset scenario, with a helpful error on typos."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
