"""Run a chaos scenario end to end and measure the detection-quality delta.

The runner drives the full service twice over the same fleet — once clean,
once through a :class:`~repro.chaos.source.ChaosSource` carrying the
scenario's faults — and folds both runs into a
:class:`~repro.chaos.report.ChaosReport`.  Sources are built fresh per run
from a dataset (or a caller-supplied factory), because live sources such
as :class:`~repro.service.sources.MonitorSource` step stateful simulators
and cannot be iterated twice.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Optional, Sequence

from repro.chaos.report import ChaosReport, compare_runs
from repro.chaos.scenario import ChaosScenario
from repro.chaos.source import ChaosSource
from repro.core.config import DBCatcherConfig
from repro.obs import runtime as obs
from repro.service.config import ServiceConfig
from repro.service.scheduler import DetectionService, ServiceReport

__all__ = ["run_scenario"]


def run_scenario(
    dataset=None,
    scenario: Optional[ChaosScenario] = None,
    config: Optional[DBCatcherConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    source_factory: Optional[Callable[[], object]] = None,
    max_ticks: Optional[int] = None,
) -> ChaosReport:
    """Replay a fault scenario and report detection-quality deltas.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.containers.Dataset` or ``.npz`` path,
        replayed through :class:`~repro.service.sources.ReplaySource`.
        Ignored when ``source_factory`` is given.
    scenario:
        The fault schedule to inject (required).
    config:
        Detector configuration; the cluster preset when omitted.
    service_config:
        Operational knobs; the serial in-process profile when omitted.
        Kill drills only fell real processes when ``n_workers > 0``.
    source_factory:
        Zero-argument callable building a fresh source per run — use this
        to chaos-test live :class:`~repro.service.sources.MonitorSource`
        fleets, which cannot be re-iterated.
    max_ticks:
        Optional per-unit tick cap forwarded to both runs.
    """
    if scenario is None:
        raise ValueError("run_scenario needs a ChaosScenario")
    if source_factory is None:
        if dataset is None:
            raise ValueError("run_scenario needs a dataset or a source_factory")
        from repro.service.sources import ReplaySource

        def source_factory() -> object:
            return ReplaySource(dataset)

    if config is None:
        from repro.presets import default_config

        config = default_config()
    base = service_config if service_config is not None else ServiceConfig()

    clean = _run(config, base, source_factory(), max_ticks)
    # Fault activations land on the ambient obs registry.  When the caller
    # already enabled one, read before/after deltas from it; otherwise
    # enable a private scoped registry just for the chaos run.
    scope: contextlib.AbstractContextManager = (
        contextlib.nullcontext() if obs.is_enabled() else obs.scoped()
    )
    before = _activation_counts(scenario.fault_kinds)
    with scope:
        chaos = _run(
            config,
            base,
            ChaosSource(source_factory(), scenario.faults, seed=scenario.seed),
            max_ticks,
        )
        after = _activation_counts(scenario.fault_kinds)
    report = compare_runs(scenario.name, scenario.fault_kinds, clean, chaos)
    report.fault_activations = {
        kind: after.get(kind, 0) - before.get(kind, 0)
        for kind in scenario.fault_kinds
    }
    return report


def _activation_counts(kinds: Sequence[str]) -> Dict[str, int]:
    """Current ``chaos.activations.<kind>`` counter values (ambient)."""
    if not obs.is_enabled():
        return {}
    registry = obs.get_registry()
    return {
        kind: registry.counter(f"chaos.activations.{kind}").value
        for kind in kinds
    }


def _run(
    config: DBCatcherConfig,
    service_config: ServiceConfig,
    source,
    max_ticks: Optional[int],
) -> ServiceReport:
    service = DetectionService(config, service_config=service_config, sinks=("null",))
    return service.run(source, max_ticks=max_ticks)
