"""ChaosSource: fault-injecting wrapper around any tick source.

Sits between a :mod:`repro.service.sources` source and the detection
service, chaining the scenario's fault injectors over the event stream.
With no injectors the wrapper is a pure passthrough — verdicts are
bit-identical to running the service on the bare source, which the parity
tests pin down.  Every injector gets its own RNG deterministically derived
from ``(seed, injector index)``, so a scenario replays identically run
after run regardless of how faults interleave.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.chaos.faults import FaultInjector
from repro.service.sources import TickEvent

__all__ = ["ChaosSource"]


class ChaosSource:
    """Wrap a tick source with an ordered chain of fault injectors.

    Parameters
    ----------
    source:
        Anything the service accepts: exposes ``units``, ``kpi_names``,
        ``interval_seconds`` and yields
        :class:`~repro.service.sources.TickEvent` on iteration.
    faults:
        Injectors applied in order (earlier injectors feed later ones).
    seed:
        Scenario seed; injector ``i`` draws from
        ``np.random.default_rng([seed, i])``.
    """

    def __init__(
        self,
        source,
        faults: Sequence[FaultInjector] = (),
        seed: int = 0,
    ):
        self._source = source
        self.faults: Tuple[FaultInjector, ...] = tuple(faults)
        self.seed = int(seed)
        self._actions: List[tuple] = []

    @property
    def units(self) -> Dict[str, int]:
        return dict(self._source.units)

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return tuple(self._source.kpi_names)

    @property
    def interval_seconds(self) -> float:
        return float(self._source.interval_seconds)

    def take_actions(self) -> List[tuple]:
        """Drain pending control-plane actions (kill drills and friends).

        The scheduler polls this between ticks; injectors append to the
        shared outbox from inside their generators.
        """
        if not self._actions:
            return []
        drained = self._actions[:]
        self._actions.clear()
        return drained

    def __iter__(self) -> Iterator[TickEvent]:
        events: Iterator[TickEvent] = iter(self._source)
        for index, fault in enumerate(self.faults):
            rng = np.random.default_rng([self.seed, index])
            events = fault.wrap(events, rng, self._actions)
        return events
