"""ChaosReport: measured (not asserted) robustness of a chaos run.

Detection quality under fault injection is compared against the clean run
of the same fleet: the report lists abnormal verdicts the chaos run
*missed* and the *spurious* ones it invented, plus the transport-level
damage tally (dropped / stale / lost ticks, sequence gaps, restarts).
Because dropped ticks shift every later window boundary, verdicts are
matched by *overlap* per ``(unit, database)`` rather than by identical
window coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.levels import LEVEL_CORRELATED, LEVEL_EXTREME_DEVIATION
from repro.core.records import DatabaseState
from repro.eval.tables import render_table
from repro.service.scheduler import ServiceReport

__all__ = ["VerdictDiff", "ChaosReport", "compare_runs"]

#: An abnormal verdict as ``(unit, database, window_start, window_end)``.
Verdict = Tuple[str, int, int, int]


@dataclass(frozen=True)
class VerdictDiff:
    """Abnormal-verdict agreement between the clean and chaos runs."""

    clean_abnormal: int
    chaos_abnormal: int
    missed: Tuple[Verdict, ...]
    spurious: Tuple[Verdict, ...]

    @property
    def quality_delta(self) -> int:
        """Total disagreement: missed plus spurious abnormal verdicts."""
        return len(self.missed) + len(self.spurious)


@dataclass
class ChaosReport:
    """Everything one fault scenario did to the detection service."""

    scenario: str
    fault_kinds: Tuple[str, ...]
    diff: VerdictDiff
    clean_rounds: int = 0
    chaos_rounds: int = 0
    #: Records whose state or levels left the valid domain (must stay 0 —
    #: degraded telemetry may cost verdicts, never corrupt them).
    invalid_verdicts: int = 0
    ticks_ingested: int = 0
    ticks_dropped: int = 0
    ticks_stale: int = 0
    ticks_lost: int = 0
    sequence_gaps: int = 0
    worker_restarts: int = 0
    kill_drills: int = 0
    elapsed_seconds: float = 0.0
    #: Fault activations observed during the chaos run, keyed by fault
    #: kind (from the ambient ``chaos.activations.<kind>`` counters).
    fault_activations: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """No crash made it here, and no verdict left the valid domain."""
        return self.invalid_verdicts == 0

    def render(self) -> str:
        """ASCII summary in the house table style."""
        rows = [
            ["rounds (clean / chaos)", f"{self.clean_rounds} / {self.chaos_rounds}"],
            [
                "abnormal verdicts (clean / chaos)",
                f"{self.diff.clean_abnormal} / {self.diff.chaos_abnormal}",
            ],
            ["missed abnormal verdicts", str(len(self.diff.missed))],
            ["spurious abnormal verdicts", str(len(self.diff.spurious))],
            ["invalid verdicts", str(self.invalid_verdicts)],
            ["ticks ingested", str(self.ticks_ingested)],
            ["ticks dropped (backpressure)", str(self.ticks_dropped)],
            ["ticks rejected stale", str(self.ticks_stale)],
            ["ticks lost to crashes", str(self.ticks_lost)],
            ["sequence gaps", str(self.sequence_gaps)],
            [
                "worker restarts / kill drills",
                f"{self.worker_restarts} / {self.kill_drills}",
            ],
        ]
        if self.fault_activations:
            fired = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.fault_activations.items())
            )
            rows.append(["fault activations", fired])
        title = f"Chaos report — {self.scenario} [{', '.join(self.fault_kinds)}]"
        out = render_table(["Measure", "Value"], rows, title=title)
        if self.notes:
            out += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return out


def _abnormal_verdicts(report: ServiceReport) -> List[Verdict]:
    verdicts: List[Verdict] = []
    for unit in sorted(report.results):
        for record in report.records_for(unit):
            if record.predicted_abnormal:
                verdicts.append(
                    (unit, record.database, record.window_start, record.window_end)
                )
    return verdicts


def _count_invalid(report: ServiceReport) -> int:
    """Verdicts outside the valid domain (non-final state, broken levels)."""
    invalid = 0
    for unit in report.results:
        for record in report.records_for(unit):
            ok = record.state in (DatabaseState.HEALTHY, DatabaseState.ABNORMAL)
            ok = ok and all(
                LEVEL_EXTREME_DEVIATION <= level <= LEVEL_CORRELATED
                and level == int(level)
                for level in record.kpi_levels.values()
            )
            if not ok:
                invalid += 1
    return invalid


def _overlaps(a: Verdict, b: Verdict) -> bool:
    """Same unit and database, and the windows intersect."""
    return a[0] == b[0] and a[1] == b[1] and a[2] < b[3] and b[2] < a[3]


def diff_verdicts(clean: ServiceReport, chaos: ServiceReport) -> VerdictDiff:
    """Overlap-match abnormal verdicts between the two runs."""
    clean_abnormal = _abnormal_verdicts(clean)
    chaos_abnormal = _abnormal_verdicts(chaos)
    missed = tuple(
        v for v in clean_abnormal
        if not any(_overlaps(v, w) for w in chaos_abnormal)
    )
    spurious = tuple(
        w for w in chaos_abnormal
        if not any(_overlaps(w, v) for v in clean_abnormal)
    )
    return VerdictDiff(
        clean_abnormal=len(clean_abnormal),
        chaos_abnormal=len(chaos_abnormal),
        missed=missed,
        spurious=spurious,
    )


def compare_runs(
    scenario_name: str,
    fault_kinds: Tuple[str, ...],
    clean: ServiceReport,
    chaos: ServiceReport,
) -> ChaosReport:
    """Build the report from a clean run and its fault-injected twin."""
    return ChaosReport(
        scenario=scenario_name,
        fault_kinds=fault_kinds,
        diff=diff_verdicts(clean, chaos),
        clean_rounds=clean.total_rounds,
        chaos_rounds=chaos.total_rounds,
        invalid_verdicts=_count_invalid(chaos),
        ticks_ingested=chaos.ticks_ingested,
        ticks_dropped=chaos.ticks_dropped,
        ticks_stale=chaos.ticks_stale,
        ticks_lost=chaos.ticks_lost,
        sequence_gaps=sum(chaos.sequence_gaps.values()),
        worker_restarts=chaos.worker_restarts,
        kill_drills=chaos.kill_drills,
        elapsed_seconds=chaos.elapsed_seconds,
    )
