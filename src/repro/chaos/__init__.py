"""Chaos harness: fault injection across simulator -> detector -> service.

DBCatcher's value claim is *online* detection on noisy production
telemetry; this package makes the noise first-class.  A
:class:`ChaosSource` wraps any tick source with a schedule of seeded,
deterministic fault injectors (:mod:`~repro.chaos.faults`), the hardened
pipeline degrades gracefully instead of crashing or silently mis-scoring,
and a :class:`ChaosReport` measures — rather than asserts — what each
fault cost in detection quality versus the clean run.

Quick start::

    from repro.chaos import preset_scenario, run_scenario

    report = run_scenario("fleet.npz", scenario=preset_scenario("blackout"))
    print(report.render())
    assert report.survived

Scenario files are plain JSON (see :mod:`~repro.chaos.scenario`);
``python -m repro chaos`` exposes the same flow on the command line.
"""

from repro.chaos.faults import (
    Blackout,
    ClockSkew,
    DropoutBurst,
    DuplicateTicks,
    FaultInjector,
    GaugeNoise,
    MembershipChange,
    NaNGauge,
    OutOfOrderTicks,
    StuckGauge,
    WorkerKill,
)
from repro.chaos.report import ChaosReport, VerdictDiff, compare_runs
from repro.chaos.runner import run_scenario
from repro.chaos.scenario import (
    FAULT_TYPES,
    PRESETS,
    ChaosScenario,
    fault_from_dict,
    load_scenario,
    preset_scenario,
    scenario_from_dict,
)
from repro.chaos.source import ChaosSource

__all__ = [
    "Blackout",
    "ChaosReport",
    "ChaosScenario",
    "ChaosSource",
    "ClockSkew",
    "DropoutBurst",
    "DuplicateTicks",
    "FAULT_TYPES",
    "FaultInjector",
    "GaugeNoise",
    "MembershipChange",
    "NaNGauge",
    "OutOfOrderTicks",
    "PRESETS",
    "StuckGauge",
    "VerdictDiff",
    "WorkerKill",
    "compare_runs",
    "fault_from_dict",
    "load_scenario",
    "preset_scenario",
    "run_scenario",
    "scenario_from_dict",
]
