"""Schedulable, seeded fault injectors for the chaos harness.

Each injector is a deterministic transformation of the tick-event stream
flowing from a :mod:`repro.service.sources` source into the detection
service.  Faults model the degradations a bypass monitoring pipeline
actually suffers in production (PerfCE-style chaos drills over database
observability):

* :class:`DropoutBurst` / :class:`Blackout` — ticks lost in bursts;
* :class:`NaNGauge` — gauges reporting NaN for a window;
* :class:`StuckGauge` — gauges frozen at their last pre-fault value;
* :class:`GaugeNoise` — multiplicative jitter decorrelating a gauge;
* :class:`DuplicateTicks` — the transport re-delivering a tick;
* :class:`OutOfOrderTicks` — adjacent ticks swapped in flight;
* :class:`ClockSkew` — one database's samples lagging its unit peers;
* :class:`MembershipChange` — replica failover / database add-remove;
* :class:`WorkerKill` — a §IV-D4 kill drill against the worker pool.

Injectors compose: :class:`~repro.chaos.source.ChaosSource` chains their
``wrap`` generators in order, handing each its own RNG derived from the
scenario seed, so a scenario replays bit-identically run after run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import runtime as obs
from repro.service.sources import TickEvent

__all__ = [
    "FaultInjector",
    "DropoutBurst",
    "Blackout",
    "NaNGauge",
    "StuckGauge",
    "GaugeNoise",
    "DuplicateTicks",
    "OutOfOrderTicks",
    "ClockSkew",
    "MembershipChange",
    "WorkerKill",
]


class FaultInjector:
    """One schedulable fault: a deterministic tick-stream transformation.

    Subclasses implement :meth:`wrap`, a generator over the incoming
    event stream.  All per-run state must live inside ``wrap`` locals so
    the same injector instance can be reused across runs (scenarios are
    replayed clean-vs-chaos and again by the parity tests).
    """

    #: Scenario-file type tag; subclasses override.
    kind: str = "fault"

    def wrap(
        self,
        events: Iterator[TickEvent],
        rng: np.random.Generator,
        actions: List[tuple],
    ) -> Iterator[TickEvent]:
        """Transform the event stream.

        Parameters
        ----------
        events:
            Upstream tick events, in source order.
        rng:
            Injector-private generator seeded from the scenario seed, so
            stochastic faults replay deterministically.
        actions:
            Control-plane outbox: append ``("kill_worker", unit)``-style
            tuples for the scheduler to pick up via ``take_actions``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return repr(self)

    def record_activation(self, count: int = 1) -> None:
        """Count one actual injection in the ambient observability registry.

        Every injector calls this at the moment it *fires* (drops, corrupts
        or reorders a tick, queues a kill), not merely when armed, so a
        chaos run can report what it actually injected.  A no-op unless
        observability is enabled — the chaos runner enables a scoped
        registry around its runs.
        """
        obs.counter("chaos.fault_activations").increment(count)
        obs.counter(f"chaos.activations.{self.kind}").increment(count)


def _in_window(seq: int, start: int, end: Optional[int]) -> bool:
    return seq >= start and (end is None or seq < end)


def _unit_matches(unit: str, units: Optional[Sequence[str]]) -> bool:
    return units is None or unit in units


def _select(
    sample: np.ndarray,
    databases: Optional[Sequence[int]],
    kpis: Optional[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column index arrays of the affected cells, bounds-clipped."""
    n_dbs, n_kpis = sample.shape
    rows = (
        np.arange(n_dbs)
        if databases is None
        else np.asarray([d for d in databases if 0 <= d < n_dbs], dtype=int)
    )
    cols = (
        np.arange(n_kpis)
        if kpis is None
        else np.asarray([k for k in kpis if 0 <= k < n_kpis], dtype=int)
    )
    return rows, cols


@dataclass
class DropoutBurst(FaultInjector):
    """KPI dropout: ticks for the selected units vanish inside a window.

    Parameters
    ----------
    start, end:
        Per-unit sequence window ``[start, end)`` the fault is armed in
        (``end=None`` keeps it armed forever).
    units:
        Affected unit names (``None`` = every unit).
    probability:
        Chance an armed tick is dropped; ``1.0`` is a full blackout.
    """

    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    probability: float = 1.0
    kind = "dropout"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must lie in (0, 1]")

    def wrap(self, events, rng, actions):
        for event in events:
            if (
                _unit_matches(event.unit, self.units)
                and _in_window(event.seq, self.start, self.end)
                and (self.probability >= 1.0 or rng.random() < self.probability)
            ):
                self.record_activation()
                continue
            yield event


@dataclass
class Blackout(DropoutBurst):
    """Monitor blackout: every tick of the window is lost (dropout p=1)."""

    kind = "blackout"

    def __post_init__(self) -> None:
        object.__setattr__(self, "probability", 1.0)
        super().__post_init__()


@dataclass
class NaNGauge(FaultInjector):
    """Selected gauges report NaN inside the fault window.

    ``databases`` / ``kpis`` are index sequences (``None`` = all); cells
    outside a unit's actual shape are ignored, so one fault spec can cover
    a heterogeneous fleet.
    """

    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    databases: Optional[Tuple[int, ...]] = None
    kpis: Optional[Tuple[int, ...]] = None
    probability: float = 1.0
    kind = "nan_gauge"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must lie in (0, 1]")

    def wrap(self, events, rng, actions):
        for event in events:
            if (
                _unit_matches(event.unit, self.units)
                and _in_window(event.seq, self.start, self.end)
                and (self.probability >= 1.0 or rng.random() < self.probability)
            ):
                sample = event.sample.copy()
                rows, cols = _select(sample, self.databases, self.kpis)
                sample[np.ix_(rows, cols)] = np.nan
                event = dataclasses.replace(event, sample=sample)
                self.record_activation()
            yield event


@dataclass
class StuckGauge(FaultInjector):
    """Selected gauges freeze at their last pre-fault value.

    A stuck collector keeps exporting the same number while the database
    moves on — the classic silent telemetry failure.  Until a first value
    is seen the fault is inert (nothing to stick to).
    """

    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    databases: Optional[Tuple[int, ...]] = None
    kpis: Optional[Tuple[int, ...]] = None
    kind = "stuck_gauge"

    def wrap(self, events, rng, actions):
        last_seen: Dict[str, np.ndarray] = {}
        for event in events:
            armed = _unit_matches(event.unit, self.units) and _in_window(
                event.seq, self.start, self.end
            )
            if armed and event.unit in last_seen:
                sample = event.sample.copy()
                rows, cols = _select(sample, self.databases, self.kpis)
                cells = np.ix_(rows, cols)
                sample[cells] = last_seen[event.unit][cells]
                event = dataclasses.replace(event, sample=sample)
                self.record_activation()
            else:
                last_seen[event.unit] = event.sample
            yield event


@dataclass
class GaugeNoise(FaultInjector):
    """Selected gauges pick up multiplicative jitter inside the window.

    Each armed tick the affected cells are scaled by
    ``1 + Normal(0, rel_std)`` — a flapping collector or contended
    exporter whose readings wander around the truth.  Noise (unlike a
    clean scale or offset, which min-max normalization absorbs) actually
    *decorrelates* the gauge from its peers, which makes this the
    canonical single-database culprit fault for attribution drills.
    """

    rel_std: float = 0.3
    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    databases: Optional[Tuple[int, ...]] = None
    kpis: Optional[Tuple[int, ...]] = None
    kind = "gauge_noise"

    def __post_init__(self) -> None:
        if self.rel_std <= 0.0:
            raise ValueError("rel_std must be positive")

    def wrap(self, events, rng, actions):
        for event in events:
            if _unit_matches(event.unit, self.units) and _in_window(
                event.seq, self.start, self.end
            ):
                sample = event.sample.copy()
                rows, cols = _select(sample, self.databases, self.kpis)
                cells = np.ix_(rows, cols)
                jitter = 1.0 + rng.normal(
                    0.0, self.rel_std, size=(rows.size, cols.size)
                )
                sample[cells] = sample[cells] * jitter
                event = dataclasses.replace(event, sample=sample)
                self.record_activation()
            yield event


@dataclass
class DuplicateTicks(FaultInjector):
    """The transport re-delivers ticks (same unit, same sequence number).

    The ingestion bridge must reject the duplicates as stale; a consumer
    that accepted them would feed a detector the same instant twice.
    """

    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    probability: float = 0.1
    kind = "duplicate"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must lie in (0, 1]")

    def wrap(self, events, rng, actions):
        for event in events:
            yield event
            if (
                _unit_matches(event.unit, self.units)
                and _in_window(event.seq, self.start, self.end)
                and rng.random() < self.probability
            ):
                self.record_activation()
                yield dataclasses.replace(event, sample=event.sample.copy())


@dataclass
class OutOfOrderTicks(FaultInjector):
    """Adjacent ticks of one unit swap places in flight.

    With probability ``probability`` a tick is held back and emitted
    *after* the unit's next tick, producing a ``seq`` inversion.  The
    bridge records a gap for the early tick and rejects the late one as
    stale — one tick of data lost, zero corruption.
    """

    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    probability: float = 0.1
    kind = "out_of_order"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must lie in (0, 1]")

    def wrap(self, events, rng, actions):
        held: Dict[str, TickEvent] = {}
        for event in events:
            delayed = held.pop(event.unit, None)
            if delayed is not None:
                yield event
                yield delayed
                continue
            if (
                _unit_matches(event.unit, self.units)
                and _in_window(event.seq, self.start, self.end)
                and rng.random() < self.probability
            ):
                held[event.unit] = event
                self.record_activation()
                continue
            yield event
        for event in held.values():
            yield event


@dataclass
class ClockSkew(FaultInjector):
    """Selected databases report samples ``skew_ticks`` behind their peers.

    Models clock skew between databases of a unit beyond the collection
    delays the monitor already draws — exactly the offset the KCD's delay
    scan is supposed to absorb (until it exceeds ``max_delay``).  Warmup
    ticks repeat the earliest buffered sample, like a warming pipeline.
    """

    skew_ticks: int = 2
    databases: Optional[Tuple[int, ...]] = None
    start: int = 0
    end: Optional[int] = None
    units: Optional[Tuple[str, ...]] = None
    kind = "clock_skew"

    def __post_init__(self) -> None:
        if self.skew_ticks < 1:
            raise ValueError("skew_ticks must be >= 1")

    def wrap(self, events, rng, actions):
        history: Dict[str, List[np.ndarray]] = {}
        for event in events:
            ring = history.setdefault(event.unit, [])
            ring.append(event.sample)
            if len(ring) > self.skew_ticks + 1:
                ring.pop(0)
            if _unit_matches(event.unit, self.units) and _in_window(
                event.seq, self.start, self.end
            ):
                sample = event.sample.copy()
                stale = ring[max(len(ring) - 1 - self.skew_ticks, 0)]
                rows, _ = _select(sample, self.databases, None)
                sample[rows] = stale[rows]
                event = dataclasses.replace(event, sample=sample)
                self.record_activation()
            yield event


@dataclass
class MembershipChange(FaultInjector):
    """Replica failover / database add-remove mid-stream.

    Inside the window the affected databases stop reporting entirely
    (their rows go NaN, as a deprovisioned or failing-over replica's
    would); afterwards they rejoin.  The detector's finite-data mask must
    shrink around them and re-admit them without manual intervention.
    """

    start: int
    end: Optional[int]
    databases: Tuple[int, ...]
    units: Optional[Tuple[str, ...]] = None
    kind = "membership"

    def __post_init__(self) -> None:
        if not self.databases:
            raise ValueError("membership changes need at least one database")

    def wrap(self, events, rng, actions):
        for event in events:
            if _unit_matches(event.unit, self.units) and _in_window(
                event.seq, self.start, self.end
            ):
                sample = event.sample.copy()
                rows, _ = _select(sample, self.databases, None)
                sample[rows] = np.nan
                event = dataclasses.replace(event, sample=sample)
                self.record_activation()
            yield event


@dataclass
class WorkerKill(FaultInjector):
    """Kill drill: fell the worker process owning a unit mid-stream.

    When a matching unit's sequence number first reaches ``at_tick`` the
    injector queues a ``("kill_worker", unit)`` control action; the
    scheduler executes it against the pool (a no-op drill on the serial
    pool, a real ``os._exit`` on the process pool, which must then
    crash-restart within budget).
    """

    at_tick: int
    units: Optional[Tuple[str, ...]] = None
    kind = "worker_kill"

    def __post_init__(self) -> None:
        if self.at_tick < 0:
            raise ValueError("at_tick must be >= 0")

    def wrap(self, events, rng, actions):
        fired: Dict[str, bool] = {}
        for event in events:
            if (
                _unit_matches(event.unit, self.units)
                and event.seq >= self.at_tick
                and not fired.get(event.unit)
            ):
                fired[event.unit] = True
                actions.append(("kill_worker", event.unit))
                self.record_activation()
            yield event
