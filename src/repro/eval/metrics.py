"""Detection metrics (Section IV-A3).

Judgements are scored at window granularity: each (database, window)
verdict is a sample; a window is truly abnormal when any of its ticks is
labelled abnormal for that database.  Precision, Recall and F-Measure
follow the usual definitions; Window-Size (detection efficiency) is
reported separately by :mod:`repro.eval.windows`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.records import JudgementRecord

__all__ = [
    "ConfusionCounts",
    "DetectionScores",
    "confusion_from_records",
    "scores_from_confusion",
    "scores_from_records",
    "f_measure",
    "window_spans",
    "window_truth",
    "confusion_from_windows",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """TP/FP/TN/FN counts over a set of window verdicts."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            tn=self.tn + other.tn,
            fn=self.fn + other.fn,
        )

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn


@dataclass(frozen=True)
class DetectionScores:
    """Precision / Recall / F-Measure triple."""

    precision: float
    recall: float
    f_measure: float

    def as_percentages(self) -> Tuple[float, float, float]:
        """The triple scaled to percent, as the paper's figures report."""
        return (
            100.0 * self.precision,
            100.0 * self.recall,
            100.0 * self.f_measure,
        )


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall; 0 when both are 0."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def confusion_from_records(
    records: Iterable[JudgementRecord],
) -> ConfusionCounts:
    """Accumulate confusion counts from marked judgement records."""
    tp = fp = tn = fn = 0
    for record in records:
        cell_tp, cell_fp, cell_tn, cell_fn = record.confusion_cell()
        tp += cell_tp
        fp += cell_fp
        tn += cell_tn
        fn += cell_fn
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def scores_from_confusion(counts: ConfusionCounts) -> DetectionScores:
    """Precision/Recall/F from confusion counts.

    Degenerate denominators score 0 for the affected metric: predicting
    nothing abnormal yields precision 0 by convention so that a detector
    that never fires cannot look precise.  The exception is a sample set
    with no anomalies at all and no false alarms, which scores a perfect
    1/1/1 (there was nothing to find and nothing was invented).
    """
    if counts.tp + counts.fn == 0 and counts.fp == 0:
        return DetectionScores(precision=1.0, recall=1.0, f_measure=1.0)
    precision = counts.tp / (counts.tp + counts.fp) if counts.tp + counts.fp else 0.0
    recall = counts.tp / (counts.tp + counts.fn) if counts.tp + counts.fn else 0.0
    return DetectionScores(
        precision=precision, recall=recall, f_measure=f_measure(precision, recall)
    )


def scores_from_records(records: Iterable[JudgementRecord]) -> DetectionScores:
    """Convenience: confusion + scores in one call."""
    return scores_from_confusion(confusion_from_records(records))


def window_spans(n_ticks: int, window_size: int) -> List[Tuple[int, int]]:
    """Non-overlapping window spans tiling ``[0, n_ticks)``.

    The trailing partial window is dropped, matching the paper's "detection
    task is blocked until the window fills" semantics.
    """
    if window_size < 1:
        raise ValueError("window_size must be >= 1")
    return [
        (start, start + window_size)
        for start in range(0, n_ticks - window_size + 1, window_size)
    ]


def window_truth(labels: np.ndarray, spans: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Ground truth per (database, window): any abnormal tick inside.

    Parameters
    ----------
    labels:
        Boolean array of shape ``(n_databases, n_ticks)``.
    spans:
        Window spans, e.g. from :func:`window_spans`.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(n_databases, n_windows)``.
    """
    truth = np.asarray(labels, dtype=bool)
    if truth.ndim != 2:
        raise ValueError(f"labels must be (n_databases, n_ticks), got {truth.shape}")
    out = np.zeros((truth.shape[0], len(spans)), dtype=bool)
    for w, (start, end) in enumerate(spans):
        out[:, w] = truth[:, start:end].any(axis=1)
    return out


def confusion_from_windows(
    predictions: np.ndarray, truth: np.ndarray
) -> ConfusionCounts:
    """Confusion counts from aligned boolean prediction/truth arrays."""
    pred = np.asarray(predictions, dtype=bool)
    actual = np.asarray(truth, dtype=bool)
    if pred.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predictions {pred.shape} vs truth {actual.shape}"
        )
    return ConfusionCounts(
        tp=int(np.count_nonzero(pred & actual)),
        fp=int(np.count_nonzero(pred & ~actual)),
        tn=int(np.count_nonzero(~pred & ~actual)),
        fn=int(np.count_nonzero(~pred & actual)),
    )
