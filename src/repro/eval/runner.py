"""Experiment runner: the Section IV evaluation protocol.

One *trial* of a baseline: fit on the training split (timed — Table VI),
random-search the threshold rule on training scores, evaluate the frozen
rule on the testing split (Figures 8–10), and report the chosen
Window-Size (Tables V/VII/VIII).

One *trial* of DBCatcher: adaptive threshold learning on the training
split (its "training", also timed), then streaming detection with the
learned thresholds on the testing split; its efficiency metric is the
average flexible-window size actually used.

`repeat` runs several trials with different seeds and reports
mean/min/max, the way every performance figure in the paper is drawn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher
from repro.datasets.containers import Dataset
from repro.eval.adjust import adjusted_confusion_from_records
from repro.eval.metrics import (
    ConfusionCounts,
    DetectionScores,
    scores_from_confusion,
)
from repro.eval.search import DEFAULT_WINDOW_GRID, evaluate_rule, search_threshold_rule
from repro.tuning.genetic import GeneticThresholdLearner
from repro.tuning.objective import DetectionObjective

__all__ = [
    "TrialResult",
    "MethodSummary",
    "run_baseline_trial",
    "run_dbcatcher_trial",
    "repeat",
    "summarize",
]


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome."""

    method: str
    scores: DetectionScores
    window_size: float
    train_seconds: float


@dataclass(frozen=True)
class MethodSummary:
    """Mean/min/max over repeated trials (the paper's error bars)."""

    method: str
    mean: DetectionScores
    minimum: DetectionScores
    maximum: DetectionScores
    window_size: float
    train_seconds: float
    n_trials: int


def run_baseline_trial(
    detector: BaselineDetector,
    train: Dataset,
    test: Dataset,
    rng: Optional[np.random.Generator] = None,
    n_candidates: int = 60,
    window_grid: Sequence[int] = DEFAULT_WINDOW_GRID,
) -> TrialResult:
    """Fit + search on train, evaluate frozen rule on test."""
    generator = rng if rng is not None else np.random.default_rng()
    started = time.perf_counter()
    detector.fit(train)
    train_scores = detector.score_dataset(train)
    search = search_threshold_rule(
        detector,
        train,
        n_candidates=n_candidates,
        window_grid=window_grid,
        rng=generator,
        scores_per_unit=train_scores,
    )
    train_seconds = time.perf_counter() - started
    test_scores = detector.score_dataset(test)
    scores = evaluate_rule(search.rule, test_scores, test)
    return TrialResult(
        method=detector.name,
        scores=scores,
        window_size=float(search.rule.window_size),
        train_seconds=train_seconds,
    )


def run_dbcatcher_trial(
    config: DBCatcherConfig,
    train: Dataset,
    test: Dataset,
    learner: Optional[GeneticThresholdLearner] = None,
    measure=None,
    name: str = "DBCatcher",
) -> TrialResult:
    """Adaptive threshold learning on train, streaming detection on test."""
    chosen_learner = learner if learner is not None else GeneticThresholdLearner()
    started = time.perf_counter()
    objective = DetectionObjective(
        config,
        [unit.values for unit in train.units],
        [unit.labels for unit in train.units],
    )
    best_genome, _ = chosen_learner.search(objective)
    tuned = best_genome.apply_to(config)
    train_seconds = time.perf_counter() - started

    counts = ConfusionCounts()
    window_sizes: List[float] = []
    for unit in test.units:
        detector = DBCatcher(tuned, n_databases=unit.n_databases, measure=measure)
        detector.process(unit.values, time_axis=-1)
        counts = counts + adjusted_confusion_from_records(detector.history, unit.labels)
        window_sizes.append(detector.average_window_size())
    return TrialResult(
        method=name,
        scores=scores_from_confusion(counts),
        window_size=float(np.mean(window_sizes)) if window_sizes else 0.0,
        train_seconds=train_seconds,
    )


def repeat(
    trial: Callable[[np.random.Generator], TrialResult],
    n_trials: int = 20,
    seed: Optional[int] = None,
) -> List[TrialResult]:
    """Run a trial factory ``n_trials`` times with derived seeds."""
    master = np.random.default_rng(seed)
    return [
        trial(np.random.default_rng(int(master.integers(0, 2**63 - 1))))
        for _ in range(n_trials)
    ]


def summarize(results: Sequence[TrialResult]) -> MethodSummary:
    """Aggregate repeated trials into mean/min/max (the figures' bars)."""
    if not results:
        raise ValueError("need at least one trial result")
    precisions = [r.scores.precision for r in results]
    recalls = [r.scores.recall for r in results]
    fs = [r.scores.f_measure for r in results]

    def triple(reduce):
        return DetectionScores(
            precision=reduce(precisions),
            recall=reduce(recalls),
            f_measure=reduce(fs),
        )

    return MethodSummary(
        method=results[0].method,
        mean=triple(lambda xs: float(np.mean(xs))),
        minimum=triple(min),
        maximum=triple(max),
        window_size=float(np.mean([r.window_size for r in results])),
        train_seconds=float(np.mean([r.train_seconds for r in results])),
        n_trials=len(results),
    )
