"""Segment-adjusted (point-adjust) scoring.

The multivariate-anomaly-detection literature the paper compares against
(OmniAnomaly, JumpStarter) scores with the *point-adjust* convention: an
anomaly segment counts as detected — all of its points/windows become true
positives — as soon as any part of it is flagged, because an operator who
receives one alert for an incident has been served.  Missing the entire
segment converts all of its windows to false negatives.  Verdicts outside
any segment are scored plainly (false alarms stay false alarms).

This module applies that convention at window granularity, both to the
fixed windows of the baselines and to DBCatcher's variable-width
judgement records.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.records import JudgementRecord
from repro.eval.metrics import ConfusionCounts

__all__ = [
    "label_segments",
    "adjusted_confusion_from_spans",
    "adjusted_confusion_from_windows",
    "adjusted_confusion_from_records",
]


def label_segments(labels_1d: np.ndarray) -> List[Tuple[int, int]]:
    """Contiguous ``True`` runs of a 1-D label series as ``[start, end)``."""
    flags = np.asarray(labels_1d, dtype=bool)
    if flags.ndim != 1:
        raise ValueError(f"expected a 1-D label series, got {flags.shape}")
    padded = np.concatenate(([False], flags, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return [(int(edges[i]), int(edges[i + 1])) for i in range(0, len(edges), 2)]


def _adjust_one_database(
    spans: Sequence[Tuple[int, int]],
    predictions: np.ndarray,
    labels_1d: np.ndarray,
) -> ConfusionCounts:
    """Adjusted confusion for one database's window verdicts."""
    segments = label_segments(labels_1d)
    window_segment = np.full(len(spans), -1, dtype=int)
    for w, (start, end) in enumerate(spans):
        for segment_index, (seg_start, seg_end) in enumerate(segments):
            if start < seg_end and end > seg_start:
                window_segment[w] = segment_index
                break
    tp = fp = tn = fn = 0
    detected = {
        window_segment[w]
        for w in range(len(spans))
        if predictions[w] and window_segment[w] >= 0
    }
    for w in range(len(spans)):
        segment = window_segment[w]
        if segment >= 0:
            if segment in detected:
                tp += 1
            else:
                fn += 1
        elif predictions[w]:
            fp += 1
        else:
            tn += 1
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def adjusted_confusion_from_spans(
    spans: Sequence[Tuple[int, int]],
    predictions: np.ndarray,
    labels_1d: np.ndarray,
) -> ConfusionCounts:
    """Segment-adjusted confusion for one database's window verdicts.

    The spans-level entry point: callers that already hold ``(start, end)``
    window spans and boolean verdicts (e.g. the vectorized tuning
    objective, which never materializes :class:`JudgementRecord` objects)
    score them with exactly the convention
    :func:`adjusted_confusion_from_records` applies to detector histories.

    Parameters
    ----------
    spans:
        ``[start, end)`` tick spans of one database's judgement windows.
    predictions:
        Boolean abnormal-verdicts, one per span.
    labels_1d:
        Ground truth for the database, shape ``(n_ticks,)``.
    """
    pred = np.asarray(predictions, dtype=bool)
    if pred.shape != (len(spans),):
        raise ValueError(f"predictions must have one entry per span, got {pred.shape}")
    return _adjust_one_database(spans, pred, labels_1d)


def adjusted_confusion_from_windows(
    predictions: np.ndarray,
    spans: Sequence[Tuple[int, int]],
    labels: np.ndarray,
) -> ConfusionCounts:
    """Segment-adjusted confusion for fixed-window verdicts.

    Parameters
    ----------
    predictions:
        Boolean verdicts of shape ``(n_databases, n_windows)``.
    spans:
        The windows' tick spans.
    labels:
        Ground truth of shape ``(n_databases, n_ticks)``.
    """
    pred = np.asarray(predictions, dtype=bool)
    truth = np.asarray(labels, dtype=bool)
    if pred.ndim != 2 or pred.shape[1] != len(spans):
        raise ValueError(
            f"predictions must be (n_databases, {len(spans)}), got {pred.shape}"
        )
    if truth.shape[0] != pred.shape[0]:
        raise ValueError("labels and predictions disagree on database count")
    total = ConfusionCounts()
    for db in range(pred.shape[0]):
        total = total + _adjust_one_database(spans, pred[db], truth[db])
    return total


def adjusted_confusion_from_records(
    records: Sequence[JudgementRecord],
    labels: np.ndarray,
) -> ConfusionCounts:
    """Segment-adjusted confusion for DBCatcher's judgement records.

    Records are grouped per database; each record's (variable-width)
    window span plays the role of a fixed window above.
    """
    truth = np.asarray(labels, dtype=bool)
    if truth.ndim != 2:
        raise ValueError(f"labels must be (n_databases, n_ticks), got {truth.shape}")
    per_db: dict = {}
    for record in records:
        per_db.setdefault(record.database, []).append(record)
    total = ConfusionCounts()
    for db, db_records in per_db.items():
        if db >= truth.shape[0]:
            raise IndexError(
                f"record for database {db} but labels cover {truth.shape[0]}"
            )
        spans = [(r.window_start, r.window_end) for r in db_records]
        predictions = np.array([r.predicted_abnormal for r in db_records], dtype=bool)
        total = total + _adjust_one_database(spans, predictions, truth[db])
    return total
