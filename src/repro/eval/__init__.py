"""Evaluation harness: metrics, window-size search, timing, experiment runner.

Implements Section IV-A3's metrics (Precision, Recall, F-Measure,
Window-Size) and the experiment protocol used throughout the evaluation:
random threshold search on the training half, 20 repetitions with
mean/min/max reporting, and ASCII table renderers for every paper table.
"""

from repro.eval.adjust import (
    adjusted_confusion_from_records,
    adjusted_confusion_from_windows,
    label_segments,
)
from repro.eval.metrics import (
    ConfusionCounts,
    DetectionScores,
    confusion_from_records,
    f_measure,
    scores_from_confusion,
    scores_from_records,
    window_spans,
    window_truth,
)

__all__ = [
    "ConfusionCounts",
    "DetectionScores",
    "confusion_from_records",
    "f_measure",
    "scores_from_confusion",
    "scores_from_records",
    "window_spans",
    "window_truth",
    "adjusted_confusion_from_records",
    "adjusted_confusion_from_windows",
    "label_segments",
]
