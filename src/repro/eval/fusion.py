"""Fusion evaluation: KCD-alone versus the KPI/log ensemble.

The KPI-blind scenario presets (:mod:`repro.logs.scenarios`) are built so
the correlation signal has nothing to see — the incident lives in the
log stream while every KPI stays on its healthy profile.  This harness
quantifies what the ensemble buys on exactly those streams: run the
service once with the log channel fused, score the correlation side and
the combined side of every round against the preset's ground truth, and
compare detection delay and round-level F-measure.

Scoring both arms from *one* fused run is sound because fusion never
touches the correlation verdicts — the ``correlation`` tuple of a
:class:`~repro.ensemble.FusedVerdict` is the round's
:attr:`~repro.core.detector.UnitDetectionResult.abnormal_databases`
verbatim, which is the KCD-only run's output bit for bit (the property
suite pins this).  So the comparison is paired by construction: same
rounds, same windows, no seed drift between arms.

Verdicts are scored per ``(round, database)`` cell: a cell is truly
positive when the round's span overlaps a ground-truth incident window
of that database.  Detection delay is measured from the earliest
incident start to the end of the first true-positive round — the tick
the operator actually learned about the incident — and is ``None`` when
an arm never detects anything true (infinite delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.metrics import f_measure

__all__ = [
    "ArmScores",
    "FusionComparison",
    "score_rounds",
    "evaluate_scenario",
    "evaluate_scenarios",
]


@dataclass(frozen=True)
class ArmScores:
    """Round-level detection quality of one arm on one scenario.

    Parameters
    ----------
    true_positives, false_positives, false_negatives:
        ``(round, database)`` cell counts against the ground truth.
    detection_delay:
        Ticks from the earliest incident start to the end of the first
        true-positive round; ``None`` when the arm never fires on a
        true cell (the miss case — effectively infinite delay).
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    detection_delay: Optional[int]

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        truth = self.true_positives + self.false_negatives
        return self.true_positives / truth if truth else 0.0

    @property
    def f_measure(self) -> float:
        return f_measure(self.precision, self.recall)


@dataclass(frozen=True)
class FusionComparison:
    """One scenario's paired scores: correlation alone vs the ensemble."""

    scenario: str
    kcd: ArmScores
    ensemble: ArmScores

    @property
    def delay_improvement(self) -> Optional[int]:
        """Ticks of detection latency the ensemble removed.

        ``None`` when neither arm detected; a miss by KCD alone counts
        as the full distance to the ensemble's detection.
        """
        if self.ensemble.detection_delay is None:
            return None
        if self.kcd.detection_delay is None:
            # KCD never fired: the ensemble's whole detection is gain,
            # measured against the scenario horizon implied by the delay.
            return self.ensemble.detection_delay
        return self.kcd.detection_delay - self.ensemble.detection_delay

    @property
    def improved(self) -> bool:
        """Did fusion strictly beat KCD alone on delay or F-measure?"""
        if self.ensemble.detection_delay is not None and (
            self.kcd.detection_delay is None
            or self.ensemble.detection_delay < self.kcd.detection_delay
        ):
            return True
        return self.ensemble.f_measure > self.kcd.f_measure


def score_rounds(
    rounds: Sequence[Tuple[str, int, int, Tuple[int, ...]]],
    incidents: Sequence[Tuple[str, int, int, int]],
) -> ArmScores:
    """Score ``(unit, start, end, flagged_databases)`` rounds.

    ``incidents`` is the preset's ground truth, ``(unit, database,
    start, end)`` windows.  Only databases mentioned by at least one
    round or incident contribute false negatives — the round list
    defines which cells were judged.
    """
    truth: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
    for unit, database, start, end in incidents:
        truth.setdefault((unit, database), []).append((start, end))
    earliest = min((start for _, _, start, _ in incidents), default=0)
    tp = fp = fn = 0
    delay: Optional[int] = None
    for unit, start, end, flagged in rounds:
        flagged_set = set(flagged)
        true_dbs = {
            database
            for (t_unit, database), windows in truth.items()
            if t_unit == unit
            and any(start < w_end and end > w_start for w_start, w_end in windows)
        }
        tp_here = len(true_dbs & flagged_set)
        tp += tp_here
        fp += len(flagged_set - true_dbs)
        fn += len(true_dbs - flagged_set)
        if tp_here and delay is None:
            delay = end - earliest
    return ArmScores(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        detection_delay=delay,
    )


def evaluate_scenario(
    name: str, seed: int = 0, config=None
) -> FusionComparison:
    """Run one KPI-blind preset through the fused service and score it."""
    from repro.logs import log_scenario
    from repro.presets import default_config
    from repro.service import DetectionService, ReplaySource, ServiceConfig

    scenario = log_scenario(name, seed=seed)
    service = DetectionService(
        config if config is not None else default_config(),
        service_config=ServiceConfig(log_ensemble=True),
        sinks=("null",),
    )
    report = service.run(
        ReplaySource(scenario.dataset, logbook=scenario.logbooks)
    )
    kcd_rounds: List[Tuple[str, int, int, Tuple[int, ...]]] = []
    fused_rounds: List[Tuple[str, int, int, Tuple[int, ...]]] = []
    for unit, fused_list in sorted(report.fused_verdicts.items()):
        for fused in fused_list:
            kcd_rounds.append(
                (unit, fused.start, fused.end, fused.correlation)
            )
            fused_rounds.append(
                (unit, fused.start, fused.end, fused.combined)
            )
    return FusionComparison(
        scenario=name,
        kcd=score_rounds(kcd_rounds, scenario.incidents),
        ensemble=score_rounds(fused_rounds, scenario.incidents),
    )


def evaluate_scenarios(
    names: Optional[Sequence[str]] = None, seed: int = 0, config=None
) -> List[FusionComparison]:
    """Evaluate several presets (all of them by default)."""
    from repro.logs import LOG_SCENARIOS

    selected = tuple(names) if names is not None else tuple(sorted(LOG_SCENARIOS))
    return [
        evaluate_scenario(name, seed=seed, config=config) for name in selected
    ]
