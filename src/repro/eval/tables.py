"""ASCII renderers for the paper's tables and figures.

Benchmarks print these so a run's console output reads like the paper's
evaluation section: one renderer per artifact shape (performance bars,
window-size tables, timing tables, dataset statistics).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from repro.eval.runner import MethodSummary

__all__ = [
    "render_table",
    "render_performance_figure",
    "render_window_table",
    "render_timing_table",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Generic monospace table."""
    materialized: List[List[str]] = [
        [f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_performance_figure(
    summaries_by_dataset: Mapping[str, Sequence[MethodSummary]],
    title: str,
) -> str:
    """Figure 8/9/10 style: P/R/F (mean [min, max]) per method per dataset."""
    blocks = [title]
    for dataset, summaries in summaries_by_dataset.items():
        rows = []
        for summary in summaries:
            rows.append(
                [
                    summary.method,
                    f"{100 * summary.mean.precision:5.1f} "
                    f"[{100 * summary.minimum.precision:.1f}, "
                    f"{100 * summary.maximum.precision:.1f}]",
                    f"{100 * summary.mean.recall:5.1f} "
                    f"[{100 * summary.minimum.recall:.1f}, "
                    f"{100 * summary.maximum.recall:.1f}]",
                    f"{100 * summary.mean.f_measure:5.1f} "
                    f"[{100 * summary.minimum.f_measure:.1f}, "
                    f"{100 * summary.maximum.f_measure:.1f}]",
                ]
            )
        blocks.append(
            render_table(
                ["Model", "Precision(%)", "Recall(%)", "F-Measure(%)"],
                rows,
                title=f"-- {dataset} --",
            )
        )
    return "\n\n".join(blocks)


def render_window_table(
    summaries_by_dataset: Mapping[str, Sequence[MethodSummary]],
    title: str,
) -> str:
    """Table V/VII/VIII style: best-F window sizes per method/dataset."""
    datasets = list(summaries_by_dataset)
    methods = [s.method for s in summaries_by_dataset[datasets[0]]]
    rows = []
    for index, method in enumerate(methods):
        row = [method]
        for dataset in datasets:
            row.append(f"{summaries_by_dataset[dataset][index].window_size:.0f}")
        rows.append(row)
    return render_table(["Model"] + datasets, rows, title=title)


def render_timing_table(
    summaries_by_dataset: Mapping[str, Sequence[MethodSummary]],
    title: str,
) -> str:
    """Table VI/IX style: training (or retraining) seconds per method."""
    datasets = list(summaries_by_dataset)
    methods = [s.method for s in summaries_by_dataset[datasets[0]]]
    rows = []
    for index, method in enumerate(methods):
        row = [method]
        for dataset in datasets:
            row.append(f"{summaries_by_dataset[dataset][index].train_seconds:.2f}")
        rows.append(row)
    return render_table(["Model"] + datasets, rows, title=title)
