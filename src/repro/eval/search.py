"""Random threshold / window-size search for the baselines (Section IV-B).

"Each method uses the training set to randomly search thresholds and
Window-size for which the optimal F-Measure can be obtained, and maintain
them for evaluation on the testing set."  This module implements exactly
that: given a fitted detector's per-point scores on the training units, it
draws random :class:`~repro.baselines.base.ThresholdRule` candidates and
keeps the one with the best training F-Measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineDetector, ThresholdRule
from repro.datasets.containers import Dataset
from repro.eval.adjust import adjusted_confusion_from_windows
from repro.eval.metrics import (
    ConfusionCounts,
    confusion_from_windows,
    scores_from_confusion,
    window_spans,
    window_truth,
)

__all__ = ["SearchResult", "search_threshold_rule", "evaluate_rule"]

#: Window sizes the baselines may choose from (ticks).  Matches the ranges
#: the paper reports in Tables V/VII/VIII (40–100 points).
DEFAULT_WINDOW_GRID: Tuple[int, ...] = (20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class SearchResult:
    """Best rule found on the training split, with its training score."""

    rule: ThresholdRule
    train_f_measure: float


def evaluate_rule(
    rule: ThresholdRule,
    scores_per_unit: Sequence[np.ndarray],
    dataset: Dataset,
    point_adjust: bool = True,
):
    """Dataset-level detection scores of one rule over precomputed scores.

    ``point_adjust=True`` (default) applies the segment-adjusted scoring
    convention of the compared literature (see :mod:`repro.eval.adjust`);
    ``False`` scores each window independently.
    """
    total = ConfusionCounts()
    for scores, unit in zip(scores_per_unit, dataset.units):
        spans = window_spans(unit.n_ticks, rule.window_size)
        if not spans:
            continue
        predictions = rule.apply(scores)
        if point_adjust:
            total = total + adjusted_confusion_from_windows(
                predictions, spans, unit.labels
            )
        else:
            truth = window_truth(unit.labels, spans)
            total = total + confusion_from_windows(predictions, truth)
    return scores_from_confusion(total)


def search_threshold_rule(
    detector: BaselineDetector,
    train: Dataset,
    n_candidates: int = 60,
    window_grid: Sequence[int] = DEFAULT_WINDOW_GRID,
    rng: Optional[np.random.Generator] = None,
    scores_per_unit: Optional[List[np.ndarray]] = None,
) -> SearchResult:
    """Random search of (window, threshold, k) maximizing training F.

    Parameters
    ----------
    detector:
        A *fitted* detector whose scores are being thresholded.
    train:
        Training dataset.
    n_candidates:
        Number of random rules to try.
    window_grid:
        Candidate window sizes.
    rng:
        Random generator; a fresh one is created when omitted.
    scores_per_unit:
        Precomputed training scores (skips re-scoring when provided).
    """
    generator = rng if rng is not None else np.random.default_rng()
    if scores_per_unit is None:
        scores_per_unit = detector.score_dataset(train)
    pooled = np.concatenate([scores.ravel() for scores in scores_per_unit])
    n_kpis = train.units[0].n_kpis if detector.scores_per_kpi else 1
    max_ticks = min(unit.n_ticks for unit in train.units)
    usable_windows = [w for w in window_grid if w <= max_ticks]
    if not usable_windows:
        raise ValueError("every window in the grid exceeds the series length")

    best_rule: Optional[ThresholdRule] = None
    best_f = -1.0
    aggregations = ("max", "mean", "q90")
    for _ in range(n_candidates):
        window = usable_windows[int(generator.integers(0, len(usable_windows)))]
        # The rule thresholds window statistics whose useful cutoffs sit
        # deep in the point-score tail; sample the tail in log space
        # (quantiles 0.9 .. 0.99999).
        quantile = 1.0 - 10.0 ** float(generator.uniform(-5.0, -1.0))
        threshold = float(np.quantile(pooled, quantile))
        k = int(generator.integers(1, min(n_kpis, 5) + 1))
        aggregation = aggregations[int(generator.integers(0, len(aggregations)))]
        rule = ThresholdRule(
            window_size=window, threshold=threshold, k=k, aggregation=aggregation
        )
        f = evaluate_rule(rule, scores_per_unit, train).f_measure
        if f > best_f:
            best_f = f
            best_rule = rule
    assert best_rule is not None
    return SearchResult(rule=best_rule, train_f_measure=best_f)
