"""DBCatcher reproduction: cloud database online anomaly detection.

A full reimplementation of *"DBCatcher: A Cloud Database Online Anomaly
Detection System based on Indicator Correlation"* (ICDE 2023), including the
substrates the paper evaluates on: a discrete-time cloud-database cluster
simulator, Sysbench/TPC-C/production-like workload generators, an anomaly
injection toolkit, the five baseline detectors (FFT, SR, SR-CNN,
OmniAnomaly, JumpStarter), and the experiment harness that regenerates every
table and figure of the evaluation section.

Quick start::

    from repro import DBCatcher, DBCatcherConfig
    from repro.datasets import build_unit_series

    unit = build_unit_series(profile="tencent", n_databases=5, n_ticks=600,
                             seed=7)
    config = DBCatcherConfig(kpi_names=unit.kpi_names)
    catcher = DBCatcher(config, n_databases=unit.n_databases)
    for result in catcher.process(unit.values, time_axis=-1):
        print(result.start, result.abnormal_databases)
"""

from repro.core import (
    DBCatcher,
    DBCatcherConfig,
    DatabaseState,
    JudgementRecord,
    OnlineFeedback,
    UnitDetectionResult,
    kcd,
    kcd_matrix,
)

__version__ = "1.7.0"

#: Service-layer names resolved lazily so `import repro` stays light —
#: the fleet scheduler pulls in datasets/cluster machinery that pure
#: detector users never need.
_SERVICE_EXPORTS = (
    "DetectionService",
    "ServiceConfig",
    "ServiceReport",
    "TickSource",
    "TickTransport",
    "detect_fleet",
)

#: Engine names resolved lazily for the same reason.
_ENGINE_EXPORTS = (
    "KCDEngine",
    "make_engine",
)

__all__ = [
    "DBCatcher",
    "DBCatcherConfig",
    "DatabaseState",
    "DetectionService",
    "JudgementRecord",
    "KCDEngine",
    "OnlineFeedback",
    "ServiceConfig",
    "ServiceReport",
    "TickSource",
    "TickTransport",
    "UnitDetectionResult",
    "detect_fleet",
    "kcd",
    "kcd_matrix",
    "make_engine",
    "__version__",
]


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    if name in _ENGINE_EXPORTS:
        from repro import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
