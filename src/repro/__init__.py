"""DBCatcher reproduction: cloud database online anomaly detection.

A full reimplementation of *"DBCatcher: A Cloud Database Online Anomaly
Detection System based on Indicator Correlation"* (ICDE 2023), including the
substrates the paper evaluates on: a discrete-time cloud-database cluster
simulator, Sysbench/TPC-C/production-like workload generators, an anomaly
injection toolkit, the five baseline detectors (FFT, SR, SR-CNN,
OmniAnomaly, JumpStarter), and the experiment harness that regenerates every
table and figure of the evaluation section.

Quick start::

    from repro import DBCatcher, DBCatcherConfig
    from repro.datasets import build_unit_series

    unit = build_unit_series(profile="tencent", n_databases=5, n_ticks=600,
                             seed=7)
    config = DBCatcherConfig(kpi_names=unit.kpi_names)
    catcher = DBCatcher(config, n_databases=unit.n_databases)
    for result in catcher.detect_series(unit.values):
        print(result.start, result.abnormal_databases)
"""

from repro.core import (
    DBCatcher,
    DBCatcherConfig,
    DatabaseState,
    JudgementRecord,
    OnlineFeedback,
    UnitDetectionResult,
    kcd,
    kcd_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "DBCatcher",
    "DBCatcherConfig",
    "DatabaseState",
    "JudgementRecord",
    "OnlineFeedback",
    "UnitDetectionResult",
    "kcd",
    "kcd_matrix",
    "__version__",
]
