"""Fleet topology: which units share infrastructure.

Incident correlation needs to know when two units plausibly fail
*together* — they sit behind the same load balancer, run on the same
host, or serve the same workload scenario.  A :class:`Topology` is a flat
set of named groups over unit names; two units are *connected* when at
least one group contains both.  Where the groups come from is up to the
caller:

* :meth:`Topology.from_dataset` derives workload-scenario groups from the
  construction metadata the simulator stamps on every
  :class:`~repro.datasets.containers.UnitSeries`;
* :meth:`Topology.from_attributes` turns per-unit attribute maps
  (``{"unit-000": {"host": "h1", "lb": "lb-a"}}``) into ``host:h1`` /
  ``lb:lb-a`` groups — the shape an external CMDB export takes;
* :meth:`Topology.single_group` is the degenerate everything-is-shared
  fleet, the honest default when no topology is known;
* the fleet scheduler overlays ``shard:<n>`` groups at run time when the
  process pool is active, so units co-located on a worker correlate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple, Union

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """Named shared-infrastructure groups over unit names.

    Parameters
    ----------
    groups:
        Mapping from a group label (``"scenario:flash_sale"``,
        ``"host:h1"``) to the unit names it contains.  Units may appear in
        any number of groups; unknown units simply belong to none.
    """

    groups: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[str, Tuple[str, ...]] = {}
        for label, units in self.groups.items():
            members = tuple(sorted(set(units)))
            if not members:
                raise ValueError(f"topology group {label!r} has no units")
            normalized[str(label)] = members
        object.__setattr__(self, "groups", normalized)

    @classmethod
    def single_group(
        cls, units: Sequence[str], label: str = "fleet"
    ) -> "Topology":
        """Everything shares one group — the no-information default."""
        return cls(groups={label: tuple(units)})

    @classmethod
    def from_attributes(
        cls, attributes: Mapping[str, Mapping[str, object]]
    ) -> "Topology":
        """Build ``key:value`` groups from per-unit attribute maps."""
        groups: Dict[str, list] = {}
        for unit, attrs in attributes.items():
            for key, value in attrs.items():
                if value is None:
                    continue
                groups.setdefault(f"{key}:{value}", []).append(unit)
        return cls(groups={label: tuple(units) for label, units in groups.items()})

    @classmethod
    def from_dataset(cls, dataset) -> "Topology":
        """Workload-sharing groups from a dataset's construction metadata.

        Uses the ``family`` / ``scenario`` / ``periodic`` keys the dataset
        builder records per unit; units built without metadata fall into a
        shared ``family:unknown`` group so correlation still has a floor.
        """
        attributes: Dict[str, Dict[str, object]] = {}
        for unit in dataset.units:
            meta = getattr(unit, "metadata", None) or {}
            attrs: Dict[str, object] = {
                "family": meta.get("family", "unknown"),
            }
            if meta.get("scenario") is not None:
                attrs["scenario"] = meta["scenario"]
            if meta.get("periodic") is not None:
                attrs["periodicity"] = (
                    "periodic" if meta["periodic"] else "irregular"
                )
            attributes[unit.name] = attrs
        return cls.from_attributes(attributes)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Topology":
        """Load a topology from a JSON file of ``{"groups": {label: [...]}}``."""
        with open(path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        groups = spec.get("groups") if isinstance(spec, dict) else None
        if not isinstance(groups, dict) or not groups:
            raise ValueError(
                f"{path}: topology file needs a non-empty 'groups' object"
            )
        return cls(groups={str(k): tuple(v) for k, v in groups.items()})

    @property
    def units(self) -> Tuple[str, ...]:
        """Every unit named by at least one group, sorted."""
        seen = set()
        for members in self.groups.values():
            seen.update(members)
        return tuple(sorted(seen))

    def groups_of(self, unit: str) -> Tuple[str, ...]:
        """Labels of every group containing ``unit``, sorted."""
        return tuple(
            sorted(
                label
                for label, members in self.groups.items()
                if unit in members
            )
        )

    def shared_groups(self, a: str, b: str) -> Tuple[str, ...]:
        """Group labels containing both units — the connection evidence."""
        return tuple(
            sorted(
                label
                for label, members in self.groups.items()
                if a in members and b in members
            )
        )

    def connected(self, a: str, b: str) -> bool:
        """Whether two units share at least one group."""
        return a == b or bool(self.shared_groups(a, b))

    def merged(self, extra: Mapping[str, Sequence[str]]) -> "Topology":
        """This topology plus additional groups (e.g. runtime shards)."""
        combined: Dict[str, Tuple[str, ...]] = dict(self.groups)
        for label, units in extra.items():
            members = tuple(sorted(set(combined.get(label, ())) | set(units)))
            combined[label] = members
        return Topology(groups=combined)

    def to_dict(self) -> Dict[str, object]:
        return {"groups": {label: list(m) for label, m in self.groups.items()}}
