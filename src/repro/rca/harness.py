"""Attribution accuracy harness: chaos faults with known culprits.

PerfCE's argument, applied to attribution: the way to trust a root-cause
ranking is to *inject* a fault whose culprit you know and check the
ranking finds it.  Each trial builds a clean, correlated synthetic fleet,
injects one single-database fault (``stuck_gauge`` / ``clock_skew`` /
``gauge_noise`` — the corrupting injectors that keep data finite; NaN and
membership faults make the database *inactive*, which is exclusion, not
attribution), runs detection over the corrupted stream and scores whether
the fault's database ranks first (precision@1) or in the top two
(precision@2) among the trial's attributions.

Everything derives from the harness seed, so a trial replays
bit-identically — the bench gate pins precision@1 ≥ 0.8 on exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faults import ClockSkew, FaultInjector, GaugeNoise, StuckGauge
from repro.chaos.source import ChaosSource
from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher
from repro.datasets.containers import Dataset, UnitSeries
from repro.rca.attribution import Attribution, Attributor
from repro.service.sources import ReplaySource

__all__ = ["TrialResult", "HarnessReport", "run_attribution_harness"]

#: Injector kinds usable for attribution drills (single-database,
#: data-corrupting, finite).
ATTRIBUTABLE_KINDS = ("stuck_gauge", "clock_skew", "gauge_noise")


@dataclass(frozen=True)
class TrialResult:
    """One injection trial: the fault, the truth and the ranking."""

    kind: str
    trial: int
    target_unit: str
    target_database: int
    detected: bool
    top1_hit: bool
    top2_hit: bool
    ranked: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "trial": self.trial,
            "target_unit": self.target_unit,
            "target_database": self.target_database,
            "detected": self.detected,
            "top1_hit": self.top1_hit,
            "top2_hit": self.top2_hit,
            "ranked": list(self.ranked),
        }


@dataclass(frozen=True)
class HarnessReport:
    """Aggregated precision@k over all trials, sliceable by fault kind."""

    trials: Tuple[TrialResult, ...]

    def _slice(self, kind: Optional[str]) -> List[TrialResult]:
        return [t for t in self.trials if kind is None or t.kind == kind]

    def detection_rate(self, kind: Optional[str] = None) -> float:
        trials = self._slice(kind)
        if not trials:
            return 0.0
        return sum(t.detected for t in trials) / len(trials)

    def precision_at(self, k: int, kind: Optional[str] = None) -> float:
        """Fraction of *detected* trials whose culprit ranks in the top k."""
        detected = [t for t in self._slice(kind) if t.detected]
        if not detected:
            return 0.0
        if k == 1:
            hits = sum(t.top1_hit for t in detected)
        elif k == 2:
            hits = sum(t.top2_hit for t in detected)
        else:
            hits = sum(
                t.target_database in t.ranked[:k] for t in detected
            )
        return hits / len(detected)

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({t.kind for t in self.trials}))

    def to_dict(self) -> Dict[str, object]:
        per_kind = {
            kind: {
                "trials": len(self._slice(kind)),
                "detection_rate": self.detection_rate(kind),
                "precision_at_1": self.precision_at(1, kind),
                "precision_at_2": self.precision_at(2, kind),
            }
            for kind in self.kinds
        }
        return {
            "trials": len(self.trials),
            "detection_rate": self.detection_rate(),
            "precision_at_1": self.precision_at(1),
            "precision_at_2": self.precision_at(2),
            "per_kind": per_kind,
        }

    def render(self) -> str:
        lines = [
            f"attribution harness: {len(self.trials)} trial(s), "
            f"p@1={self.precision_at(1):.2f} p@2={self.precision_at(2):.2f}"
        ]
        for kind in self.kinds:
            lines.append(
                f"  {kind}: detect={self.detection_rate(kind):.2f} "
                f"p@1={self.precision_at(1, kind):.2f} "
                f"p@2={self.precision_at(2, kind):.2f}"
            )
        return "\n".join(lines)


def _build_fleet(
    n_units: int, n_databases: int, n_kpis: int, n_ticks: int, seed: int
) -> Dataset:
    """Clean, tightly correlated fleet: peers track a shared trend.

    Built directly (not via the anomaly-injecting dataset builder) so the
    only abnormality in the stream is the chaos fault — any verdict the
    detector emits is the fault's doing.
    """
    rng = np.random.default_rng(seed)
    kpi_names = tuple(f"kpi{k}" for k in range(n_kpis))
    units = []
    for u in range(n_units):
        base = np.linspace(0, 12 + u, n_ticks)
        trend = np.sin(base) + 0.3 * np.sin(2.7 * base) + 2.5
        values = np.stack(
            [
                trend[None, :] * (1.0 + 0.03 * d + 0.1 * np.arange(n_kpis)[:, None])
                + 0.01 * rng.standard_normal((n_kpis, n_ticks))
                for d in range(n_databases)
            ]
        )
        labels = np.zeros((n_databases, n_ticks), dtype=bool)
        units.append(
            UnitSeries(
                name=f"unit-{u:03d}",
                values=values,
                labels=labels,
                kpi_names=kpi_names,
            )
        )
    return Dataset(name="rca-harness", units=tuple(units))


def _make_injector(
    kind: str, unit: str, database: int, start: int, end: int
) -> FaultInjector:
    if kind == "stuck_gauge":
        return StuckGauge(
            start=start, end=end, units=(unit,), databases=(database,)
        )
    if kind == "clock_skew":
        # The KCD delay scan absorbs skews up to max_delay (30 ticks at
        # the 60-tick max window) by design, so the drill must skew past
        # it to be visible at all.
        return ClockSkew(
            skew_ticks=40,
            start=start,
            end=end,
            units=(unit,),
            databases=(database,),
        )
    if kind == "gauge_noise":
        return GaugeNoise(
            rel_std=0.5,
            start=start,
            end=end,
            units=(unit,),
            databases=(database,),
        )
    raise ValueError(
        f"unsupported harness fault kind {kind!r}; "
        f"choose from {ATTRIBUTABLE_KINDS}"
    )


def run_attribution_harness(
    kinds: Sequence[str] = ATTRIBUTABLE_KINDS,
    trials_per_kind: int = 3,
    n_units: int = 2,
    n_databases: int = 5,
    n_kpis: int = 3,
    n_ticks: int = 240,
    seed: int = 0,
    config: Optional[DBCatcherConfig] = None,
) -> HarnessReport:
    """Score attribution precision against known injected culprits.

    Each trial injects one fault of the given kind into a rotating
    (unit, database) target of a freshly built clean fleet, replays the
    corrupted stream through per-unit detectors, attributes every abnormal
    round of the target unit and checks the ranking.  ``detected=False``
    trials (fault too subtle to alert) are excluded from precision but
    reported in the detection rate.
    """
    if config is None:
        config = DBCatcherConfig(
            kpi_names=tuple(f"kpi{k}" for k in range(n_kpis)),
            initial_window=20,
            max_window=60,
        )
    fault_start = max(n_ticks // 3, config.initial_window * 2)
    fault_end = min(n_ticks, fault_start + 80)
    results: List[TrialResult] = []
    for kind in kinds:
        for trial in range(trials_per_kind):
            fleet = _build_fleet(
                n_units, n_databases, n_kpis, n_ticks, seed=seed * 1000 + trial
            )
            target_unit = fleet.units[trial % n_units].name
            target_db = (trial * 2 + 1) % n_databases
            injector = _make_injector(
                kind, target_unit, target_db, fault_start, fault_end
            )
            source = ChaosSource(
                ReplaySource(fleet), faults=(injector,), seed=seed + trial
            )
            detectors = {
                name: DBCatcher(config, n_dbs)
                for name, n_dbs in source.units.items()
            }
            rounds: Dict[str, List] = {name: [] for name in source.units}
            for event in source:
                rounds[event.unit].extend(
                    detectors[event.unit].process(event.sample)
                )
            attributor = Attributor(config)
            attributions: List[Attribution] = attributor.attribute_all(
                target_unit, rounds[target_unit]
            )
            # Score against the strongest abnormal round — the one an
            # operator would triage first.
            best = max(
                attributions, key=lambda a: a.strength, default=None
            )
            ranked = best.ranked_databases() if best is not None else ()
            results.append(
                TrialResult(
                    kind=kind,
                    trial=trial,
                    target_unit=target_unit,
                    target_database=target_db,
                    detected=best is not None,
                    top1_hit=bool(ranked) and ranked[0] == target_db,
                    top2_hit=target_db in ranked[:2],
                    ranked=ranked,
                )
            )
    return HarnessReport(trials=tuple(results))
