"""Culprit ranking: which databases and KPIs drove a decorrelation.

DBCatcher's verdict says *that* a unit misbehaved; the per-pair KCD
matrices behind the verdict say *where*.  For every (KPI, database-pair)
cell the attribution walk measures the **threshold deficit** — how far
the pair's KCD score fell below that KPI's correlation threshold
``alpha_i`` (healthy cells contribute zero) — and aggregates the deficits
three ways:

* per database — a database involved in many deficient pairs is the
  likely culprit (an abnormal database decorrelates from *all* its peers,
  while healthy peers keep tracking each other, so its row dominates);
* per KPI — which indicator dimensions carry the decorrelation;
* per pair — the raw evidence, kept for drill-down.

Scores are normalized to shares (they sum to 1 over databases and over
KPIs respectively) so rankings are comparable across rounds; the
unnormalized mean deficit per evaluated cell is kept as ``strength``, the
severity signal.  Table II's R-R KPIs exclude the primary exactly as the
level calculation does — its legitimate decorrelation there must not be
read as evidence of fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import UnitDetectionResult
from repro.obs import runtime as obs

__all__ = ["Attribution", "Attributor", "attribute_result"]


@dataclass(frozen=True)
class Attribution:
    """Ranked culprit evidence for one abnormal detection round.

    Parameters
    ----------
    unit:
        Unit the round belongs to.
    start, end:
        Tick span of the round.
    database_scores:
        ``(database, share)`` pairs sorted by decreasing share; shares sum
        to 1 when any deficit exists.  Only databases active in the round
        appear.
    kpi_scores:
        ``(kpi_name, share)`` pairs sorted by decreasing share.
    pair_scores:
        ``(i, j, deficit)`` with ``i < j``, summed over KPIs and sorted by
        decreasing deficit; zero-deficit pairs are omitted.
    strength:
        Mean threshold deficit per evaluated (KPI, pair) cell — the
        magnitude of the decorrelation, in KCD units.
    abnormal_databases:
        The round's abnormal verdict, for convenience.
    """

    unit: str
    start: int
    end: int
    database_scores: Tuple[Tuple[int, float], ...]
    kpi_scores: Tuple[Tuple[str, float], ...]
    pair_scores: Tuple[Tuple[int, int, float], ...]
    strength: float
    abnormal_databases: Tuple[int, ...] = ()

    @property
    def top_database(self) -> Optional[int]:
        """Highest-ranked culprit database, or ``None`` without evidence."""
        return self.database_scores[0][0] if self.database_scores else None

    @property
    def top_kpi(self) -> Optional[str]:
        """Highest-ranked culprit KPI, or ``None`` without evidence."""
        return self.kpi_scores[0][0] if self.kpi_scores else None

    def ranked_databases(self, top: Optional[int] = None) -> Tuple[int, ...]:
        """Database indices in rank order, optionally truncated."""
        ranked = tuple(db for db, _ in self.database_scores)
        return ranked if top is None else ranked[:top]

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "start": self.start,
            "end": self.end,
            "databases": [[db, score] for db, score in self.database_scores],
            "kpis": [[kpi, score] for kpi, score in self.kpi_scores],
            "pairs": [[i, j, score] for i, j, score in self.pair_scores],
            "strength": self.strength,
            "abnormal_databases": list(self.abnormal_databases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Attribution":
        return cls(
            unit=str(payload["unit"]),
            start=int(payload["start"]),  # type: ignore[arg-type]
            end=int(payload["end"]),  # type: ignore[arg-type]
            database_scores=tuple(
                (int(db), float(score)) for db, score in payload["databases"]  # type: ignore[union-attr]
            ),
            kpi_scores=tuple(
                (str(kpi), float(score)) for kpi, score in payload["kpis"]  # type: ignore[union-attr]
            ),
            pair_scores=tuple(
                (int(i), int(j), float(score))
                for i, j, score in payload["pairs"]  # type: ignore[union-attr]
            ),
            strength=float(payload["strength"]),  # type: ignore[arg-type]
            abnormal_databases=tuple(
                int(db) for db in payload.get("abnormal_databases", [])  # type: ignore[union-attr]
            ),
        )


def attribute_result(
    unit: str,
    result: UnitDetectionResult,
    config: DBCatcherConfig,
) -> Optional[Attribution]:
    """Rank culprit databases and KPIs for one completed round.

    Returns ``None`` when the round carries no correlation evidence
    (``result.matrices`` is ``None`` — the round resolved degraded before
    any KCD pass, so there is nothing to attribute).
    """
    matrices = result.matrices
    if matrices is None:
        return None
    n_dbs = matrices[0].n_databases
    if result.active is not None:
        active = np.asarray(result.active, dtype=bool)
    else:
        active = np.ones(n_dbs, dtype=bool)
    rows, cols = np.triu_indices(n_dbs, k=1)
    rr_only = set(config.rr_only_kpis)
    primary = config.primary_index

    db_totals = np.zeros(n_dbs, dtype=np.float64)
    pair_totals = np.zeros(rows.size, dtype=np.float64)
    kpi_totals: Dict[str, float] = {}
    cells_evaluated = 0
    total_deficit = 0.0
    for kpi_index, matrix in enumerate(matrices):
        alpha = float(config.alphas[kpi_index])
        kpi_mask = active
        if matrix.kpi in rr_only and primary is not None and primary < n_dbs:
            kpi_mask = active.copy()
            kpi_mask[primary] = False
        triangle = np.asarray(matrix.triangle, dtype=np.float64)
        usable = kpi_mask[rows] & kpi_mask[cols] & np.isfinite(triangle)
        deficits = np.where(usable, np.clip(alpha - triangle, 0.0, None), 0.0)
        kpi_totals[matrix.kpi] = float(deficits.sum())
        pair_totals += deficits
        np.add.at(db_totals, rows, deficits)
        np.add.at(db_totals, cols, deficits)
        cells_evaluated += int(usable.sum())
        total_deficit += float(deficits.sum())

    strength = total_deficit / cells_evaluated if cells_evaluated else 0.0
    db_norm = db_totals.sum()
    database_scores = tuple(
        (int(db), float(db_totals[db] / db_norm) if db_norm > 0 else 0.0)
        for db in sorted(
            (db for db in range(n_dbs) if active[db]),
            key=lambda db: (-db_totals[db], db),
        )
    )
    kpi_norm = sum(kpi_totals.values())
    kpi_order = {kpi: index for index, kpi in enumerate(config.kpi_names)}
    kpi_scores = tuple(
        (kpi, float(kpi_totals[kpi] / kpi_norm) if kpi_norm > 0 else 0.0)
        for kpi in sorted(
            kpi_totals, key=lambda kpi: (-kpi_totals[kpi], kpi_order[kpi])
        )
    )
    pair_scores = tuple(
        (int(rows[p]), int(cols[p]), float(pair_totals[p]))
        for p in sorted(
            np.nonzero(pair_totals > 0)[0],
            key=lambda p: (-pair_totals[p], rows[p], cols[p]),
        )
    )
    obs.counter("rca.attributions").increment()
    return Attribution(
        unit=unit,
        start=result.start,
        end=result.end,
        database_scores=database_scores,
        kpi_scores=kpi_scores,
        pair_scores=pair_scores,
        strength=strength,
        abnormal_databases=result.abnormal_databases,
    )


class Attributor:
    """Per-unit attribution with the right thresholds for each unit.

    Parameters
    ----------
    configs:
        One shared :class:`~repro.core.config.DBCatcherConfig` or a
        mapping keyed by unit name — the same shapes the fleet scheduler
        resolves detector configs from, so the attribution walk always
        uses the thresholds the verdict was judged against (including
        hot-swapped tuned thresholds, when the caller rebinds).
    """

    def __init__(
        self,
        configs: Union[DBCatcherConfig, Mapping[str, DBCatcherConfig]],
    ):
        self._configs = configs

    def config_for(self, unit: str) -> DBCatcherConfig:
        if isinstance(self._configs, DBCatcherConfig):
            return self._configs
        return self._configs[unit]

    def attribute(
        self, unit: str, result: UnitDetectionResult
    ) -> Optional[Attribution]:
        with obs.span("rca.attribute"):
            return attribute_result(unit, result, self.config_for(unit))

    def attribute_all(
        self, unit: str, results: List[UnitDetectionResult]
    ) -> List[Attribution]:
        """Attributions for every abnormal round in ``results``."""
        attributions = []
        for result in results:
            if not result.abnormal_databases:
                continue
            attribution = self.attribute(unit, result)
            if attribution is not None:
                attributions.append(attribution)
        return attributions
