"""Offline RCA: replay a recorded run into a ranked incident report.

Two replay shapes, neither needing the live service:

* :func:`replay_dataset` re-runs detection over a dataset (the recorded
  tick streams) with :class:`~repro.core.detector.DBCatcher` and feeds
  every round through a :class:`RootCauseAnalyzer` — full correlation
  evidence, exact attributions.
* :func:`replay_alerts` reconstructs incidents from an alert JSONL file
  written by a previous serve run.  Alerts recorded with RCA enabled
  carry their attributions inline and round-trip losslessly; plain alerts
  still correlate into incidents, just without culprit rankings.

Both produce an :class:`RCAReport` that renders as the ranked text report
``repro rca`` prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher
from repro.rca.analyzer import RootCauseAnalyzer
from repro.rca.attribution import Attribution
from repro.rca.incidents import Incident
from repro.rca.topology import Topology

__all__ = ["RCAReport", "replay_dataset", "replay_alerts"]


@dataclass(frozen=True)
class RCAReport:
    """Ranked output of an offline RCA replay."""

    incidents: Tuple[Incident, ...]
    attributions: Tuple[Attribution, ...] = ()
    rounds: int = 0
    abnormal_rounds: int = 0
    source: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "rounds": self.rounds,
            "abnormal_rounds": self.abnormal_rounds,
            "incidents": [incident.to_dict() for incident in self.incidents],
            "attributions": [a.to_dict() for a in self.attributions],
        }

    def render(self, top: int = 3) -> str:
        """Human-readable ranked report, one block per incident."""
        lines = [
            f"RCA report — {self.source or 'replay'}: "
            f"{self.abnormal_rounds}/{self.rounds} abnormal rounds, "
            f"{len(self.incidents)} incident(s)"
        ]
        severity_rank = {"CRITICAL": 0, "HIGH": 1, "MEDIUM": 2}
        ordered = sorted(
            self.incidents,
            key=lambda i: (severity_rank.get(i.severity, 9), -i.peak_strength),
        )
        for incident in ordered:
            span = f"opened@{incident.opened_at}"
            if incident.resolved_at is not None:
                span += f" resolved@{incident.resolved_at}"
            lines.append(
                f"  {incident.incident_id} [{incident.severity}] {span} "
                f"units={','.join(incident.unit_names)} "
                f"verdicts={incident.frequency} "
                f"strength={incident.peak_strength:.3f}"
            )
            for rank, (unit, db, share) in enumerate(incident.culprits(top), 1):
                lines.append(
                    f"    #{rank} culprit {unit}/D{db + 1} (share={share:.2f})"
                )
        return "\n".join(lines)


def replay_dataset(
    dataset,
    config: Union[DBCatcherConfig, Mapping[str, DBCatcherConfig]],
    topology: Optional[Topology] = None,
    window_ticks: int = 60,
    resolve_after_ticks: int = 60,
) -> RCAReport:
    """Re-run detection over a dataset and correlate the verdicts.

    ``config`` is one shared detector config or a per-unit mapping; the
    topology defaults to the dataset's workload-metadata groups.
    """
    if topology is None:
        topology = Topology.from_dataset(dataset)
    analyzer = RootCauseAnalyzer(
        configs=config,
        topology=topology,
        window_ticks=window_ticks,
        resolve_after_ticks=resolve_after_ticks,
    )

    def config_for(unit_name: str) -> DBCatcherConfig:
        if isinstance(config, DBCatcherConfig):
            return config
        return config[unit_name]

    # Interleave rounds across units in end-tick order so the correlator
    # clock moves exactly as it would have live.
    rounds: List[Tuple[int, str, object]] = []
    last_tick = 0
    for unit in dataset.units:
        detector = DBCatcher(config_for(unit.name), unit.values.shape[0])
        for result in detector.process(unit.values, time_axis=-1):
            rounds.append((result.end, unit.name, result))
        last_tick = max(last_tick, unit.values.shape[-1])
    rounds.sort(key=lambda item: (item[0], item[1]))

    attributions: List[Attribution] = []
    abnormal = 0
    for _, unit_name, result in rounds:
        outcome = analyzer.process(unit_name, result)  # type: ignore[arg-type]
        if outcome.attribution is not None:
            attributions.append(outcome.attribution)
        if outcome.incident is not None:
            abnormal += 1
    analyzer.finish(last_tick)
    return RCAReport(
        incidents=analyzer.incidents,
        attributions=tuple(attributions),
        rounds=len(rounds),
        abnormal_rounds=abnormal,
        source=getattr(dataset, "name", "dataset"),
    )


def replay_alerts(
    path: Union[str, Path],
    topology: Optional[Topology] = None,
    window_ticks: int = 60,
    resolve_after_ticks: int = 60,
) -> RCAReport:
    """Correlate a recorded alert JSONL stream into incidents.

    Incident records interleaved in the file (``"type": "incident"``) are
    skipped — the replay rebuilds them from the alerts alone, so the same
    file can be replayed whether or not the original run had RCA on.
    """
    from repro.rca.incidents import IncidentCorrelator

    alerts: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "incident":
                continue
            alerts.append(record)
    alerts.sort(key=lambda a: (int(a["end"]), str(a["unit"])))  # type: ignore[arg-type]

    units = sorted({str(alert["unit"]) for alert in alerts})
    if topology is None:
        topology = Topology.single_group(units)
    correlator = IncidentCorrelator(
        topology,
        window_ticks=window_ticks,
        resolve_after_ticks=resolve_after_ticks,
    )
    attributions: List[Attribution] = []
    last_tick = 0
    for alert in alerts:
        unit = str(alert["unit"])
        tick = int(alert["end"])  # type: ignore[arg-type]
        last_tick = max(last_tick, tick)
        correlator.advance(tick)
        attribution: Optional[Attribution] = None
        if "attribution" in alert:
            attribution = Attribution.from_dict(alert["attribution"])  # type: ignore[arg-type]
            attributions.append(attribution)
        correlator.observe(unit, tick, attribution)
    correlator.flush(last_tick + resolve_after_ticks)
    return RCAReport(
        incidents=correlator.incidents,
        attributions=tuple(attributions),
        rounds=len(alerts),
        abnormal_rounds=len(alerts),
        source=str(path),
    )
