"""RootCauseAnalyzer: attribution + incident correlation as one object.

This is the piece the serving layer holds: feed it every completed
detection round (abnormal or not) and advance its clock on quiet ticks;
it attributes abnormal rounds, threads them into incidents and hands back
the lifecycle events for the alert pipeline to fan out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

from repro.core.config import DBCatcherConfig
from repro.core.detector import UnitDetectionResult
from repro.obs import runtime as obs
from repro.rca.attribution import Attribution, Attributor
from repro.rca.incidents import Incident, IncidentCorrelator, IncidentEvent
from repro.rca.topology import Topology

__all__ = ["RCAOutcome", "RootCauseAnalyzer"]


@dataclass(frozen=True)
class RCAOutcome:
    """What one round produced: its attribution, incident and events."""

    attribution: Optional[Attribution] = None
    incident: Optional[Incident] = None
    events: Tuple[IncidentEvent, ...] = ()

    @property
    def incident_id(self) -> Optional[str]:
        return self.incident.incident_id if self.incident is not None else None


@dataclass
class RootCauseAnalyzer:
    """Per-fleet RCA state: an attributor plus an incident correlator.

    Parameters
    ----------
    configs:
        Detector config(s) the verdicts were judged against — one shared
        config or a per-unit mapping, as resolved by the caller.
    topology:
        Shared-infrastructure groups for incident correlation.
    window_ticks, resolve_after_ticks:
        Correlator windows, see :class:`IncidentCorrelator`.
    """

    configs: Union[DBCatcherConfig, Mapping[str, DBCatcherConfig]]
    topology: Topology
    window_ticks: int = 60
    resolve_after_ticks: int = 60
    _attributor: Attributor = field(init=False, repr=False)
    _correlator: IncidentCorrelator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._attributor = Attributor(self.configs)
        self._correlator = IncidentCorrelator(
            self.topology,
            window_ticks=self.window_ticks,
            resolve_after_ticks=self.resolve_after_ticks,
        )

    @property
    def incidents(self) -> Tuple[Incident, ...]:
        return self._correlator.incidents

    @property
    def open_incidents(self) -> Tuple[Incident, ...]:
        return self._correlator.open_incidents

    def process(
        self,
        unit: str,
        result: UnitDetectionResult,
        log_attribution: Optional[Attribution] = None,
    ) -> RCAOutcome:
        """Analyze one completed round; normal rounds only move the clock.

        ``log_attribution`` carries the log channel's culprit evidence
        for rounds abnormal on log frequency alone (the correlation
        verdict is quiet, so there is nothing to attribute from KPIs):
        the round then threads into incident correlation exactly as a
        decorrelation verdict would, with the log evidence as its
        attribution.  On correlation-abnormal rounds the KPI attribution
        wins and the argument is ignored.
        """
        with obs.span("rca.process"):
            events = list(self._correlator.advance(result.end))
            if not result.abnormal_databases:
                if log_attribution is not None:
                    incident, new_events = self._correlator.observe(
                        unit, result.end, log_attribution
                    )
                    events.extend(new_events)
                    self._count(events)
                    return RCAOutcome(
                        attribution=log_attribution,
                        incident=incident,
                        events=tuple(events),
                    )
                self._count(events)
                return RCAOutcome(events=tuple(events))
            attribution = self._attributor.attribute(unit, result)
            incident, new_events = self._correlator.observe(
                unit, result.end, attribution
            )
            events.extend(new_events)
            self._count(events)
            return RCAOutcome(
                attribution=attribution,
                incident=incident,
                events=tuple(events),
            )

    def advance(self, tick: int) -> Tuple[IncidentEvent, ...]:
        """Quiet-tick clock movement; may resolve incidents."""
        events = tuple(self._correlator.advance(tick))
        self._count(events)
        return events

    def finish(self, tick: int) -> Tuple[IncidentEvent, ...]:
        """End of stream: resolve everything still open."""
        events = tuple(self._correlator.flush(tick))
        self._count(events)
        return events

    @staticmethod
    def _count(events: List[IncidentEvent] | Tuple[IncidentEvent, ...]) -> None:
        for event in events:
            obs.counter(f"rca.incidents_{event.kind}").increment()
