"""Root-cause analysis on top of KCD verdicts.

DBCatcher's detector says *that* a unit went abnormal; this package says
*what to do about it*.  Three layers, composable or standalone:

* **Culprit ranking** (:mod:`~repro.rca.attribution`) — walk the per-pair
  KCD correlation matrices behind an abnormal verdict and rank which
  databases and KPI dimensions drove the decorrelation.
* **Incident correlation** (:mod:`~repro.rca.incidents`,
  :mod:`~repro.rca.topology`) — group abnormal verdicts across units
  sharing infrastructure into :class:`Incident` objects with
  score+frequency severities and an open → update → resolve lifecycle.
* **Offline replay and validation** (:mod:`~repro.rca.replay`,
  :mod:`~repro.rca.harness`) — ``repro rca`` replays a recorded run into
  a ranked report without the live service, and the chaos-based harness
  measures attribution precision@k against faults with known culprits.

Quick start::

    from repro.rca import replay_dataset
    report = replay_dataset(dataset, config)
    print(report.render())
"""

from repro.rca.analyzer import RCAOutcome, RootCauseAnalyzer
from repro.rca.attribution import Attribution, Attributor, attribute_result
from repro.rca.harness import (
    HarnessReport,
    TrialResult,
    run_attribution_harness,
)
from repro.rca.incidents import (
    Incident,
    IncidentCorrelator,
    IncidentEvent,
    classify_severity,
)
from repro.rca.replay import RCAReport, replay_alerts, replay_dataset
from repro.rca.topology import Topology

__all__ = [
    "Attribution",
    "Attributor",
    "HarnessReport",
    "Incident",
    "IncidentCorrelator",
    "IncidentEvent",
    "RCAOutcome",
    "RCAReport",
    "RootCauseAnalyzer",
    "Topology",
    "TrialResult",
    "attribute_result",
    "classify_severity",
    "replay_alerts",
    "replay_dataset",
    "run_attribution_harness",
]
