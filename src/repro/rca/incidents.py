"""Incident correlation: abnormal verdicts grouped across the fleet.

A cloud incident rarely confines itself to one unit — a bad host, an
overloaded load balancer or a workload surge degrades every unit that
shares the infrastructure.  The :class:`IncidentCorrelator` turns the
per-unit verdict stream into :class:`Incident` objects: an abnormal
verdict joins the earliest open incident whose member units are
topology-connected to it and whose last abnormal evidence is within
``window_ticks``; otherwise it opens a fresh incident.  Incidents resolve
on *sustained normal* — ``resolve_after_ticks`` of wall clock without a
new abnormal verdict from any member unit.

Severity combines decorrelation *strength* (the attribution's mean
threshold deficit) with verdict *frequency* — a burst of weak verdicts is
as alarming as one strong verdict, mirroring the score+frequency mapping
operational anomaly pipelines use.  Lifecycle transitions surface as
:class:`IncidentEvent` records (``opened`` / ``updated`` / ``resolved``)
so the alert pipeline can fan them out to sinks as they happen.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rca.attribution import Attribution
from repro.rca.topology import Topology

__all__ = [
    "SEVERITY_MEDIUM",
    "SEVERITY_HIGH",
    "SEVERITY_CRITICAL",
    "classify_severity",
    "Incident",
    "IncidentEvent",
    "IncidentCorrelator",
]

SEVERITY_MEDIUM = "MEDIUM"
SEVERITY_HIGH = "HIGH"
SEVERITY_CRITICAL = "CRITICAL"

_SEVERITY_RANK = {SEVERITY_MEDIUM: 1, SEVERITY_HIGH: 2, SEVERITY_CRITICAL: 3}
_SEVERITY_NAME = {rank: name for name, rank in _SEVERITY_RANK.items()}

# Strength is a mean threshold deficit in KCD units: one fully
# decorrelated database among five peers lands near 0.28, a fleet-wide
# collapse above 0.5.  Frequency counts abnormal verdicts; with ~20-tick
# rounds, four verdicts is a sustained multi-round episode.
STRENGTH_HIGH = 0.25
STRENGTH_CRITICAL = 0.5
FREQUENCY_HIGH = 4
FREQUENCY_CRITICAL = 8


def classify_severity(strength: float, frequency: int) -> str:
    """Map decorrelation strength and verdict frequency to a severity.

    The base level comes from strength — how far below threshold the
    correlation evidence fell — and frequency can only *boost* it: many
    verdicts never downgrade a strong one.
    """
    if strength >= STRENGTH_CRITICAL:
        base = 3
    elif strength >= STRENGTH_HIGH:
        base = 2
    else:
        base = 1
    if frequency >= FREQUENCY_CRITICAL:
        base = max(base, 3)
    elif frequency >= FREQUENCY_HIGH:
        base = max(base, 2)
    return _SEVERITY_NAME[base]


@dataclass
class Incident:
    """A correlated group of abnormal verdicts, with lifecycle.

    Mutable on purpose: the correlator updates counters, severity and
    membership as verdicts arrive, and flips ``status`` on resolution.
    """

    incident_id: str
    opened_at: int
    last_abnormal: int
    status: str = "open"
    resolved_at: Optional[int] = None
    units: Dict[str, int] = field(default_factory=dict)
    frequency: int = 0
    peak_strength: float = 0.0
    severity: str = SEVERITY_MEDIUM
    attributions: List[Attribution] = field(default_factory=list)

    @property
    def unit_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.units))

    def culprits(self, top: Optional[int] = None) -> Tuple[Tuple[str, int, float], ...]:
        """Strength-weighted culprit ranking across member units.

        Each attribution's database shares are weighted by its strength so
        a strong round dominates a marginal one; returns
        ``(unit, database, weight-share)`` sorted by decreasing share.
        """
        weighted: Dict[Tuple[str, int], float] = {}
        for attribution in self.attributions:
            for db, share in attribution.database_scores:
                key = (attribution.unit, db)
                weighted[key] = weighted.get(key, 0.0) + share * attribution.strength
        total = sum(weighted.values())
        ranked = sorted(
            (
                (unit, db, weight / total if total > 0 else 0.0)
                for (unit, db), weight in weighted.items()
            ),
            key=lambda item: (-item[2], item[0], item[1]),
        )
        return tuple(ranked) if top is None else tuple(ranked[:top])

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "incident_id": self.incident_id,
            "status": self.status,
            "severity": self.severity,
            "opened_at": self.opened_at,
            "last_abnormal": self.last_abnormal,
            "units": {unit: count for unit, count in sorted(self.units.items())},
            "frequency": self.frequency,
            "peak_strength": self.peak_strength,
            "culprits": [[unit, db, share] for unit, db, share in self.culprits(5)],
        }
        if self.resolved_at is not None:
            payload["resolved_at"] = self.resolved_at
        return payload


@dataclass(frozen=True)
class IncidentEvent:
    """One lifecycle transition: ``opened``, ``updated`` or ``resolved``.

    ``incident`` is the live object — serialize promptly (the correlator
    keeps mutating it as later verdicts arrive).
    """

    kind: str
    tick: int
    incident: Incident

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "incident",
            "event": self.kind,
            "tick": self.tick,
            **self.incident.to_dict(),
        }


class IncidentCorrelator:
    """Groups abnormal verdicts into incidents over a sliding window.

    Parameters
    ----------
    topology:
        Shared-infrastructure groups; a verdict can only join an incident
        it is topology-connected to.
    window_ticks:
        Maximum gap (in ticks) between an incident's last abnormal
        evidence and a new verdict for the verdict to join it.
    resolve_after_ticks:
        Sustained-normal horizon: an open incident resolves once the
        clock passes ``last_abnormal + resolve_after_ticks`` without new
        abnormal evidence.  Resolution is clock-driven — call
        :meth:`advance` even on quiet ticks.
    """

    def __init__(
        self,
        topology: Topology,
        window_ticks: int = 60,
        resolve_after_ticks: int = 60,
        id_prefix: str = "inc",
    ):
        if window_ticks <= 0:
            raise ValueError("window_ticks must be positive")
        if resolve_after_ticks <= 0:
            raise ValueError("resolve_after_ticks must be positive")
        self.topology = topology
        self.window_ticks = int(window_ticks)
        self.resolve_after_ticks = int(resolve_after_ticks)
        self._ids = itertools.count(1)
        self._id_prefix = id_prefix
        self._open: List[Incident] = []
        self._resolved: List[Incident] = []

    @property
    def open_incidents(self) -> Tuple[Incident, ...]:
        return tuple(self._open)

    @property
    def incidents(self) -> Tuple[Incident, ...]:
        """Every incident ever opened, in open order."""
        return tuple(
            sorted(
                self._resolved + self._open,
                key=lambda incident: incident.incident_id,
            )
        )

    def _connected(self, unit: str, incident: Incident) -> bool:
        return any(
            self.topology.connected(unit, member) for member in incident.units
        )

    def observe(
        self, unit: str, tick: int, attribution: Optional[Attribution] = None
    ) -> Tuple[Incident, List[IncidentEvent]]:
        """Feed one abnormal verdict; returns its incident and any events.

        ``tick`` is the verdict's end tick.  An ``updated`` event fires
        only when the incident visibly changes — a new unit joins or the
        severity escalates — not on every repeat verdict.
        """
        events: List[IncidentEvent] = []
        candidates = [
            incident
            for incident in self._open
            if tick - incident.last_abnormal <= self.window_ticks
            and self._connected(unit, incident)
        ]
        if candidates:
            incident = min(candidates, key=lambda i: i.incident_id)
            new_unit = unit not in incident.units
            incident.units[unit] = incident.units.get(unit, 0) + 1
            incident.frequency += 1
            incident.last_abnormal = max(incident.last_abnormal, tick)
            if attribution is not None:
                incident.attributions.append(attribution)
                incident.peak_strength = max(
                    incident.peak_strength, attribution.strength
                )
            severity = classify_severity(incident.peak_strength, incident.frequency)
            escalated = (
                _SEVERITY_RANK[severity] > _SEVERITY_RANK[incident.severity]
            )
            if escalated:
                incident.severity = severity
            if new_unit or escalated:
                events.append(IncidentEvent("updated", tick, incident))
            return incident, events
        incident = Incident(
            incident_id=f"{self._id_prefix}-{next(self._ids):04d}",
            opened_at=tick,
            last_abnormal=tick,
            units={unit: 1},
            frequency=1,
        )
        if attribution is not None:
            incident.attributions.append(attribution)
            incident.peak_strength = attribution.strength
        incident.severity = classify_severity(
            incident.peak_strength, incident.frequency
        )
        self._open.append(incident)
        events.append(IncidentEvent("opened", tick, incident))
        return incident, events

    def advance(self, tick: int) -> List[IncidentEvent]:
        """Move the clock; resolve incidents past their quiet horizon."""
        events: List[IncidentEvent] = []
        still_open: List[Incident] = []
        for incident in self._open:
            if tick - incident.last_abnormal >= self.resolve_after_ticks:
                incident.status = "resolved"
                incident.resolved_at = tick
                self._resolved.append(incident)
                events.append(IncidentEvent("resolved", tick, incident))
            else:
                still_open.append(incident)
        self._open = still_open
        return events

    def flush(self, tick: int) -> List[IncidentEvent]:
        """End of stream: resolve everything still open at ``tick``."""
        events = []
        for incident in self._open:
            incident.status = "resolved"
            incident.resolved_at = tick
            self._resolved.append(incident)
            events.append(IncidentEvent("resolved", tick, incident))
        self._open = []
        return events
