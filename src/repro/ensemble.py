"""Hybrid detection: DBCatcher + a point detector (paper future work #1).

The paper's own strengths-and-weaknesses discussion notes DBCatcher "will
not work if the KPIs affected by the anomaly do not break the UKPIC
phenomenon" — e.g. an incident hitting *every* database of the unit at
once — and suggests combining with existing methods "for more
comprehensive detection".  This module implements that combination: a
union ensemble where DBCatcher supplies the correlation verdicts and any
:class:`~repro.baselines.base.BaselineDetector` (SR by default) covers the
unit-wide deviations DBCatcher is structurally blind to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.baselines.base import BaselineDetector, ThresholdRule
from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher
from repro.datasets.containers import UnitSeries
from repro.eval.metrics import window_spans

__all__ = ["HybridVerdict", "HybridDetector"]


@dataclass(frozen=True)
class HybridVerdict:
    """Per-(database, window) verdicts with provenance.

    ``correlation`` holds DBCatcher's verdicts, ``point`` the baseline's;
    ``combined`` is their union.  Keeping the parts separate lets the DBA
    see *which* mechanism fired — a unit-wide alarm with silent
    correlation verdicts is exactly the "UKPIC not broken" case.
    """

    spans: Tuple[Tuple[int, int], ...]
    correlation: np.ndarray
    point: np.ndarray
    combined: np.ndarray


class HybridDetector:
    """Union ensemble of DBCatcher and a point-anomaly baseline.

    Parameters
    ----------
    config:
        DBCatcher configuration; its ``initial_window`` also fixes the
        verdict granularity of the ensemble.
    point_detector:
        A *fitted* baseline detector.
    point_rule:
        Window rule for the baseline's scores (threshold searched on
        training data, as in the evaluation protocol).
    """

    def __init__(
        self,
        config: DBCatcherConfig,
        point_detector: BaselineDetector,
        point_rule: ThresholdRule,
    ):
        if point_rule.window_size != config.initial_window:
            raise ValueError(
                "the point rule's window must match DBCatcher's initial "
                "window so verdicts align"
            )
        self.config = config
        self.point_detector = point_detector
        self.point_rule = point_rule

    def detect(self, unit: UnitSeries) -> HybridVerdict:
        """Run both mechanisms over a unit and merge the verdicts."""
        spans = tuple(window_spans(unit.n_ticks, self.config.initial_window))
        n_windows = len(spans)

        correlation = np.zeros((unit.n_databases, n_windows), dtype=bool)
        catcher = DBCatcher(self.config, n_databases=unit.n_databases)
        catcher.process(unit.values, time_axis=-1)
        for record in catcher.history:
            if not record.predicted_abnormal:
                continue
            for index, (start, end) in enumerate(spans):
                if record.window_start < end and record.window_end > start \
                        and record.database < unit.n_databases:
                    correlation[record.database, index] = True

        scores = self.point_detector.score_unit(unit)
        point = self.point_rule.apply(scores)
        # The rule tiles windows identically (same window size), but guard
        # against a trailing mismatch.
        point = point[:, :n_windows]

        return HybridVerdict(
            spans=spans,
            correlation=correlation,
            point=point,
            combined=correlation | point,
        )
