"""Hybrid detection: DBCatcher + a point detector (paper future work #1).

The paper's own strengths-and-weaknesses discussion notes DBCatcher "will
not work if the KPIs affected by the anomaly do not break the UKPIC
phenomenon" — e.g. an incident hitting *every* database of the unit at
once — and suggests combining with existing methods "for more
comprehensive detection".  This module implements that combination: a
union ensemble where DBCatcher supplies the correlation verdicts and any
:class:`~repro.baselines.base.BaselineDetector` (SR by default) covers the
unit-wide deviations DBCatcher is structurally blind to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

import numpy as np

from repro.baselines.base import BaselineDetector, ThresholdRule
from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher, UnitDetectionResult
from repro.datasets.containers import UnitSeries
from repro.eval.metrics import window_spans

if TYPE_CHECKING:  # imported lazily: repro.logs consumes this module
    from repro.logs.detector import LogVerdict

__all__ = [
    "PROVENANCE_CORRELATION",
    "PROVENANCE_LOG",
    "PROVENANCE_BOTH",
    "FusedVerdict",
    "fuse_round",
    "HybridVerdict",
    "HybridDetector",
]

#: Provenance tags on fused verdicts: which mechanism(s) flagged a
#: database.  A ``log``-only tag on a unit-wide alarm is exactly the
#: "UKPIC not broken" case the correlation signal is blind to.
PROVENANCE_CORRELATION = "correlation"
PROVENANCE_LOG = "log"
PROVENANCE_BOTH = "both"


@dataclass(frozen=True)
class FusedVerdict:
    """One detection round's KPI/log union verdict, with provenance.

    The correlation verdict rides through *untouched* — ``correlation``
    is exactly the round's :attr:`UnitDetectionResult.abnormal_databases`
    — and the log channel's verdict joins it by union.  Keeping the
    parts separate (and tagging every flagged database with which
    mechanism fired) is the fusion contract the property suite pins: a
    log-only firing may grow ``combined`` but can never mutate
    ``correlation``.

    Parameters
    ----------
    unit:
        Unit the round belongs to.
    start, end:
        Absolute tick span ``[start, end)`` of the round.
    correlation:
        DBCatcher's abnormal databases, verbatim.
    log:
        The log-frequency detector's abnormal databases.
    combined:
        Sorted union of the two.
    provenance:
        Per flagged database, ``"correlation"`` / ``"log"`` / ``"both"``.
    log_scores:
        Per log-flagged database, the burst score behind the verdict.
    """

    unit: str
    start: int
    end: int
    correlation: Tuple[int, ...] = ()
    log: Tuple[int, ...] = ()
    combined: Tuple[int, ...] = ()
    provenance: Mapping[int, str] = field(default_factory=dict)
    log_scores: Mapping[int, float] = field(default_factory=dict)

    @property
    def log_only(self) -> Tuple[int, ...]:
        """Databases only the log channel flagged."""
        return tuple(db for db in self.log if db not in self.correlation)

    def to_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "start": self.start,
            "end": self.end,
            "correlation": list(self.correlation),
            "log": list(self.log),
            "combined": list(self.combined),
            "provenance": {str(db): tag for db, tag in self.provenance.items()},
            "log_scores": {
                str(db): score for db, score in self.log_scores.items()
            },
        }


def fuse_round(
    unit: str, result: UnitDetectionResult, log_verdict: "LogVerdict"
) -> FusedVerdict:
    """Union-fuse one correlation round with its log verdict.

    The two verdicts must cover the same tick span — the scheduler
    aligns the log channel's judgement windows to the correlation
    rounds, so a mismatch is a wiring bug, not data.
    """
    if (log_verdict.start, log_verdict.end) != (result.start, result.end):
        raise ValueError(
            f"log verdict spans [{log_verdict.start}, {log_verdict.end}) but "
            f"the correlation round spans [{result.start}, {result.end})"
        )
    correlation = tuple(result.abnormal_databases)
    log = tuple(log_verdict.abnormal_databases)
    combined = tuple(sorted(set(correlation) | set(log)))
    provenance = {}
    for db in combined:
        if db in correlation and db in log:
            provenance[db] = PROVENANCE_BOTH
        elif db in correlation:
            provenance[db] = PROVENANCE_CORRELATION
        else:
            provenance[db] = PROVENANCE_LOG
    return FusedVerdict(
        unit=unit,
        start=result.start,
        end=result.end,
        correlation=correlation,
        log=log,
        combined=combined,
        provenance=provenance,
        log_scores=dict(log_verdict.scores),
    )


@dataclass(frozen=True)
class HybridVerdict:
    """Per-(database, window) verdicts with provenance.

    ``correlation`` holds DBCatcher's verdicts, ``point`` the baseline's;
    ``combined`` is their union.  Keeping the parts separate lets the DBA
    see *which* mechanism fired — a unit-wide alarm with silent
    correlation verdicts is exactly the "UKPIC not broken" case.
    """

    spans: Tuple[Tuple[int, int], ...]
    correlation: np.ndarray
    point: np.ndarray
    combined: np.ndarray


class HybridDetector:
    """Union ensemble of DBCatcher and a point-anomaly baseline.

    Parameters
    ----------
    config:
        DBCatcher configuration; its ``initial_window`` also fixes the
        verdict granularity of the ensemble.
    point_detector:
        A *fitted* baseline detector.
    point_rule:
        Window rule for the baseline's scores (threshold searched on
        training data, as in the evaluation protocol).
    """

    def __init__(
        self,
        config: DBCatcherConfig,
        point_detector: BaselineDetector,
        point_rule: ThresholdRule,
    ):
        if point_rule.window_size != config.initial_window:
            raise ValueError(
                "the point rule's window must match DBCatcher's initial "
                "window so verdicts align"
            )
        self.config = config
        self.point_detector = point_detector
        self.point_rule = point_rule

    def detect(self, unit: UnitSeries) -> HybridVerdict:
        """Run both mechanisms over a unit and merge the verdicts."""
        spans = tuple(window_spans(unit.n_ticks, self.config.initial_window))
        n_windows = len(spans)

        correlation = np.zeros((unit.n_databases, n_windows), dtype=bool)
        catcher = DBCatcher(self.config, n_databases=unit.n_databases)
        catcher.process(unit.values, time_axis=-1)
        for record in catcher.history:
            if not record.predicted_abnormal:
                continue
            for index, (start, end) in enumerate(spans):
                if record.window_start < end and record.window_end > start \
                        and record.database < unit.n_databases:
                    correlation[record.database, index] = True

        scores = self.point_detector.score_unit(unit)
        point = self.point_rule.apply(scores)
        # The rule tiles windows identically (same window size), but guard
        # against a trailing mismatch.
        point = point[:, :n_windows]

        return HybridVerdict(
            spans=spans,
            correlation=correlation,
            point=point,
            combined=correlation | point,
        )
