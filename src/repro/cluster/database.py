"""Simulated database: one monitored entity of a unit.

A unit holds one PRIMARY and several REPLICA databases (Section IV-A5:
"each unit contains one primary database and four replica databases").
Reads are balanced across all databases; writes execute on the primary and
replicate to the replicas after a small lag.

The primary's command counters (Com Insert/Update), row write counters and
TPS additionally carry *primary-side modulation* — an AR(1) multiplicative
process standing in for transaction coordination, group commit and
maintenance writes.  This is what makes those KPIs R-R-only in Table II:
replicas apply the identical replication stream (strong R-R correlation)
while the primary's counters wander enough to fall below the UKPIC
threshold (weak P-R correlation).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.cluster.kpis import KPI_INDEX, KPI_REGISTRY
from repro.cluster.requests import RequestMix
from repro.cluster.resources import DatabaseCondition, ResourceModel

__all__ = ["DatabaseRole", "Database"]

#: Indices of the KPIs that are R-R-only in Table II; these receive the
#: primary-side modulation.
_RR_ONLY_INDICES: Tuple[int, ...] = tuple(
    KPI_INDEX[kpi.name] for kpi in KPI_REGISTRY if not kpi.primary_correlated
)

#: AR(1) coefficient and innovation scale of the primary-side modulation.
_MODULATION_PHI = 0.85
_MODULATION_SIGMA = 0.25


class DatabaseRole(enum.Enum):
    """Role of a database inside its unit."""

    PRIMARY = "primary"
    REPLICA = "replica"


class Database:
    """One simulated MySQL database (primary or replica).

    Parameters
    ----------
    name:
        Display name, e.g. ``"D1"``.
    role:
        PRIMARY executes writes directly; REPLICA applies the replication
        stream after ``replication_lag`` ticks.
    model:
        Resource model translating request mixes to KPI values.
    rng:
        Dedicated random generator (per-database noise independence).
    replication_lag:
        Ticks between a write on the primary and its application here.
    """

    def __init__(
        self,
        name: str,
        role: DatabaseRole,
        model: ResourceModel,
        rng: np.random.Generator,
        replication_lag: int = 1,
    ):
        if replication_lag < 0:
            raise ValueError("replication_lag must be >= 0")
        self.name = name
        self.role = role
        self.model = model
        self.condition = DatabaseCondition()
        self._rng = rng
        self._replication_lag = replication_lag
        self._pending_writes: Deque[RequestMix] = deque()
        self._modulation = 1.0

    @property
    def is_primary(self) -> bool:
        return self.role is DatabaseRole.PRIMARY

    def enqueue_replication(self, write_mix: RequestMix) -> None:
        """Queue the primary's write stream for later application."""
        if self.is_primary:
            raise RuntimeError("the primary does not consume replication")
        self._pending_writes.append(write_mix)

    def _due_replication(self) -> RequestMix:
        """Writes whose lag has elapsed this tick."""
        due = RequestMix()
        while len(self._pending_writes) > self._replication_lag:
            due = due.combined(self._pending_writes.popleft())
        return due

    def _advance_modulation(self) -> float:
        """Step the primary-side AR(1) multiplicative modulation."""
        innovation = self._rng.normal(0.0, _MODULATION_SIGMA)
        self._modulation = (
            1.0 + _MODULATION_PHI * (self._modulation - 1.0) + innovation
        )
        # Keep the multiplier positive and bounded.
        self._modulation = float(np.clip(self._modulation, 0.3, 2.5))
        return self._modulation

    def process_tick(
        self, read_mix: RequestMix, write_mix: Optional[RequestMix] = None
    ) -> np.ndarray:
        """Execute one monitoring interval; return the KPI vector.

        Parameters
        ----------
        read_mix:
            This database's balanced share of the unit's reads.
        write_mix:
            The unit's write stream; only meaningful for the primary
            (replicas receive writes via :meth:`enqueue_replication`).
        """
        if self.is_primary:
            executed = read_mix.combined(write_mix or RequestMix())
        else:
            executed = read_mix.combined(self._due_replication())
        values = self.model.compute_kpis(executed, self.condition, self._rng)
        if self.is_primary:
            modulation = self._advance_modulation()
            for index in _RR_ONLY_INDICES:
                values[index] *= modulation
        return values
