"""Cloud-database cluster simulator (the paper's experimental substrate).

Reproduces the architecture of Figure 2 as a discrete-time simulation:
a :class:`~repro.cluster.cluster.Cluster` contains units, each
:class:`~repro.cluster.unit.Unit` deploys a load-balance module and one
primary plus several replica :class:`~repro.cluster.database.Database`
objects.  SQL demand arrives from a workload model
(:mod:`repro.workloads`), reads are spread by the balancer, writes hit the
primary and replicate to the replicas, and a bypass
:class:`~repro.cluster.monitor.BypassMonitor` samples the 14 KPIs of
Table II every 5 seconds — including the per-database collection delays
and measurement noise that motivate the KCD's delay tolerance.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.database import Database, DatabaseRole
from repro.cluster.kpis import (
    KPI_INDEX,
    KPI_NAMES,
    KPIDefinition,
    KPI_REGISTRY,
)
from repro.cluster.loadbalancer import (
    DefectiveBalancer,
    LoadBalancer,
    UniformBalancer,
    WeightedBalancer,
)
from repro.cluster.monitor import BypassMonitor, MonitorSettings
from repro.cluster.requests import RequestMix
from repro.cluster.resources import ResourceModel
from repro.cluster.unit import Unit

__all__ = [
    "Cluster",
    "Database",
    "DatabaseRole",
    "KPI_NAMES",
    "KPI_INDEX",
    "KPI_REGISTRY",
    "KPIDefinition",
    "LoadBalancer",
    "UniformBalancer",
    "WeightedBalancer",
    "DefectiveBalancer",
    "BypassMonitor",
    "MonitorSettings",
    "RequestMix",
    "ResourceModel",
    "Unit",
]
