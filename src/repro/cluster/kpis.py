"""Key Performance Indicator registry (Table II).

The 14 KPIs the paper monitors, with their UKPIC correlation types:
``P-R`` means the primary database correlates with the replicas on this
KPI, ``R-R`` means replicas correlate with each other.  KPIs typed ``R-R``
only (the command and row-write counters, and TPS) decorrelate from the
primary because the primary's execution path differs — transaction
coordination, group commit and maintenance writes perturb its counters —
which the simulator reproduces via primary-side modulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["KPIDefinition", "KPI_REGISTRY", "KPI_NAMES", "KPI_INDEX"]


@dataclass(frozen=True)
class KPIDefinition:
    """One monitored indicator.

    Parameters
    ----------
    name:
        Machine name used as array key throughout the library.
    display_name:
        Table II's human-readable name.
    correlation_type:
        ``("P-R", "R-R")`` or ``("R-R",)`` — which unit pairings exhibit
        UKPIC on this indicator.
    cumulative:
        Whether the KPI integrates over time (e.g. Real Capacity) rather
        than being a per-interval rate.
    """

    name: str
    display_name: str
    correlation_type: Tuple[str, ...]
    cumulative: bool = False

    @property
    def primary_correlated(self) -> bool:
        """Whether the primary participates in this KPI's UKPIC."""
        return "P-R" in self.correlation_type


#: Table II, in the paper's row order.
KPI_REGISTRY: Tuple[KPIDefinition, ...] = (
    KPIDefinition("com_insert", "Com Insert", ("R-R",)),
    KPIDefinition("com_update", "Com Update", ("R-R",)),
    KPIDefinition("cpu_utilization", "CPU Utilization", ("P-R", "R-R")),
    KPIDefinition(
        "bufferpool_read_requests", "BufferPool Read Request", ("P-R", "R-R")
    ),
    KPIDefinition("innodb_data_writes", "Innodb Data Writes", ("P-R", "R-R")),
    KPIDefinition("innodb_data_written", "Innodb Data Written", ("P-R", "R-R")),
    KPIDefinition("innodb_rows_deleted", "Innodb Rows Deleted", ("R-R",)),
    KPIDefinition("innodb_rows_inserted", "Innodb Rows Inserted", ("R-R",)),
    KPIDefinition("innodb_rows_read", "Innodb Rows Read", ("P-R", "R-R")),
    KPIDefinition("innodb_rows_updated", "Innodb Row Updated", ("P-R", "R-R")),
    KPIDefinition("requests_per_second", "Requests Per Second", ("P-R", "R-R")),
    KPIDefinition("total_requests", "Total Requests", ("P-R", "R-R")),
    KPIDefinition("real_capacity", "Real Capacity", ("P-R", "R-R"), cumulative=True),
    KPIDefinition("transactions_per_second", "Transactions Per Second", ("R-R",)),
)

#: KPI machine names in registry order — the canonical KPI axis everywhere.
KPI_NAMES: Tuple[str, ...] = tuple(kpi.name for kpi in KPI_REGISTRY)

#: Machine name -> axis index.
KPI_INDEX: Dict[str, int] = {kpi.name: i for i, kpi in enumerate(KPI_REGISTRY)}
