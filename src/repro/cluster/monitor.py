"""Bypass monitoring system.

Cloud vendors collect KPI series through a bypass pipeline whose
collection, processing and distribution stages add per-database
*point-in-time delays* (Section II-D, challenge 1).  The monitor wraps a
unit: each tick it records the unit's raw KPI matrix but *reports* each
database's values ``d`` ticks late, with ``d`` drawn per database.  These
delays are exactly what the KCD's delay scan compensates for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.cluster.requests import RequestMix
from repro.cluster.unit import Unit
from repro.obs import runtime as obs

__all__ = ["MonitorSettings", "BypassMonitor"]


@dataclass(frozen=True)
class MonitorSettings:
    """Collection pipeline parameters.

    Parameters
    ----------
    interval_seconds:
        Collection interval between data points (5 s in the paper).
    max_collection_delay:
        Upper bound (inclusive) on the per-database delay in ticks; each
        database draws its delay once (pipeline topology is stable).
    dropout_probability:
        Chance that a tick's sample for a database is lost and replaced by
        the previous reported value (monitoring gaps happen in practice).
    """

    interval_seconds: float = 5.0
    max_collection_delay: int = 2
    dropout_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.max_collection_delay < 0:
            raise ValueError("max_collection_delay must be >= 0")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must lie in [0, 1)")


class BypassMonitor:
    """Collects delayed KPI series from a unit.

    Parameters
    ----------
    unit:
        The simulated unit to monitor.
    settings:
        Pipeline parameters.
    seed:
        Seeds delay assignment and dropout.
    """

    def __init__(
        self,
        unit: Unit,
        settings: Optional[MonitorSettings] = None,
        seed: Optional[int] = None,
    ):
        self.unit = unit
        self.settings = settings if settings is not None else MonitorSettings()
        self._rng = np.random.default_rng(seed)
        self.delays = self._rng.integers(
            0, self.settings.max_collection_delay + 1, size=unit.n_databases
        )

    def collect(
        self,
        mixes: Sequence[RequestMix],
        injectors: Sequence = (),
    ) -> np.ndarray:
        """Run the unit over a workload and return the *reported* series.

        Parameters
        ----------
        mixes:
            Per-tick unit-level request mixes.
        injectors:
            Simulation injectors (see :mod:`repro.anomalies`); each gets a
            ``before_tick(unit, tick)`` call ahead of every step so it can
            perturb routing or database conditions.

        Returns
        -------
        numpy.ndarray
            Reported KPI series of shape ``(n_databases, n_kpis, n_ticks)``.
            Database ``d``'s reported value at tick ``t`` is its raw value
            at ``t - delay[d]`` (the first ticks repeat the earliest raw
            sample, as a warming pipeline would).

        Notes
        -----
        RNG contract versus :meth:`stream`: this batch path draws the whole
        ``(n_databases, n_ticks)`` dropout matrix *upfront* (tick 0's row is
        drawn but never applied), while the online path draws one
        ``n_databases`` vector *per tick* starting at tick 1.  The two
        paths therefore agree tick-for-tick at ``dropout_probability == 0``
        and agree only *in distribution* (same per-tick dropout rate, same
        repeat-last-frame semantics, different individual draws) under
        nonzero dropout — an equivalence pinned by the monitor tests.
        """
        if injectors:
            frames = []
            for mix in mixes:
                tick = self.unit.tick
                for injector in injectors:
                    injector.before_tick(self.unit, tick)
                frames.append(self.unit.step(mix))
            raw = np.stack(frames, axis=-1)
        else:
            raw = self.unit.run(mixes)  # (D, K, T)
        n_dbs, _, n_ticks = raw.shape
        reported = np.empty_like(raw)
        for db in range(n_dbs):
            delay = int(self.delays[db])
            if delay == 0:
                reported[db] = raw[db]
            else:
                reported[db, :, delay:] = raw[db, :, : n_ticks - delay]
                reported[db, :, :delay] = raw[db, :, :1]
        if self.settings.dropout_probability > 0.0:
            drops = (
                self._rng.random((n_dbs, n_ticks)) < self.settings.dropout_probability
            )
            for db in range(n_dbs):
                for t in range(1, n_ticks):
                    if drops[db, t]:
                        reported[db, :, t] = reported[db, :, t - 1]
            if obs.is_enabled():
                obs.counter("monitor.dropout_ticks").increment(
                    int(np.count_nonzero(drops[:, 1:]))
                )
        obs.counter("monitor.ticks_collected").increment(n_ticks)
        return reported

    def stream(
        self,
        mixes: Sequence[RequestMix],
        injectors: Sequence = (),
    ) -> Iterator[np.ndarray]:
        """Online variant of :meth:`collect`: yield one reported tick at a
        time, as the real bypass pipeline delivers them every 5 seconds.

        Each yielded array has shape ``(n_databases, n_kpis)`` and applies
        the same per-database point-in-time delays (a short raw-frame ring
        covers the deepest delay) and dropout semantics as the batch path.
        With ``dropout_probability == 0`` the stream is tick-for-tick
        identical to :meth:`collect` on the same monitor seed; with
        dropout the RNG is consumed per tick instead of upfront, so the
        two paths match in distribution rather than sample-for-sample.
        This is what :class:`repro.service.sources.MonitorSource` feeds
        the online detection service from.
        """
        n_dbs = self.unit.n_databases
        max_delay = int(self.delays.max()) if n_dbs else 0
        history: List[np.ndarray] = []
        previous: Optional[np.ndarray] = None
        dropout = self.settings.dropout_probability
        for mix in mixes:
            tick = self.unit.tick
            for injector in injectors:
                injector.before_tick(self.unit, tick)
            raw = self.unit.step(mix)
            history.append(raw)
            if len(history) > max_delay + 1:
                history.pop(0)
            reported = np.empty_like(raw)
            for db in range(n_dbs):
                index = len(history) - 1 - int(self.delays[db])
                source = history[index] if index >= 0 else history[0]
                reported[db] = source[db]
            if dropout > 0.0 and previous is not None:
                drops = self._rng.random(n_dbs) < dropout
                reported[drops] = previous[drops]
                if obs.is_enabled():
                    obs.counter("monitor.dropout_ticks").increment(
                        int(np.count_nonzero(drops))
                    )
            previous = reported
            obs.counter("monitor.ticks_streamed").increment()
            yield reported
