"""SQL request mixes.

A :class:`RequestMix` is one tick's worth of demand for one target (a unit
before balancing, or a single database after).  Workload models produce
unit-level mixes; the load balancer splits them; the resource model turns a
database's share into KPI values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RequestMix"]


@dataclass(frozen=True)
class RequestMix:
    """Counts of SQL operations arriving during one monitoring interval.

    Parameters
    ----------
    selects:
        Read statements (point + range selects).
    inserts, updates, deletes:
        Write statements by kind.
    transactions:
        Transaction commits the statements belong to.
    rows_per_select:
        Average rows examined per read statement — workload-dependent
        (range scans on big tables examine more), carried with the mix so
        the resource model can derive rows-read and buffer-pool pressure.
    bytes_per_row:
        Average row payload in bytes, for the data-written KPI.
    """

    selects: float = 0.0
    inserts: float = 0.0
    updates: float = 0.0
    deletes: float = 0.0
    transactions: float = 0.0
    rows_per_select: float = 10.0
    bytes_per_row: float = 200.0

    def __post_init__(self) -> None:
        for name in ("selects", "inserts", "updates", "deletes", "transactions"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.rows_per_select <= 0:
            raise ValueError("rows_per_select must be positive")
        if self.bytes_per_row <= 0:
            raise ValueError("bytes_per_row must be positive")

    @property
    def writes(self) -> float:
        """Total write statements."""
        return self.inserts + self.updates + self.deletes

    @property
    def total(self) -> float:
        """Total statements (the Requests-Per-Second numerator)."""
        return self.selects + self.writes

    def scaled(self, factor: float) -> "RequestMix":
        """Mix with all counts multiplied by ``factor`` (routing share)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return RequestMix(
            selects=self.selects * factor,
            inserts=self.inserts * factor,
            updates=self.updates * factor,
            deletes=self.deletes * factor,
            transactions=self.transactions * factor,
            rows_per_select=self.rows_per_select,
            bytes_per_row=self.bytes_per_row,
        )

    def reads_only(self) -> "RequestMix":
        """The read portion (what the balancer spreads across databases)."""
        return RequestMix(
            selects=self.selects,
            transactions=0.0,
            rows_per_select=self.rows_per_select,
            bytes_per_row=self.bytes_per_row,
        )

    def writes_only(self) -> "RequestMix":
        """The write portion (what the primary executes and replicates)."""
        return RequestMix(
            inserts=self.inserts,
            updates=self.updates,
            deletes=self.deletes,
            transactions=self.transactions,
            rows_per_select=self.rows_per_select,
            bytes_per_row=self.bytes_per_row,
        )

    def combined(self, other: "RequestMix") -> "RequestMix":
        """Sum of two mixes; per-row parameters are count-weighted averages."""
        total_selects = self.selects + other.selects
        if total_selects > 0:
            rows = (
                self.selects * self.rows_per_select
                + other.selects * other.rows_per_select
            ) / total_selects
        else:
            rows = self.rows_per_select
        total_writes = self.writes + other.writes
        if total_writes > 0:
            payload = (
                self.writes * self.bytes_per_row + other.writes * other.bytes_per_row
            ) / total_writes
        else:
            payload = self.bytes_per_row
        return RequestMix(
            selects=total_selects,
            inserts=self.inserts + other.inserts,
            updates=self.updates + other.updates,
            deletes=self.deletes + other.deletes,
            transactions=self.transactions + other.transactions,
            rows_per_select=rows,
            bytes_per_row=payload,
        )
