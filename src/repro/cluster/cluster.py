"""Database cluster and global transactions manager.

The top of Figure 2: a cluster groups units per geographical area; the
global transactions manager (GTM) distributes the application's SQL demand
across units.  Units are independent detection scopes, so the cluster's
role in the reproduction is mostly orchestration: it fans one
application-level demand series out into per-unit request mixes and steps
every unit in lockstep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.requests import RequestMix
from repro.cluster.unit import Unit

__all__ = ["GlobalTransactionManager", "Cluster"]


class GlobalTransactionManager:
    """Splits application demand across units.

    Parameters
    ----------
    weights:
        Relative share of demand per unit; defaults to equal shares.
    jitter:
        Relative per-tick noise on the shares (routing is never exact).
    seed:
        Seeds the jitter.
    """

    def __init__(
        self,
        n_units: int,
        weights: Optional[Sequence[float]] = None,
        jitter: float = 0.02,
        seed: Optional[int] = None,
    ):
        if n_units < 1:
            raise ValueError("need at least one unit")
        if weights is None:
            base = np.full(n_units, 1.0 / n_units)
        else:
            base = np.asarray(weights, dtype=np.float64)
            if base.shape != (n_units,) or (base <= 0).any():
                raise ValueError("weights must be positive, one per unit")
            base = base / base.sum()
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._base = base
        self._jitter = jitter
        self._rng = np.random.default_rng(seed)

    def split(self, mix: RequestMix) -> List[RequestMix]:
        """One tick of application demand, split per unit."""
        if self._jitter > 0:
            noisy = self._base * self._rng.normal(1.0, self._jitter, self._base.size)
            noisy = np.clip(noisy, 1e-9, None)
            shares = noisy / noisy.sum()
        else:
            shares = self._base
        return [mix.scaled(float(share)) for share in shares]


class Cluster:
    """A set of units plus the GTM that feeds them.

    Parameters
    ----------
    units:
        The units of this cluster.
    gtm:
        Demand splitter; defaults to equal shares with small jitter.
    """

    def __init__(
        self,
        units: Sequence[Unit],
        gtm: Optional[GlobalTransactionManager] = None,
    ):
        if not units:
            raise ValueError("a cluster needs at least one unit")
        self.units = list(units)
        self.gtm = (
            gtm if gtm is not None else GlobalTransactionManager(len(self.units))
        )

    @property
    def n_units(self) -> int:
        return len(self.units)

    def unit_by_name(self, name: str) -> Unit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise KeyError(f"no unit named {name!r}")

    def step(self, mix: RequestMix) -> Dict[str, np.ndarray]:
        """Distribute one tick of demand and step every unit.

        Returns
        -------
        dict
            Unit name -> raw ``(n_databases, n_kpis)`` KPI matrix.
        """
        shares = self.gtm.split(mix)
        return {
            unit.name: unit.step(share) for unit, share in zip(self.units, shares)
        }

    def run(self, mixes: Sequence[RequestMix]) -> Dict[str, np.ndarray]:
        """Run every unit over the demand series.

        Returns
        -------
        dict
            Unit name -> ``(n_databases, n_kpis, n_ticks)`` series.
        """
        frames: Dict[str, List[np.ndarray]] = {unit.name: [] for unit in self.units}
        for mix in mixes:
            for name, values in self.step(mix).items():
                frames[name].append(values)
        return {
            name: np.stack(values, axis=-1) for name, values in frames.items()
        }
