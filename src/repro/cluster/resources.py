"""Database resource model: request mix -> KPI vector.

Maps one tick's :class:`~repro.cluster.requests.RequestMix` to the 14
Table II indicators for one database, mimicking a MySQL 5.7 instance of the
paper's size (4 cores / 8 GB RAM / 50 GB disk).  The model is intentionally
first-order — linear op costs with a saturating CPU — because the detector
only ever sees *trends*; what matters is that every KPI responds
monotonically to its driving load components, which is exactly what makes
the UKPIC phenomenon appear across databases sharing a workload.

Anomaly injectors act through :class:`DatabaseCondition`: multipliers and
leak terms that the injectors of :mod:`repro.anomalies` adjust per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.kpis import KPI_INDEX, KPI_NAMES
from repro.cluster.requests import RequestMix

__all__ = ["DatabaseCondition", "ResourceModel"]


@dataclass
class DatabaseCondition:
    """Mutable per-database state the resource model reads and updates.

    The multiplier fields default to neutral values; anomaly injectors
    perturb them (e.g. a slow-query storm raises ``cpu_multiplier`` and
    ``rows_read_multiplier``; fragmentation feeds ``capacity_leak_bytes``).
    """

    #: Bytes of live data currently stored (drives Real Capacity).
    stored_bytes: float = 5e9
    #: Extra dead bytes from fragmentation (delete/insert churn).
    fragmented_bytes: float = 0.0
    #: Multiplies the computed CPU utilization (slow queries, hot spots).
    cpu_multiplier: float = 1.0
    #: Multiplies rows examined per select (bad plans, missing indexes).
    rows_read_multiplier: float = 1.0
    #: Extra dead bytes accumulated per tick while fragmentation is active.
    capacity_leak_bytes: float = 0.0
    #: Additive CPU percentage (maintenance tasks, backups).
    cpu_background: float = 0.0
    #: Multiplies every throughput KPI (stalls throttle the whole database).
    throughput_multiplier: float = 1.0
    #: Multiplies page-level IO (buffer-pool reads, data writes): storage
    #: fragmentation spreads rows over more pages.
    page_amplification: float = 1.0

    def reset_effects(self) -> None:
        """Return all anomaly knobs to neutral (storage state persists)."""
        self.cpu_multiplier = 1.0
        self.rows_read_multiplier = 1.0
        self.capacity_leak_bytes = 0.0
        self.cpu_background = 0.0
        self.throughput_multiplier = 1.0
        self.page_amplification = 1.0


@dataclass(frozen=True)
class ResourceModel:
    """Cost coefficients of the simulated MySQL instance.

    Defaults approximate the paper's 4-core instances: roughly 40k simple
    row operations per core-second saturate a core.

    Parameters
    ----------
    cores:
        CPU cores available to the instance.
    row_ops_per_core_second:
        Row operations one core sustains per second at 100 % utilization.
    interval_seconds:
        Monitoring interval (5 s in the paper).
    """

    cores: int = 4
    row_ops_per_core_second: float = 40_000.0
    interval_seconds: float = 5.0
    #: Relative CPU cost of one examined row on the read path.
    read_row_cost: float = 1.0
    #: Relative CPU cost of one write statement (redo + index maintenance).
    write_cost: float = 6.0
    #: Relative CPU cost of one transaction commit (fsync amortized).
    transaction_cost: float = 3.0
    #: Buffer-pool page touches per examined row (indexes + data page).
    pages_per_row: float = 1.3
    #: Physical write operations per write statement (redo, doublewrite).
    io_writes_per_statement: float = 2.2
    #: Write amplification on bytes (redo + binlog + page rewrites).
    write_amplification: float = 2.5
    #: Relative sampling noise applied to every rate KPI.  Kept small:
    #: these are exact server counters, so per-database divergence should
    #: come almost entirely from load balancing, not measurement error.
    noise_scale: float = 0.006

    def compute_kpis(
        self,
        mix: RequestMix,
        condition: DatabaseCondition,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One tick: KPI vector in :data:`~repro.cluster.kpis.KPI_NAMES` order.

        Also advances the cumulative parts of ``condition`` (stored and
        fragmented bytes).
        """
        throttle = condition.throughput_multiplier
        effective = mix.scaled(throttle) if throttle != 1.0 else mix

        rows_read = (
            effective.selects
            * effective.rows_per_select
            * condition.rows_read_multiplier
        )
        rows_inserted = effective.inserts
        rows_updated = effective.updates
        rows_deleted = effective.deletes

        cpu_cost = (
            rows_read * self.read_row_cost
            + effective.writes * self.write_cost
            + effective.transactions * self.transaction_cost
        )
        capacity_ops = self.cores * self.row_ops_per_core_second * self.interval_seconds
        raw_cpu = 100.0 * cpu_cost / capacity_ops
        cpu = raw_cpu * condition.cpu_multiplier + condition.cpu_background
        # Soft saturation near 100 %: a real instance queues rather than
        # exceeding its cores.
        cpu = 100.0 * (1.0 - np.exp(-cpu / 100.0)) if cpu > 0 else 0.0

        bufferpool_reads = rows_read * self.pages_per_row * condition.page_amplification
        data_writes = (
            effective.writes * self.io_writes_per_statement
            * condition.page_amplification
        )
        data_written = (
            effective.writes * effective.bytes_per_row * self.write_amplification
        )

        # Storage bookkeeping: inserts add bytes, deletes free them but
        # leave dead space behind (the Figure 12 fragmentation mechanism).
        added = rows_inserted * effective.bytes_per_row
        freed = rows_deleted * effective.bytes_per_row
        condition.stored_bytes = max(0.0, condition.stored_bytes + added - freed)
        condition.fragmented_bytes += 0.3 * freed + condition.capacity_leak_bytes
        real_capacity = condition.stored_bytes + condition.fragmented_bytes

        requests_per_second = effective.total / self.interval_seconds
        transactions_per_second = effective.transactions / self.interval_seconds

        values = np.zeros(len(KPI_NAMES), dtype=np.float64)
        values[KPI_INDEX["com_insert"]] = effective.inserts
        values[KPI_INDEX["com_update"]] = effective.updates
        values[KPI_INDEX["cpu_utilization"]] = cpu
        values[KPI_INDEX["bufferpool_read_requests"]] = bufferpool_reads
        values[KPI_INDEX["innodb_data_writes"]] = data_writes
        values[KPI_INDEX["innodb_data_written"]] = data_written
        values[KPI_INDEX["innodb_rows_deleted"]] = rows_deleted
        values[KPI_INDEX["innodb_rows_inserted"]] = rows_inserted
        values[KPI_INDEX["innodb_rows_read"]] = rows_read
        values[KPI_INDEX["innodb_rows_updated"]] = rows_updated
        values[KPI_INDEX["requests_per_second"]] = requests_per_second
        values[KPI_INDEX["total_requests"]] = effective.total
        values[KPI_INDEX["real_capacity"]] = real_capacity
        values[KPI_INDEX["transactions_per_second"]] = transactions_per_second

        if self.noise_scale > 0.0:
            noise = rng.normal(1.0, self.noise_scale, size=values.shape)
            # Capacity is a gauge read from the filesystem: effectively
            # noise-free compared to per-interval rate counters.
            noise[KPI_INDEX["real_capacity"]] = 1.0
            values = np.clip(values * noise, 0.0, None)
        values[KPI_INDEX["cpu_utilization"]] = min(
            values[KPI_INDEX["cpu_utilization"]], 100.0
        )
        return values
