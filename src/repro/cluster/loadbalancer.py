"""Load balancing strategies.

The balancer decides how a unit's read traffic splits across databases each
tick.  Under a healthy strategy shares hover near equal — the first cause
of the UKPIC phenomenon ("the number of SQLs processed by each database is
similar").  The :class:`DefectiveBalancer` reproduces the Figure 4
incident: a buggy strategy maps an outsized share onto one database,
breaking UKPIC on its KPIs.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "LoadBalancer",
    "UniformBalancer",
    "WeightedBalancer",
    "DefectiveBalancer",
]


class LoadBalancer(abc.ABC):
    """Strategy interface: per-tick read routing weights."""

    @abc.abstractmethod
    def read_weights(
        self, tick: int, n_databases: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Non-negative weights summing to 1, one per database."""


def _validated(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if total <= 0:
        raise ValueError("routing weights must have a positive sum")
    return weights / total


class UniformBalancer(LoadBalancer):
    """Near-equal routing with Dirichlet jitter.

    Parameters
    ----------
    concentration:
        Dirichlet concentration per database; larger values keep shares
        closer to exactly equal.  The jitter is what prevents the unit's
        KPI series from being *identical* — they are correlated in trend,
        not in value, as Figure 3(a) shows.  The default gives ~1 %
        relative share noise, consistent with per-request balancing over
        tens of thousands of requests per interval.
    """

    def __init__(self, concentration: float = 4000.0):
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self.concentration = concentration

    def read_weights(
        self, tick: int, n_databases: int, rng: np.random.Generator
    ) -> np.ndarray:
        alphas = np.full(n_databases, self.concentration)
        return _validated(rng.dirichlet(alphas))


class WeightedBalancer(LoadBalancer):
    """Static weighted routing with Dirichlet jitter (heterogeneous fleet)."""

    def __init__(self, weights: Sequence[float], concentration: float = 200.0):
        base = np.asarray(weights, dtype=np.float64)
        if base.ndim != 1 or base.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if (base <= 0).any():
            raise ValueError("all weights must be positive")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self._base = base / base.sum()
        self.concentration = concentration

    def read_weights(
        self, tick: int, n_databases: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_databases != self._base.size:
            raise ValueError(
                f"balancer configured for {self._base.size} databases, "
                f"asked for {n_databases}"
            )
        return _validated(rng.dirichlet(self._base * n_databases * self.concentration))


class DefectiveBalancer(LoadBalancer):
    """A buggy strategy that centrally maps traffic onto one database.

    Reproduces the Figure 4 abnormal issue: from ``start_tick`` (until
    ``end_tick`` if given), ``skew`` of the total read share is taken from
    the other databases and piled onto ``victim``.

    Parameters
    ----------
    inner:
        The healthy strategy in effect outside the defect window.
    victim:
        Index of the database receiving the skewed traffic.
    skew:
        Peak extra share (0..1) routed to the victim during the defect.
    start_tick, end_tick:
        Defect activity window (``end_tick=None`` means forever).
    flapping:
        When ``True`` (default) the effective skew wanders between ~40 %
        and 100 % of ``skew`` via an AR(1) process: the misrouted tenant's
        own traffic pattern rides on top of the unit's, which is what
        actually breaks trend correlation.  A perfectly constant skew
        would only rescale the victim's trend.
    """

    def __init__(
        self,
        inner: LoadBalancer,
        victim: int,
        skew: float = 0.4,
        start_tick: int = 0,
        end_tick: Optional[int] = None,
        flapping: bool = True,
    ):
        if not 0.0 < skew < 1.0:
            raise ValueError("skew must lie in (0, 1)")
        if victim < 0:
            raise ValueError("victim index must be non-negative")
        if end_tick is not None and end_tick <= start_tick:
            raise ValueError("end_tick must exceed start_tick")
        self.inner = inner
        self.victim = victim
        self.skew = skew
        self.start_tick = start_tick
        self.end_tick = end_tick
        self.flapping = flapping
        self._level = 1.0

    def active(self, tick: int) -> bool:
        """Whether the defect distorts routing at this tick."""
        if tick < self.start_tick:
            return False
        return self.end_tick is None or tick < self.end_tick

    def read_weights(
        self, tick: int, n_databases: int, rng: np.random.Generator
    ) -> np.ndarray:
        weights = self.inner.read_weights(tick, n_databases, rng)
        if not self.active(tick):
            return weights
        if self.victim >= n_databases:
            raise ValueError(
                f"victim {self.victim} out of range for {n_databases} databases"
            )
        effective = self.skew
        if self.flapping:
            self._level = float(
                np.clip(0.55 * self._level + 0.45 * rng.uniform(0.1, 1.5), 0.35, 1.0)
            )
            effective = self.skew * self._level
        skewed = weights * (1.0 - effective)
        skewed[self.victim] += effective
        return _validated(skewed)
