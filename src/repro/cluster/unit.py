"""Unit: load balancer + one primary and several replica databases.

A unit is the scope of the UKPIC phenomenon and the entity DBCatcher
monitors.  Each simulation tick the unit receives the workload's request
mix, splits the reads per the balancer, executes the writes on the primary,
feeds the replication stream to the replicas, and returns the raw KPI
matrix for the tick.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.database import Database, DatabaseRole
from repro.cluster.kpis import KPI_NAMES
from repro.cluster.loadbalancer import LoadBalancer, UniformBalancer
from repro.cluster.requests import RequestMix
from repro.cluster.resources import ResourceModel

__all__ = ["Unit"]


class Unit:
    """One cloud-database unit (Figure 2).

    Parameters
    ----------
    name:
        Unit identifier.
    n_databases:
        Total databases; index 0 is the primary, the rest replicas
        (the paper's units run 1 primary + 4 replicas).
    balancer:
        Read-routing strategy; defaults to a healthy
        :class:`~repro.cluster.loadbalancer.UniformBalancer`.
    model:
        Shared resource model (homogeneous fleet, as in the paper's 4C/8G
        instances).
    seed:
        Seeds the unit-level generator; each database derives its own
        child generator so noise is independent across databases.
    replication_lag:
        Ticks of primary->replica replication delay.  Defaults to 0:
        healthy MySQL replication lag is sub-second, far below the 5 s
        monitoring tick, so writes land on every database within the same
        sample.  (A non-zero lag phase-splits the primary's read+write
        signal from the replicas' in a way no *single* delay aligns,
        which is a replication *incident*, not the healthy baseline.)
    """

    def __init__(
        self,
        name: str,
        n_databases: int = 5,
        balancer: Optional[LoadBalancer] = None,
        model: Optional[ResourceModel] = None,
        seed: Optional[int] = None,
        replication_lag: int = 0,
    ):
        if n_databases < 2:
            raise ValueError("a unit needs at least 2 databases")
        self.name = name
        self.balancer = balancer if balancer is not None else UniformBalancer()
        self.model = model if model is not None else ResourceModel()
        self._rng = np.random.default_rng(seed)
        child_seeds = self._rng.integers(0, 2**63 - 1, size=n_databases)
        self.databases: List[Database] = [
            Database(
                name=f"D{i + 1}",
                role=DatabaseRole.PRIMARY if i == 0 else DatabaseRole.REPLICA,
                model=self.model,
                rng=np.random.default_rng(int(child_seeds[i])),
                replication_lag=replication_lag,
            )
            for i in range(n_databases)
        ]
        self._tick = 0

    @property
    def n_databases(self) -> int:
        return len(self.databases)

    @property
    def primary(self) -> Database:
        return self.databases[self.primary_index]

    @property
    def replicas(self) -> Sequence[Database]:
        return [db for db in self.databases if not db.is_primary]

    @property
    def kpi_names(self) -> tuple:
        return KPI_NAMES

    @property
    def tick(self) -> int:
        """Number of ticks simulated so far."""
        return self._tick

    @property
    def primary_index(self) -> int:
        """Index of the current primary database."""
        for index, database in enumerate(self.databases):
            if database.is_primary:
                return index
        raise RuntimeError("unit has no primary database")

    def failover(self, new_primary: int) -> None:
        """Promote a replica to primary (Figure 2's failover path).

        The old primary becomes a replica; queued-but-unapplied
        replication on the new primary is applied immediately at its next
        tick (it was already durable there).  Request processing then
        continues as before, as the paper describes.
        """
        if not 0 <= new_primary < self.n_databases:
            raise IndexError(
                f"database {new_primary} out of range for {self.n_databases}"
            )
        old_primary = self.primary_index
        if new_primary == old_primary:
            return
        from repro.cluster.database import DatabaseRole

        self.databases[old_primary].role = DatabaseRole.REPLICA
        self.databases[new_primary].role = DatabaseRole.PRIMARY
        self.databases[new_primary]._pending_writes.clear()

    def step(self, mix: RequestMix) -> np.ndarray:
        """Simulate one monitoring interval.

        Parameters
        ----------
        mix:
            The unit-level request mix for this tick (from the workload
            model, after the global transaction manager's split).

        Returns
        -------
        numpy.ndarray
            Raw KPI matrix of shape ``(n_databases, n_kpis)`` — before the
            bypass monitor's collection delays.
        """
        reads = mix.reads_only()
        writes = mix.writes_only()
        weights = self.balancer.read_weights(self._tick, self.n_databases, self._rng)
        for replica in self.replicas:
            replica.enqueue_replication(writes)
        values = np.zeros((self.n_databases, len(KPI_NAMES)), dtype=np.float64)
        for index, database in enumerate(self.databases):
            read_share = reads.scaled(float(weights[index]))
            if database.is_primary:
                values[index] = database.process_tick(read_share, writes)
            else:
                values[index] = database.process_tick(read_share)
        self._tick += 1
        return values

    def run(self, mixes: Sequence[RequestMix]) -> np.ndarray:
        """Simulate many ticks; returns ``(n_databases, n_kpis, n_ticks)``."""
        frames = [self.step(mix) for mix in mixes]
        return np.stack(frames, axis=-1)
