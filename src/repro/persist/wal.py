"""Append-only, crash-tolerant write-ahead log segments.

One record per line: an 8-hex-digit CRC-32 of the canonical JSON body,
a space, the body.  Appends are group-committed — all lines of a batch
are written, then flushed and fsync'd once — extending the per-record
fsync discipline of ``repro.service.alerts.JSONLSink`` to batches.

Readers are torn-tail tolerant by construction: a process killed
mid-append leaves at most one partial final line, which fails the
newline/CRC/JSON checks and is skipped (counted on the
``persist.wal_truncated`` counter), never raised.  Every complete
record before it is recovered.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import runtime as obs

__all__ = [
    "WAL_VERSION",
    "WalWriter",
    "decode_line",
    "encode_line",
    "read_segment",
]

#: Version of the WAL line format.
WAL_VERSION = 1


def encode_line(payload: Dict[str, Any]) -> str:
    """One WAL line: ``<crc32 hex> <canonical json>\\n``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n"


def decode_line(line: str) -> Optional[Dict[str, Any]]:
    """Decode one WAL line; ``None`` when it is torn or corrupt."""
    if not line.endswith("\n"):
        return None  # torn tail: the final newline never made it to disk
    text = line[:-1]
    if len(text) < 10 or text[8] != " ":
        return None
    crc_text, body = text[:8], text[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


class WalWriter:
    """Appender for one WAL segment (or the compaction archive).

    ``sync=True`` (the default) fsyncs every group-commit: a record is on
    stable storage before :meth:`append` returns.  ``sync=False`` only
    flushes to the OS — a *process* crash (SIGKILL, OOM kill) still
    loses nothing because the page cache survives the process; only a
    kernel panic or power loss can drop the unsynced tail, which
    recovery then simply re-derives live.
    """

    def __init__(self, path: str, sync: bool = True):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self.sync = sync
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, payloads: Sequence[Dict[str, Any]]) -> int:
        """Group-commit a batch of records: write all, flush (+fsync) once."""
        if not payloads:
            return 0
        data = "".join(encode_line(payload) for payload in payloads)
        self._handle.write(data)
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
            obs.counter("persist.wal_fsyncs").increment()
        obs.counter("persist.wal_appends").increment(len(payloads))
        obs.counter("persist.wal_bytes").increment(len(data.encode("utf-8")))
        return len(payloads)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_segment(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Decode one segment file, tolerating a torn tail.

    Returns
    -------
    (payloads, truncated)
        Records decoded in order, and whether decoding stopped early on a
        torn/corrupt line.  Reading stops at the first bad line — under
        the append-only discipline everything after a tear is garbage.
    """
    payloads: List[Dict[str, Any]] = []
    truncated = False
    if not os.path.exists(path):
        return payloads, truncated
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            payload = decode_line(line)
            if payload is None:
                truncated = True
                obs.counter("persist.wal_truncated").increment()
                break
            payloads.append(payload)
    return payloads, truncated
