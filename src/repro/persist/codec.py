"""JSON codec for durable detector and service state.

Everything the persistence layer writes — snapshots and WAL records —
goes through these encoders so the on-disk format stays one versioned
JSON dialect.  Floats survive exactly: ``json`` serializes via ``repr``,
which round-trips every finite ``float64`` bit-for-bit (and the reader
accepts ``NaN``/``Infinity``), so a restored run can be pinned equal to
an uninterrupted one, not merely close.

Layout notes
------------
* :class:`~repro.core.records.JudgementRecord` stores its state as the
  enum *value* string (``"healthy"`` / ``"observable"`` / ``"abnormal"``).
* :class:`~repro.core.matrices.CorrelationMatrix` stores only its strict
  upper triangle, matching the in-memory layout — packed as base64 of
  little-endian ``float64`` bytes rather than a JSON number list: exact
  by construction, ~2x smaller, and an order of magnitude faster to
  encode, which matters because abnormal rounds persist one matrix per
  KPI on the serving path.  The decoder also accepts a plain list.
* Result ``records`` are keyed by database index; JSON objects force the
  keys to strings, so the decoder converts them back to ``int``.
* :func:`shift_state` re-anchors a detector state produced inside a
  worker process (local tick indices) to the scheduler's absolute tick
  axis, mirroring ``repro.service.workers._shift_result``.
"""

from __future__ import annotations

import base64
from dataclasses import asdict
from typing import Any, Dict, Optional

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import UnitDetectionResult
from repro.core.matrices import CorrelationMatrix
from repro.core.records import DatabaseState, JudgementRecord

__all__ = [
    "STATE_VERSION",
    "decode_config",
    "decode_matrix",
    "decode_record",
    "decode_result",
    "encode_config",
    "encode_matrix",
    "encode_record",
    "encode_result",
    "shift_state",
    "state_next_tick",
]

#: Version of the detector state / WAL round payload dialect.  Bump on
#: any change a previously written file could not be decoded under.
STATE_VERSION = 1


def encode_config(config: DBCatcherConfig) -> Dict[str, Any]:
    """Encode a detector config; every field is already JSON-friendly."""
    return asdict(config)


def decode_config(payload: Dict[str, Any]) -> DBCatcherConfig:
    data = dict(payload)
    for key in ("kpi_names", "alphas", "rr_only_kpis"):
        if data.get(key) is not None:
            data[key] = tuple(data[key])
    return DBCatcherConfig(**data)


def encode_record(record: JudgementRecord) -> Dict[str, Any]:
    return {
        "database": record.database,
        "window_start": record.window_start,
        "window_end": record.window_end,
        "state": record.state.value,
        "expansions": record.expansions,
        "kpi_levels": dict(record.kpi_levels),
        "dba_label": record.dba_label,
    }


def decode_record(payload: Dict[str, Any]) -> JudgementRecord:
    return JudgementRecord(
        database=int(payload["database"]),
        window_start=int(payload["window_start"]),
        window_end=int(payload["window_end"]),
        state=DatabaseState(payload["state"]),
        expansions=int(payload["expansions"]),
        kpi_levels={str(k): int(v) for k, v in payload["kpi_levels"].items()},
        dba_label=payload["dba_label"],
    )


def encode_matrix(matrix: CorrelationMatrix) -> Dict[str, Any]:
    packed = np.ascontiguousarray(matrix.triangle).astype("<f8", copy=False)
    return {
        "kpi": matrix.kpi,
        "n_databases": matrix.n_databases,
        "triangle": base64.b64encode(packed.tobytes()).decode("ascii"),
    }


def decode_matrix(payload: Dict[str, Any]) -> CorrelationMatrix:
    triangle = payload["triangle"]
    if isinstance(triangle, str):
        data = np.frombuffer(base64.b64decode(triangle), dtype="<f8")
        values = data.astype(np.float64)  # copy: frombuffer is read-only
    else:
        values = np.asarray(triangle, dtype=np.float64)
    return CorrelationMatrix(
        kpi=str(payload["kpi"]),
        n_databases=int(payload["n_databases"]),
        triangle=values,
    )


def encode_result(
    result: UnitDetectionResult, *, include_matrices: bool = True
) -> Dict[str, Any]:
    """Encode one detection round.

    ``include_matrices=False`` skips the correlation matrices without
    even encoding them — the write path uses it for healthy rounds,
    whose evidence would be stripped at the persistence boundary anyway.
    """
    keep = include_matrices and result.matrices is not None
    return {
        "start": result.start,
        "end": result.end,
        "records": {
            str(db): encode_record(record)
            for db, record in result.records.items()
        },
        "matrices": (
            [encode_matrix(m) for m in result.matrices] if keep else None
        ),
        "active": list(result.active) if keep and result.active is not None else None,
    }


def decode_result(payload: Dict[str, Any]) -> UnitDetectionResult:
    matrices = payload.get("matrices")
    active = payload.get("active")
    return UnitDetectionResult(
        start=int(payload["start"]),
        end=int(payload["end"]),
        records={
            int(db): decode_record(record)
            for db, record in payload["records"].items()
        },
        matrices=(
            None
            if matrices is None
            else tuple(decode_matrix(m) for m in matrices)
        ),
        active=None if active is None else tuple(bool(f) for f in active),
    )


def _shift_record(payload: Dict[str, Any], offset: int) -> Dict[str, Any]:
    shifted = dict(payload)
    shifted["window_start"] = payload["window_start"] + offset
    shifted["window_end"] = payload["window_end"] + offset
    return shifted


def _shift_result(payload: Dict[str, Any], offset: int) -> Dict[str, Any]:
    shifted = dict(payload)
    shifted["start"] = payload["start"] + offset
    shifted["end"] = payload["end"] + offset
    shifted["records"] = {
        db: _shift_record(record, offset)
        for db, record in payload["records"].items()
    }
    return shifted


def shift_state(state: Dict[str, Any], offset: int) -> Dict[str, Any]:
    """Re-anchor a ``DBCatcher.to_state()`` payload by ``offset`` ticks.

    A pool worker's detector counts ticks from its own (possibly
    restarted) local zero; the scheduler persists state on the absolute
    tick axis, so worker-exported states are shifted by the worker's
    known offset before they touch disk.
    """
    if not offset:
        return state
    shifted = dict(state)
    shifted["cursor"] = state["cursor"] + offset
    streams = dict(state["streams"])
    streams["base"] = streams["base"] + offset
    shifted["streams"] = streams
    shifted["history"] = [_shift_record(r, offset) for r in state["history"]]
    shifted["results"] = [_shift_result(r, offset) for r in state["results"]]
    return shifted


def state_next_tick(state: Dict[str, Any]) -> int:
    """Absolute index of the first tick a restored detector has not seen."""
    streams = state["streams"]
    return int(streams["base"]) + len(streams["ticks"])


def state_version(state: Optional[Dict[str, Any]]) -> Optional[int]:
    if not isinstance(state, dict):
        return None
    version = state.get("version")
    return version if isinstance(version, int) else None
