"""Atomic JSON snapshot files.

Generalizes the :class:`repro.tuning.TuningCheckpoint` write discipline:
serialize to a temporary file in the destination directory, fsync it,
then :func:`os.replace` over the target.  A reader therefore sees either
the previous complete snapshot or the new complete snapshot — never a
torn one — no matter when the writer is killed.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["SNAPSHOT_VERSION", "atomic_write_json", "read_json"]

#: Version of the snapshot file envelope.
SNAPSHOT_VERSION = 1


def atomic_write_json(path: str, payload: Dict[str, Any]) -> int:
    """Atomically replace ``path`` with ``payload`` as JSON.

    Returns
    -------
    int
        Bytes written, for the snapshot-size observability counter.
    """
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    os.makedirs(directory, exist_ok=True)
    data = (
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        + b"\n"
    )
    fd, temp_path = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, target)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return len(data)


def read_json(path: str) -> Optional[Dict[str, Any]]:
    """Load a snapshot file; ``None`` when it does not exist.

    Corruption raises: the atomic-replace discipline means a snapshot on
    disk is either absent or complete, so an unparsable file is operator
    damage worth surfacing, not a crash artifact to skip.
    """
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"snapshot {path} is not a JSON object")
    return payload
