"""Durable per-unit state stores: snapshot + WAL + compaction archive.

On-disk layout under a state root::

    <root>/meta.json                     format marker + version
    <root>/coordinator.json              TuningCoordinator state (optional)
    <root>/<unit>/snapshot.json          latest atomic detector snapshot
    <root>/<unit>/wal-<seq>.jsonl        live WAL segments (post-snapshot)
    <root>/<unit>/archive-<seq>.jsonl    frozen (compacted) segments
    <root>/<unit>/archive.jsonl          rewrite-path compaction output

Lifecycle per unit: completed detection rounds are appended to the
current WAL segment as they happen — with the correlation matrices of
healthy rounds stripped up front (only abnormal rounds need their KCD
evidence for root-cause replay).  Every ``snapshot_every`` rounds the
scheduler writes an atomic snapshot, the WAL rotates to a fresh
segment, and older segments are *compacted*: a segment fully covered by
the snapshot cursor is frozen by a single rename to
``archive-<seq>.jsonl`` (no decode, no rewrite); a segment holding
rounds newer than the cursor — possible only after unusual crash
interleavings — takes the slow path, splitting archived rounds into
``archive.jsonl`` and carrying newer rounds into the live segment.

Recovery is ``load_snapshot()`` + ``load_tail()`` (rounds newer than
the snapshot, replayed through ``DBCatcher.apply_result``) and
``load_history()`` (the full verdict history: archive + segments,
deduplicated, for rebuilding alert/incident state).  Every read path is
torn-tail tolerant; a crash at *any* instruction boundary loses at most
the rounds whose group-commit never completed.
"""

from __future__ import annotations

import os
import re
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.detector import UnitDetectionResult
from repro.obs import runtime as obs
from repro.persist.codec import STATE_VERSION, decode_result, encode_result
from repro.persist.snapshot import SNAPSHOT_VERSION, atomic_write_json, read_json
from repro.persist.wal import WalWriter, read_segment

__all__ = ["FleetStateStore", "UnitStore"]

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.jsonl$")
_ARCHIVE_RE = re.compile(r"^archive-(\d{8})\.jsonl$")


def _safe_name(unit: str) -> str:
    """Filesystem-safe directory name for a unit."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", unit) or "_"


def _round_key(payload: Dict[str, Any]) -> Any:
    body = payload["round"]
    return (int(body["start"]), int(body["end"]))


def _is_abnormal(body: Dict[str, Any]) -> bool:
    return any(
        record["state"] == "abnormal" for record in body["records"].values()
    )


def _strip_result_body(body: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the correlation matrices of a *healthy* encoded round.

    Matrices are KCD evidence for root-cause replay; only abnormal rounds
    ever need them again, and they dominate the encoded size of a round,
    so healthy rounds shed them at every persistence boundary.
    """
    if body.get("matrices") is None or _is_abnormal(body):
        return body
    return {**body, "matrices": None, "active": None}


class UnitStore:
    """Snapshot + WAL persistence for one unit's detector.

    ``wal_sync`` picks the fsync discipline: ``"commit"`` (the default)
    fsyncs every group-commit append; ``"snapshot"`` never fsyncs the
    WAL — the atomic snapshot itself is the durability point.  Either
    way a *process* crash loses nothing (the page cache outlives the
    process); under ``"snapshot"`` a power loss can drop post-snapshot
    rounds, which recovery then re-derives live — the equivalence
    contract holds in both modes.
    """

    def __init__(self, root: str, unit: str, wal_sync: str = "commit"):
        if wal_sync not in ("commit", "snapshot"):
            raise ValueError(
                f"wal_sync must be 'commit' or 'snapshot', got {wal_sync!r}"
            )
        self.wal_sync = wal_sync
        self.unit = unit
        self.directory = os.path.join(os.path.abspath(root), _safe_name(unit))
        os.makedirs(self.directory, exist_ok=True)
        self.snapshot_path = os.path.join(self.directory, "snapshot.json")
        self.archive_path = os.path.join(self.directory, "archive.jsonl")
        self._writer: Optional[WalWriter] = None
        # A reopened store always appends to a fresh segment; mixing new
        # writes into a segment a crashed writer may have torn would put
        # good records after a tear, where readers never look.  Frozen
        # archive segments keep their sequence number, so they count too.
        used = self._segments() + self._archived_segments()
        self._segment_seq = (max(used) + 1) if used else 1
        # Highest round end appended to each live segment *by this
        # process*; lets compaction freeze a fully-covered segment with a
        # rename instead of a decode/rewrite pass.
        self._segment_max_end: Dict[int, int] = {}

    # -- segments ---------------------------------------------------------

    def _segments(self) -> List[int]:
        """Sequence numbers of existing WAL segments, ascending."""
        found = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"wal-{seq:08d}.jsonl")

    def _archived_segments(self) -> List[int]:
        found = []
        for name in os.listdir(self.directory):
            match = _ARCHIVE_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _archived_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"archive-{seq:08d}.jsonl")

    def _current_writer(self) -> WalWriter:
        if self._writer is None:
            self._writer = WalWriter(
                self._segment_path(self._segment_seq),
                sync=self.wal_sync == "commit",
            )
        return self._writer

    # -- write path -------------------------------------------------------

    def append_rounds(self, results: Sequence[UnitDetectionResult]) -> None:
        """Group-commit completed rounds to the current WAL segment."""
        if not results:
            return
        # Healthy rounds shed their KCD evidence here, before it is even
        # encoded; only abnormal rounds pay for matrix serialization.
        self._current_writer().append(
            [
                {
                    "v": STATE_VERSION,
                    "type": "round",
                    "round": encode_result(
                        r, include_matrices=bool(r.abnormal_databases)
                    ),
                }
                for r in results
            ]
        )
        newest = max(int(r.end) for r in results)
        seq = self._segment_seq
        self._segment_max_end[seq] = max(
            self._segment_max_end.get(seq, newest), newest
        )

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically snapshot, rotate the WAL, and compact old segments.

        The persisted state is trimmed: the stream buffer of not-yet-judged
        ticks is dropped (recovery resumes the source at the cursor and
        re-derives the open round deterministically) and healthy retained
        rounds lose their matrices, same as in the WAL.
        """
        started = time.perf_counter()
        payload = {
            "version": SNAPSHOT_VERSION,
            "unit": self.unit,
            "state": self._trim_state(state),
        }
        written = atomic_write_json(self.snapshot_path, payload)
        self._rotate()
        self._compact(int(state["cursor"]))
        obs.counter("persist.snapshot_bytes").increment(written)
        obs.histogram("persist.snapshot_seconds").observe(
            time.perf_counter() - started
        )

    def _rotate(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._segment_seq += 1

    def _compact(self, cursor: int) -> None:
        """Fold rounds the snapshot already covers into the archive.

        The common case is free: healthy-round matrices were already
        stripped at append time, so a segment whose every round predates
        the snapshot cursor is frozen by renaming it to its
        ``archive-<seq>.jsonl`` name — one directory operation, no decode.
        Segments written by an *earlier* process (whose round spans this
        one never saw) or holding rounds newer than the cursor take the
        slow path: archived rounds are rewritten into ``archive.jsonl``
        and newer rounds are carried forward into the live segment.
        A crash mid-compaction leaves at most duplicates on the slow
        path, which every reader deduplicates by round span.
        """
        old = [s for s in self._segments() if s < self._segment_seq]
        if not old:
            return
        archived: List[Dict[str, Any]] = []
        carried: List[Dict[str, Any]] = []
        rewritten: List[int] = []
        for seq in old:
            known_end = self._segment_max_end.pop(seq, None)
            if known_end is not None and known_end <= cursor:
                os.replace(self._segment_path(seq), self._archived_path(seq))
                continue
            payloads, _ = read_segment(self._segment_path(seq))
            rewritten.append(seq)
            for payload in payloads:
                if payload.get("type") != "round":
                    continue
                if int(payload["round"]["end"]) <= cursor:
                    archived.append(self._strip(payload))
                else:
                    carried.append(payload)
        if archived:
            with WalWriter(
                self.archive_path, sync=self.wal_sync == "commit"
            ) as archive:
                archive.append(archived)
        if carried:
            self._current_writer().append(carried)
        for seq in rewritten:
            os.unlink(self._segment_path(seq))

    @staticmethod
    def _strip(payload: Dict[str, Any]) -> Dict[str, Any]:
        body = payload["round"]
        stripped_body = _strip_result_body(body)
        if stripped_body is body:
            return payload
        return {**payload, "round": stripped_body}

    @staticmethod
    def _trim_state(state: Dict[str, Any]) -> Dict[str, Any]:
        cursor = int(state["cursor"])
        return {
            **state,
            "streams": {"base": cursor, "ticks": []},
            "results": [
                _strip_result_body(body) for body in state["results"]
            ],
        }

    # -- read path --------------------------------------------------------

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        """The latest detector state snapshot, or ``None``."""
        payload = read_json(self.snapshot_path)
        if payload is None:
            return None
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot {self.snapshot_path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        state = payload["state"]
        if not isinstance(state, dict):
            raise ValueError(f"snapshot {self.snapshot_path} has no state")
        return state

    def _read_rounds(self, paths: Sequence[str]) -> List[Dict[str, Any]]:
        seen = set()
        rounds: List[Dict[str, Any]] = []
        for path in paths:
            payloads, _ = read_segment(path)
            for payload in payloads:
                if payload.get("type") != "round":
                    continue
                key = _round_key(payload)
                if key in seen:
                    continue
                seen.add(key)
                rounds.append(payload)
        rounds.sort(key=_round_key)
        return rounds

    def load_tail(self) -> List[UnitDetectionResult]:
        """Rounds in live WAL segments (newer than the last snapshot)."""
        paths = [self._segment_path(s) for s in self._segments()]
        return [decode_result(p["round"]) for p in self._read_rounds(paths)]

    def load_history(self) -> List[UnitDetectionResult]:
        """The full recorded verdict history: archives + live segments."""
        paths = (
            [self.archive_path]
            + [self._archived_path(s) for s in self._archived_segments()]
            + [self._segment_path(s) for s in self._segments()]
        )
        return [decode_result(p["round"]) for p in self._read_rounds(paths)]

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class FleetStateStore:
    """A directory of :class:`UnitStore` plus fleet-level state."""

    META_VERSION = 1

    def __init__(
        self, root: str, snapshot_every: int = 8, wal_sync: str = "commit"
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        self.root = os.path.abspath(root)
        self.snapshot_every = snapshot_every
        self.wal_sync = wal_sync
        os.makedirs(self.root, exist_ok=True)
        self._meta_path = os.path.join(self.root, "meta.json")
        self._coordinator_path = os.path.join(self.root, "coordinator.json")
        meta = read_json(self._meta_path)
        if meta is None:
            atomic_write_json(
                self._meta_path,
                {"version": self.META_VERSION, "format": "dbcatcher-persist"},
            )
        elif meta.get("version") != self.META_VERSION:
            raise ValueError(
                f"state dir {self.root} has unsupported meta version "
                f"{meta.get('version')!r}"
            )
        self._units: Dict[str, UnitStore] = {}

    def unit_store(self, unit: str) -> UnitStore:
        store = self._units.get(unit)
        if store is None:
            store = UnitStore(self.root, unit, wal_sync=self.wal_sync)
            self._units[unit] = store
        return store

    def unit_names(self) -> List[str]:
        """Unit directories present on disk (their filesystem-safe names)."""
        return sorted(
            name
            for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
        )

    def save_coordinator(self, state: Dict[str, Any]) -> None:
        atomic_write_json(
            self._coordinator_path,
            {"version": SNAPSHOT_VERSION, "state": state},
        )

    def load_coordinator(self) -> Optional[Dict[str, Any]]:
        payload = read_json(self._coordinator_path)
        if payload is None:
            return None
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"{self._coordinator_path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        state = payload["state"]
        return state if isinstance(state, dict) else None

    def close(self) -> None:
        for store in self._units.values():
            store.close()
