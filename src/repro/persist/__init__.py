"""Durable state: snapshot + WAL persistence for crash-warm restarts.

Everything DBCatcher learns online — sliding windows, flexible-window
cursors, state machines, judgement records, tuned thresholds — lives in
memory and dies with the process.  This package makes that state
durable: periodic *atomic snapshots* of versioned detector/coordinator
state plus an *append-only WAL* of completed detection rounds, with
segment rotation and compaction at snapshot boundaries.

Recovery replays snapshot + WAL per unit and resumes mid-stream; because
the detector is deterministic, a run killed at an arbitrary round and
restored from disk produces the same verdicts, state paths, and
alert/incident history as a run that never died.  Wire it up with
``serve --state-dir`` (see :mod:`repro.service.scheduler`) or use the
:class:`FleetStateStore` / :class:`UnitStore` primitives directly.
"""

from repro.persist.codec import (
    STATE_VERSION,
    decode_config,
    decode_matrix,
    decode_record,
    decode_result,
    encode_config,
    encode_matrix,
    encode_record,
    encode_result,
    shift_state,
    state_next_tick,
)
from repro.persist.snapshot import SNAPSHOT_VERSION, atomic_write_json, read_json
from repro.persist.store import FleetStateStore, UnitStore
from repro.persist.wal import (
    WAL_VERSION,
    WalWriter,
    decode_line,
    encode_line,
    read_segment,
)

__all__ = [
    "FleetStateStore",
    "SNAPSHOT_VERSION",
    "STATE_VERSION",
    "UnitStore",
    "WAL_VERSION",
    "WalWriter",
    "atomic_write_json",
    "decode_config",
    "decode_line",
    "decode_matrix",
    "decode_record",
    "decode_result",
    "encode_config",
    "encode_line",
    "encode_matrix",
    "encode_record",
    "encode_result",
    "read_json",
    "read_segment",
    "shift_state",
    "state_next_tick",
]
