"""SR-CNN baseline (Ren et al. [14]).

Follows the Microsoft recipe: compute Spectral Residual saliency maps of
(assumed mostly normal) training series, *inject synthetic anomaly points*
into the saliency maps, and train a small 1-D CNN to classify each point.
The CNN amplifies the abnormal features of the saliency map, improving on
raw SR thresholds.

The network is two 1-D convolutions (1 -> channels -> 1) with same
padding, trained with binary cross-entropy by SGD — small enough to train
in seconds of pure numpy while keeping the method's structure.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.nn import SGD, Conv1D, relu, sigmoid
from repro.baselines.sr import saliency_map
from repro.core.normalize import zscore_normalize
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["SRCNNDetector"]


class SRCNNDetector(BaselineDetector):
    """SR saliency maps + numpy CNN point classifier.

    Parameters
    ----------
    window:
        Training window length cut from saliency maps.
    channels:
        Hidden channels of the first convolution.
    kernel:
        Convolution kernel width.
    epochs, batch_size, learning_rate:
        SGD schedule.
    n_train_windows:
        Number of saliency windows sampled for training.
    injection_rate:
        Fraction of points turned into synthetic anomalies per window.
    seed:
        Seeds sampling, injection and weight init.
    """

    name = "SR-CNN"
    scores_per_kpi = True

    def __init__(
        self,
        window: int = 64,
        channels: int = 8,
        kernel: int = 7,
        epochs: int = 4,
        batch_size: int = 32,
        learning_rate: float = 0.05,
        n_train_windows: int = 256,
        injection_rate: float = 0.05,
        seed: Optional[int] = None,
    ):
        if window < kernel:
            raise ValueError("window must be at least the kernel width")
        self.window = window
        self.channels = channels
        self.kernel = kernel
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.n_train_windows = n_train_windows
        self.injection_rate = injection_rate
        self._rng = np.random.default_rng(seed)
        self.conv1 = Conv1D(1, channels, kernel, self._rng)
        self.conv2 = Conv1D(channels, 1, kernel, self._rng)
        self._fitted = False

    @staticmethod
    def _standardize_windows(batch: np.ndarray) -> np.ndarray:
        """Per-window standardization so the CNN sees scale-free shapes."""
        mean = batch.mean(axis=1, keepdims=True)
        std = np.clip(batch.std(axis=1, keepdims=True), 1e-8, None)
        return (batch - mean) / std

    def _forward(self, batch: np.ndarray, train: bool = False):
        """(B, L) standardized saliency windows -> (B, L) probabilities."""
        hidden_pre = self.conv1.forward(batch[:, None, :])
        hidden = relu(hidden_pre)
        logits = self.conv2.forward(hidden)[:, 0, :]
        probs = sigmoid(logits)
        if train:
            return probs, hidden_pre, hidden, logits
        return probs

    def _training_windows(self, train: Dataset) -> np.ndarray:
        """Sample saliency-map windows from the training units."""
        maps: List[np.ndarray] = []
        for unit in train.units:
            for db in range(unit.n_databases):
                for k in range(unit.n_kpis):
                    series = zscore_normalize(unit.values[db, k])
                    if series.size >= self.window:
                        maps.append(saliency_map(series))
        if not maps:
            raise ValueError("training dataset has no series long enough")
        windows = np.empty((self.n_train_windows, self.window))
        for i in range(self.n_train_windows):
            source = maps[int(self._rng.integers(0, len(maps)))]
            start = int(self._rng.integers(0, source.size - self.window + 1))
            windows[i] = source[start : start + self.window]
        return windows

    def _inject(self, windows: np.ndarray):
        """Inject synthetic anomaly points; returns (windows, labels)."""
        injected = windows.copy()
        labels = np.zeros_like(windows)
        for i in range(windows.shape[0]):
            n_points = max(1, int(self.window * self.injection_rate))
            positions = self._rng.choice(self.window, size=n_points, replace=False)
            scale = max(float(np.abs(windows[i]).mean()), 1e-3)
            injected[i, positions] += scale * self._rng.uniform(3.0, 8.0, n_points)
            labels[i, positions] = 1.0
        return injected, labels

    def fit(self, train: Dataset) -> None:
        """Sample windows, inject anomalies, train the CNN with BCE."""
        windows, labels = self._inject(self._training_windows(train))
        windows = self._standardize_windows(windows)
        optimizer = SGD(
            [self.conv1, self.conv2], learning_rate=self.learning_rate
        )
        n = windows.shape[0]
        # Up-weight the rare positive class so the network cannot settle
        # on the all-negative solution.
        positive_weight = max(1.0, (1.0 - self.injection_rate) / self.injection_rate)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                batch = windows[batch_idx]
                target = labels[batch_idx]
                probs, hidden_pre, hidden, _ = self._forward(batch, train=True)
                # Class-weighted BCE gradient w.r.t. logits.
                weight = np.where(target > 0, positive_weight, 1.0)
                grad_logits = weight * (probs - target) / batch.shape[0]
                grad_hidden = self.conv2.backward(grad_logits[:, None, :])
                grad_hidden = grad_hidden * (hidden_pre > 0)
                self.conv1.backward(grad_hidden)
                optimizer.step()
        self._fitted = True

    def _score_series(self, series: np.ndarray) -> np.ndarray:
        saliency = saliency_map(zscore_normalize(series))
        if saliency.size < self.window:
            saliency = np.pad(saliency, (0, self.window - saliency.size))
            trimmed = series.size
        else:
            trimmed = saliency.size
        batch = self._standardize_windows(saliency[None, :])
        return self._forward(batch)[0][:trimmed]

    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() before score_unit()")
        scores = np.empty_like(unit.values)
        for db in range(unit.n_databases):
            for k in range(unit.n_kpis):
                scores[db, k] = self._score_series(unit.values[db, k])
        return scores
