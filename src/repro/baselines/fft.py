"""FFT baseline: frequency-residual anomaly scores.

Decomposes each KPI series into frequency components (Van Loan [7]) and
measures how much each point deviates from the low-frequency
reconstruction — "the degree of difference between time series points and
surrounding points".  Salient high-frequency excursions score high.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.core.normalize import zscore_normalize
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["FFTDetector"]


class FFTDetector(BaselineDetector):
    """Low-pass residual scorer.

    Parameters
    ----------
    keep_fraction:
        Fraction of lowest-frequency components kept in the smooth
        reconstruction; the residual against it is the anomaly score.
    """

    name = "FFT"
    scores_per_kpi = True

    def __init__(self, keep_fraction: float = 0.1):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must lie in (0, 1]")
        self.keep_fraction = keep_fraction

    def fit(self, train: Dataset) -> None:
        """FFT is training-free; kept for interface uniformity."""

    def _score_series(self, series: np.ndarray) -> np.ndarray:
        standardized = zscore_normalize(series)
        spectrum = np.fft.rfft(standardized)
        keep = max(1, int(len(spectrum) * self.keep_fraction))
        truncated = spectrum.copy()
        truncated[keep:] = 0.0
        smooth = np.fft.irfft(truncated, n=standardized.size)
        return np.abs(standardized - smooth)

    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        scores = np.empty_like(unit.values)
        for db in range(unit.n_databases):
            for k in range(unit.n_kpis):
                scores[db, k] = self._score_series(unit.values[db, k])
        return scores
