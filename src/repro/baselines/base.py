"""Baseline detector interface and window-level threshold rules.

Every baseline exposes per-point anomaly *scores*; turning scores into
window verdicts is a separate, cheap step (:class:`ThresholdRule`) so the
evaluation harness can search thresholds/window sizes without re-running
the expensive scoring (exactly how the paper tunes each method for its
best F-Measure on the training set).

Score layouts (Section IV-B's adaptation rules):

* univariate methods (FFT, SR, SR-CNN) score each KPI series separately
  -> ``(n_databases, n_kpis, n_ticks)``; the k-of-M rule then declares a
  window abnormal when at least ``k`` KPI dimensions are abnormal;
* multivariate methods (OmniAnomaly, JumpStarter) score whole multivariate
  windows -> ``(n_databases, n_ticks)``; the rule reduces to a plain
  threshold.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.containers import Dataset, UnitSeries
from repro.eval.metrics import window_spans

__all__ = ["BaselineDetector", "ThresholdRule"]


class BaselineDetector(abc.ABC):
    """Common interface of the five comparison methods.

    Attributes
    ----------
    name:
        Display name used in result tables.
    scores_per_kpi:
        ``True`` when :meth:`score_unit` returns ``(D, K, T)`` scores,
        ``False`` for ``(D, T)``.
    """

    name: str = "baseline"
    scores_per_kpi: bool = True

    @abc.abstractmethod
    def fit(self, train: Dataset) -> None:
        """Learn whatever the method learns from the training split."""

    @abc.abstractmethod
    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        """Per-point anomaly scores for one unit (higher = more anomalous)."""

    def score_dataset(self, dataset: Dataset) -> List[np.ndarray]:
        """Scores for every unit of a dataset."""
        return [self.score_unit(unit) for unit in dataset.units]


@dataclass(frozen=True)
class ThresholdRule:
    """Window verdict rule applied to per-point scores.

    Parameters
    ----------
    window_size:
        Detection window in ticks (the "Window-Size" efficiency metric).
    threshold:
        Score level above which a point is anomalous.
    k:
        For per-KPI scores: minimum number of abnormal KPI dimensions for
        the window to be abnormal (the paper's tunable ``k`` of the
        univariate adaptation).  Ignored for ``(D, T)`` scores.
    aggregation:
        How a window's points collapse to one statistic before
        thresholding: ``"max"`` (single worst point), ``"mean"``, or
        ``"q90"`` (90th percentile — robust to isolated noise while still
        sensitive to sustained deviations).
    """

    window_size: int
    threshold: float
    k: int = 1
    aggregation: str = "max"

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.aggregation not in ("max", "mean", "q90"):
            raise ValueError(
                f"aggregation must be max/mean/q90, got {self.aggregation!r}"
            )

    def _aggregate(self, window: np.ndarray) -> np.ndarray:
        """Collapse the tick axis of a ``(D, K, w)`` window."""
        if self.aggregation == "max":
            return window.max(axis=2)
        if self.aggregation == "mean":
            return window.mean(axis=2)
        return np.quantile(window, 0.9, axis=2)

    def apply(self, scores: np.ndarray) -> np.ndarray:
        """Window verdicts from per-point scores.

        Parameters
        ----------
        scores:
            ``(D, K, T)`` or ``(D, T)`` anomaly scores.

        Returns
        -------
        numpy.ndarray
            Boolean verdicts of shape ``(n_databases, n_windows)``.
        """
        data = np.asarray(scores, dtype=np.float64)
        if data.ndim == 2:
            data = data[:, None, :]
        elif data.ndim != 3:
            raise ValueError(f"scores must be (D, T) or (D, K, T), got {data.shape}")
        n_dbs, n_kpis, n_ticks = data.shape
        spans = window_spans(n_ticks, self.window_size)
        verdicts = np.zeros((n_dbs, len(spans)), dtype=bool)
        k_needed = min(self.k, n_kpis)
        for w, (start, end) in enumerate(spans):
            statistic = self._aggregate(data[:, :, start:end])  # (D, K)
            abnormal_kpis = (statistic > self.threshold).sum(axis=1)
            verdicts[:, w] = abnormal_kpis >= k_needed
        return verdicts
