"""Baseline anomaly detectors (Section IV-A4), implemented from scratch.

* :class:`~repro.baselines.fft.FFTDetector` — frequency-residual detector;
* :class:`~repro.baselines.sr.SRDetector` — Spectral Residual saliency;
* :class:`~repro.baselines.srcnn.SRCNNDetector` — SR + 1-D CNN trained on
  synthetically injected anomalies (numpy);
* :class:`~repro.baselines.omni.OmniAnomalyDetector` — GRU + VAE
  reconstruction model (numpy, trained by backprop-through-time);
* :class:`~repro.baselines.jumpstarter.JumpStarterDetector` — compressed
  sensing reconstruction with outlier-resistant sampling;
* :mod:`repro.baselines.correlation` — Pearson / Spearman / DTW
  correlation measures pluggable into the DBCatcher framework for the
  Table X comparison (MM-Pearson, MM-DTW, MM-KCD, AMM-KCD).

All detectors share the :class:`~repro.baselines.base.BaselineDetector`
scoring interface consumed by :mod:`repro.eval.runner`.
"""

from repro.baselines.base import BaselineDetector, ThresholdRule
from repro.baselines.correlation import (
    dtw_similarity,
    make_mm_detector,
    pearson_measure,
    spearman_measure,
)
from repro.baselines.fft import FFTDetector
from repro.baselines.jumpstarter import JumpStarterDetector
from repro.baselines.omni import OmniAnomalyDetector
from repro.baselines.sr import SRDetector
from repro.baselines.srcnn import SRCNNDetector

__all__ = [
    "BaselineDetector",
    "ThresholdRule",
    "FFTDetector",
    "SRDetector",
    "SRCNNDetector",
    "OmniAnomalyDetector",
    "JumpStarterDetector",
    "pearson_measure",
    "spearman_measure",
    "dtw_similarity",
    "make_mm_detector",
]
