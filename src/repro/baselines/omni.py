"""OmniAnomaly baseline (Su et al. [15]).

A stochastic recurrent reconstruction model: a GRU encodes the multivariate
window's temporal dependence; each hidden state parameterizes a diagonal
Gaussian latent (the VAE part, capturing stochasticity); a decoder
reconstructs the observation from the sampled latent.  Points with high
reconstruction error are anomalous.

This is a faithfully simplified single-layer numpy implementation — the
original stacks planar normalizing flows and a linear Gaussian state-space
model on top, which refine but do not change the detection mechanism the
paper's comparison exercises (reconstruction-based multivariate scoring
with a large data appetite).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.baselines.nn import GRU, SGD, Dense, relu
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["OmniAnomalyDetector"]


class OmniAnomalyDetector(BaselineDetector):
    """GRU-VAE reconstruction scorer.

    Parameters
    ----------
    window:
        Sequence length fed to the GRU.
    hidden:
        GRU hidden width.
    latent:
        Latent dimensionality of the per-step Gaussian.
    epochs, batch_size, learning_rate:
        SGD schedule.
    n_train_windows:
        Windows sampled from the training split.
    kl_weight:
        Weight of the KL term in the ELBO.
    seed:
        Seeds sampling and weight init.
    """

    name = "OmniAnomaly"
    scores_per_kpi = False

    def __init__(
        self,
        window: int = 24,
        hidden: int = 12,
        latent: int = 4,
        epochs: int = 3,
        batch_size: int = 16,
        learning_rate: float = 0.02,
        n_train_windows: int = 192,
        kl_weight: float = 0.01,
        seed: Optional[int] = None,
    ):
        self.window = window
        self.hidden = hidden
        self.latent = latent
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.n_train_windows = n_train_windows
        self.kl_weight = kl_weight
        self._rng = np.random.default_rng(seed)
        self._layers: Optional[List] = None
        self._n_features: Optional[int] = None
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    def _build(self, n_features: int) -> None:
        self._n_features = n_features
        self.gru = GRU(n_features, self.hidden, self._rng)
        self.enc_mu = Dense(self.hidden, self.latent, self._rng)
        self.enc_logvar = Dense(self.hidden, self.latent, self._rng)
        self.dec_hidden = Dense(self.latent, self.hidden, self._rng)
        self.dec_out = Dense(self.hidden, n_features, self._rng)
        self._layers = [
            self.gru, self.enc_mu, self.enc_logvar, self.dec_hidden, self.dec_out
        ]

    def _standardize(self, values: np.ndarray) -> np.ndarray:
        return (values - self._feature_mean) / self._feature_std

    def _windows_from(self, dataset: Dataset) -> np.ndarray:
        """Sample (B, window, K) training windows across units/databases."""
        pools = []
        for unit in dataset.units:
            for db in range(unit.n_databases):
                series = unit.values[db].T  # (T, K)
                if series.shape[0] >= self.window:
                    pools.append(series)
        if not pools:
            raise ValueError("training dataset has no series long enough")
        stacked = np.concatenate(pools, axis=0)
        self._feature_mean = stacked.mean(axis=0)
        self._feature_std = np.clip(stacked.std(axis=0), 1e-6, None)
        windows = np.empty((self.n_train_windows, self.window, stacked.shape[1]))
        for i in range(self.n_train_windows):
            source = pools[int(self._rng.integers(0, len(pools)))]
            start = int(self._rng.integers(0, source.shape[0] - self.window + 1))
            windows[i] = self._standardize(source[start : start + self.window])
        return windows

    def _forward(self, batch: np.ndarray, sample: bool = True):
        """(B, T, K) -> reconstruction plus the intermediates for backprop."""
        b, t, _ = batch.shape
        states = self.gru.forward(batch)  # (B, T, H)
        flat = states.reshape(b * t, self.hidden)
        mu = self.enc_mu.forward(flat)
        logvar = np.clip(self.enc_logvar.forward(flat), -8.0, 8.0)
        if sample:
            eps = self._rng.standard_normal(mu.shape)
        else:
            eps = np.zeros_like(mu)
        z = mu + np.exp(0.5 * logvar) * eps
        dec_pre = self.dec_hidden.forward(z)
        dec_h = relu(dec_pre)
        recon = self.dec_out.forward(dec_h).reshape(b, t, -1)
        return recon, (b, t, flat, mu, logvar, eps, dec_pre)

    def fit(self, train: Dataset) -> None:
        """Train the GRU-VAE on windows sampled from the training split."""
        windows = self._windows_from(train)
        self._build(windows.shape[2])
        optimizer = SGD(self._layers, learning_rate=self.learning_rate)
        n = windows.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = windows[order[start : start + self.batch_size]]
                recon, cache = self._forward(batch, sample=True)
                b, t, flat, mu, logvar, eps, dec_pre = cache
                scale = 1.0 / (b * t)
                # Reconstruction term.
                grad_recon = 2.0 * (recon - batch) * scale
                grad_dec_h = self.dec_out.backward(
                    grad_recon.reshape(b * t, -1)
                )
                grad_dec_pre = grad_dec_h * (dec_pre > 0)
                grad_z = self.dec_hidden.backward(grad_dec_pre)
                # KL term: d/dmu = mu, d/dlogvar = (exp(logvar) - 1) / 2.
                grad_mu = grad_z + self.kl_weight * mu * scale
                grad_logvar = (
                    grad_z * eps * 0.5 * np.exp(0.5 * logvar)
                    + self.kl_weight * 0.5 * (np.exp(logvar) - 1.0) * scale
                )
                grad_flat = self.enc_mu.backward(grad_mu)
                grad_flat = grad_flat + self.enc_logvar.backward(grad_logvar)
                self.gru.backward(grad_flat.reshape(b, t, self.hidden))
                optimizer.step()

    def _score_multivariate(self, series: np.ndarray) -> np.ndarray:
        """(T, K) standardized series -> per-point scores (T,)."""
        t_total = series.shape[0]
        scores = np.zeros(t_total)
        counts = np.zeros(t_total)
        stride = max(1, self.window // 2)
        starts = list(range(0, max(t_total - self.window, 0) + 1, stride))
        if not starts:
            starts = [0]
        batch = np.stack(
            [series[s : s + self.window] for s in starts if s + self.window <= t_total]
        )
        if batch.size == 0:
            return scores
        recon, _ = self._forward(batch, sample=False)
        errors = ((recon - batch) ** 2).mean(axis=2)  # (B, T)
        for row, s in enumerate(starts[: batch.shape[0]]):
            scores[s : s + self.window] += errors[row]
            counts[s : s + self.window] += 1.0
        counts[counts == 0] = 1.0
        return scores / counts

    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("call fit() before score_unit()")
        out = np.zeros((unit.n_databases, unit.n_ticks))
        for db in range(unit.n_databases):
            standardized = self._standardize(unit.values[db].T)
            out[db] = self._score_multivariate(standardized)
        return out
