"""Correlation-measurement comparators (Table X).

The MM framework is DBCatcher's pipeline with the correlation measure
swapped out: MM-Pearson uses the zero-delay Pearson coefficient (no delay
tolerance), MM-DTW a dynamic-time-warping similarity (per-point elastic
matching, the opposite of the cloud scenario's uniform delays), MM-KCD the
paper's measure with a *fixed* window, and AMM-KCD adds the flexible time
window back — the full DBCatcher.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher

__all__ = [
    "pearson_measure",
    "spearman_measure",
    "dtw_distance",
    "dtw_similarity",
    "make_mm_detector",
]

#: A correlation measure maps two equal-length (already min-max
#: normalized) series plus a delay bound to a score in [-1, 1].
Measure = Callable[[np.ndarray, np.ndarray, Optional[int]], float]


def pearson_measure(x: np.ndarray, y: np.ndarray, max_delay: Optional[int] = None) -> float:
    """Zero-delay Pearson coefficient ("doesn't take delays into account").

    The ``max_delay`` argument is accepted for interface compatibility and
    deliberately ignored — that is the point of this comparator.
    """
    x_c = x - x.mean()
    y_c = y - y.mean()
    x_norm = float(np.linalg.norm(x_c))
    y_norm = float(np.linalg.norm(y_c))
    if x_norm == 0.0 and y_norm == 0.0:
        return 1.0
    if x_norm == 0.0 or y_norm == 0.0:
        return 0.0
    return float(np.dot(x_c, y_c) / (x_norm * y_norm))


def spearman_measure(x: np.ndarray, y: np.ndarray, max_delay: Optional[int] = None) -> float:
    """Spearman rank correlation ("only monotonic relationships")."""
    return pearson_measure(
        np.argsort(np.argsort(x)).astype(np.float64),
        np.argsort(np.argsort(y)).astype(np.float64),
    )


def dtw_distance(x: np.ndarray, y: np.ndarray, band: Optional[int] = None) -> float:
    """Dynamic-time-warping distance with a Sakoe-Chiba band.

    Parameters
    ----------
    x, y:
        Equal-length series.
    band:
        Band half-width; defaults to 10 % of the length (min 2).
    """
    n = x.size
    if y.size != n:
        raise ValueError("dtw_distance expects equal-length series")
    if band is None:
        band = max(2, n // 10)
    cost = np.full((n + 1, n + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - band)
        hi = min(n, i + band)
        for j in range(lo, hi + 1):
            d = (x[i - 1] - y[j - 1]) ** 2
            cost[i, j] = d + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return float(np.sqrt(cost[n, n]))


def dtw_similarity(x: np.ndarray, y: np.ndarray, max_delay: Optional[int] = None) -> float:
    """DTW mapped onto the correlation scale.

    For z-normalized series the squared Euclidean distance satisfies
    ``d^2 / n = 2 (1 - r)``; applying the same transform to the (band-
    constrained) DTW distance yields a correlation-comparable similarity.
    The elastic matching lets every point pick its own delay — the mismatching
    the paper criticizes — so this score is *optimistic* for deviations
    that a uniform delay could never align.
    """
    def z(series):
        std = series.std()
        return (series - series.mean()) / std if std > 0 else np.zeros_like(series)

    band = max_delay if max_delay is not None else None
    distance = dtw_distance(z(x), z(y), band=band)
    return float(1.0 - distance**2 / (2.0 * x.size))


def make_mm_detector(
    config: DBCatcherConfig,
    n_databases: int,
    measure: Optional[Measure] = None,
    flexible_window: bool = True,
) -> DBCatcher:
    """A DBCatcher variant for the Table X ablations.

    Parameters
    ----------
    config:
        Base configuration.
    n_databases:
        Unit size.
    measure:
        Correlation measure replacing the KCD (``None`` keeps the KCD).
    flexible_window:
        ``False`` pins the window at its initial size (the "MM" rows of
        Table X); ``True`` keeps the adaptive expansion ("AMM").
    """
    if not flexible_window:
        config = DBCatcherConfig(
            kpi_names=config.kpi_names,
            alphas=config.alphas,
            theta=config.theta,
            max_tolerance_deviations=config.max_tolerance_deviations,
            initial_window=config.initial_window,
            window_step=config.window_step,
            max_window=config.initial_window,
            max_delay_fraction=config.max_delay_fraction,
            peer_aggregation=config.peer_aggregation,
            primary_index=config.primary_index,
            rr_only_kpis=config.rr_only_kpis,
            resolve_max_window_as_abnormal=config.resolve_max_window_as_abnormal,
            interval_seconds=config.interval_seconds,
        )
    return DBCatcher(config, n_databases=n_databases, measure=measure)
