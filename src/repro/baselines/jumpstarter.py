"""JumpStarter baseline (Ma et al. [16]).

Compressed-sensing reconstruction with outlier-resistant sampling: the
detector samples a subset of each window's points — avoiding points whose
deviation from a median filter marks them as likely outliers — and
reconstructs the full window from the samples by orthogonal matching
pursuit over a DCT dictionary.  Normal points are well explained by a few
smooth atoms; anomalous excursions are not, so the reconstruction residual
is the anomaly score.  The outlier-resistant sampling is what keeps
anomalies *out* of the measurement set, preventing the reconstruction from
chasing them (the original's misclassification-reduction trick).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.core.normalize import zscore_normalize
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["JumpStarterDetector", "omp_reconstruct"]


def _dct_dictionary(length: int) -> np.ndarray:
    """Orthonormal DCT-II basis as a (length, length) dictionary."""
    n = np.arange(length)
    basis = np.cos(np.pi * (n[:, None] + 0.5) * n[None, :] / length)
    basis[:, 0] *= 1.0 / np.sqrt(2.0)
    return basis * np.sqrt(2.0 / length)


def omp_reconstruct(
    observed: np.ndarray,
    sample_indices: np.ndarray,
    dictionary: np.ndarray,
    n_atoms: int,
) -> np.ndarray:
    """Orthogonal matching pursuit: sparse recovery from sampled points.

    Parameters
    ----------
    observed:
        Values at the sampled positions.
    sample_indices:
        Positions of the samples within the window.
    dictionary:
        Full ``(length, length)`` dictionary.
    n_atoms:
        Sparsity budget.

    Returns
    -------
    numpy.ndarray
        Reconstruction over the full window length.
    """
    sensing = dictionary[sample_indices, :]  # (m, L)
    residual = observed.astype(np.float64).copy()
    chosen: list = []
    coefficients = np.zeros(dictionary.shape[1])
    for _ in range(min(n_atoms, observed.size)):
        correlations = np.abs(sensing.T @ residual)
        correlations[chosen] = -np.inf
        atom = int(np.argmax(correlations))
        chosen.append(atom)
        submatrix = sensing[:, chosen]
        solution, *_ = np.linalg.lstsq(submatrix, observed, rcond=None)
        residual = observed - submatrix @ solution
        if np.linalg.norm(residual) < 1e-9:
            break
    coefficients[chosen] = solution
    return dictionary @ coefficients


class JumpStarterDetector(BaselineDetector):
    """Compressed-sensing reconstruction scorer.

    Parameters
    ----------
    window:
        Reconstruction window length.
    sample_fraction:
        Fraction of points sampled per window.
    n_atoms:
        OMP sparsity budget.
    outlier_quantile:
        Points whose median-filter deviation exceeds this train quantile
        are excluded from sampling (outlier resistance).
    median_width:
        Median filter width for the deviation statistic.
    seed:
        Seeds the sampling.
    """

    name = "JumpStarter"
    scores_per_kpi = False

    def __init__(
        self,
        window: int = 40,
        sample_fraction: float = 0.4,
        n_atoms: int = 6,
        outlier_quantile: float = 0.9,
        median_width: int = 5,
        seed: Optional[int] = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must lie in (0, 1]")
        if window < 8:
            raise ValueError("window must be >= 8")
        self.window = window
        self.sample_fraction = sample_fraction
        self.n_atoms = n_atoms
        self.outlier_quantile = outlier_quantile
        self.median_width = median_width
        self._rng = np.random.default_rng(seed)
        self._dictionary = _dct_dictionary(window)
        self._deviation_cutoff: Optional[float] = None

    def _median_deviation(self, series: np.ndarray) -> np.ndarray:
        """|x - medfilt(x)| — the outlier statistic."""
        half = self.median_width // 2
        padded = np.pad(series, (half, half), mode="edge")
        medians = np.array(
            [
                np.median(padded[i : i + self.median_width])
                for i in range(series.size)
            ]
        )
        return np.abs(series - medians)

    def fit(self, train: Dataset) -> None:
        """Calibrate the outlier cutoff on training deviations.

        JumpStarter's selling point is needing very little initialization
        data; calibrating one scalar quantile mirrors that.
        """
        deviations = []
        for unit in train.units[:4]:
            for db in range(unit.n_databases):
                for k in range(unit.n_kpis):
                    series = zscore_normalize(unit.values[db, k])
                    deviations.append(self._median_deviation(series))
        pooled = np.concatenate(deviations) if deviations else np.zeros(1)
        self._deviation_cutoff = float(np.quantile(pooled, self.outlier_quantile))

    def _sample_indices(self, deviation: np.ndarray) -> np.ndarray:
        """Outlier-resistant sampling within one window."""
        n = deviation.size
        n_samples = max(self.n_atoms + 2, int(n * self.sample_fraction))
        cutoff = self._deviation_cutoff if self._deviation_cutoff else np.inf
        clean = np.flatnonzero(deviation <= cutoff)
        if clean.size >= n_samples:
            picked = self._rng.choice(clean, size=n_samples, replace=False)
        else:
            # Not enough clean points: take them all plus the least-bad rest.
            dirty = np.argsort(deviation)[: n_samples]
            picked = np.union1d(clean, dirty)[:n_samples]
        return np.sort(picked)

    def _score_series(self, series: np.ndarray) -> np.ndarray:
        scores = np.zeros(series.size)
        counts = np.zeros(series.size)
        deviation = self._median_deviation(series)
        for start in range(0, series.size - self.window + 1, self.window // 2):
            end = start + self.window
            segment = series[start:end]
            indices = self._sample_indices(deviation[start:end])
            reconstruction = omp_reconstruct(
                segment[indices], indices, self._dictionary, self.n_atoms
            )
            scores[start:end] += np.abs(segment - reconstruction)
            counts[start:end] += 1.0
        counts[counts == 0] = 1.0
        return scores / counts

    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        if self._deviation_cutoff is None:
            raise RuntimeError("call fit() before score_unit()")
        out = np.zeros((unit.n_databases, unit.n_ticks))
        for db in range(unit.n_databases):
            per_kpi = np.stack(
                [
                    self._score_series(zscore_normalize(unit.values[db, k]))
                    for k in range(unit.n_kpis)
                ]
            )
            out[db] = per_kpi.mean(axis=0)
        return out
