"""Minimal numpy neural-network blocks.

Just enough machinery for the two learned baselines: a 1-D convolution
stack for SR-CNN and a GRU + variational head for OmniAnomaly.  Everything
trains with plain SGD + momentum; no autograd — each block implements its
own backward pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Dense", "Conv1D", "GRU", "sigmoid", "relu", "SGD"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class Dense:
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / n_in)
        self.weight = rng.normal(0.0, scale, (n_in, n_out))
        self.bias = np.zeros(n_out)
        self._x: np.ndarray | None = None
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward() must run before backward()"
        self.grads["weight"] = self._x.T @ grad_out
        self.grads["bias"] = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}


class Conv1D:
    """1-D convolution over (batch, channels, length), stride 1, same pad."""

    def __init__(
        self, in_channels: int, out_channels: int, kernel: int,
        rng: np.random.Generator,
    ):
        if kernel % 2 == 0:
            raise ValueError("kernel size must be odd for same-padding")
        scale = np.sqrt(2.0 / (in_channels * kernel))
        self.weight = rng.normal(0.0, scale, (out_channels, in_channels, kernel))
        self.bias = np.zeros(out_channels)
        self.kernel = kernel
        self._cols: np.ndarray | None = None
        self._in_shape: Tuple[int, ...] | None = None
        self.grads: Dict[str, np.ndarray] = {}

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(B, C, L) -> (B, L, C * K) patches with zero padding."""
        pad = self.kernel // 2
        padded = np.pad(x, ((0, 0), (0, 0), (pad, pad)))
        batch, channels, length = x.shape
        strides = padded.strides
        windows = np.lib.stride_tricks.as_strided(
            padded,
            shape=(batch, channels, length, self.kernel),
            strides=(strides[0], strides[1], strides[2], strides[2]),
            writeable=False,
        )
        # (B, L, C, K) -> (B, L, C*K)
        return windows.transpose(0, 2, 1, 3).reshape(batch, length, -1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        cols = self._im2col(x)
        self._cols = cols
        flat_weight = self.weight.reshape(self.weight.shape[0], -1)  # (O, C*K)
        out = cols @ flat_weight.T + self.bias  # (B, L, O)
        return out.transpose(0, 2, 1)  # (B, O, L)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._in_shape is not None
        batch, _, length = self._in_shape
        grad = grad_out.transpose(0, 2, 1)  # (B, L, O)
        flat_weight = self.weight.reshape(self.weight.shape[0], -1)
        self.grads["weight"] = (
            np.einsum("blo,blk->ok", grad, self._cols)
        ).reshape(self.weight.shape)
        self.grads["bias"] = grad.sum(axis=(0, 1))
        grad_cols = grad @ flat_weight  # (B, L, C*K)
        # col2im: scatter the patch gradients back.
        pad = self.kernel // 2
        channels = self._in_shape[1]
        grad_padded = np.zeros((batch, channels, length + 2 * pad))
        patches = grad_cols.reshape(batch, length, channels, self.kernel)
        for k in range(self.kernel):
            grad_padded[:, :, k : k + length] += patches[:, :, :, k].transpose(0, 2, 1)
        return grad_padded[:, :, pad : pad + length]

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}


class GRU:
    """Single-layer GRU with manual backprop-through-time.

    Input (batch, time, features) -> hidden states (batch, time, hidden).
    """

    def __init__(self, n_in: int, n_hidden: int, rng: np.random.Generator):
        scale = np.sqrt(1.0 / max(n_in, n_hidden))

        def init(rows, cols):
            return rng.normal(0.0, scale, (rows, cols))

        self.w_z = init(n_in, n_hidden)
        self.u_z = init(n_hidden, n_hidden)
        self.b_z = np.zeros(n_hidden)
        self.w_r = init(n_in, n_hidden)
        self.u_r = init(n_hidden, n_hidden)
        self.b_r = np.zeros(n_hidden)
        self.w_h = init(n_in, n_hidden)
        self.u_h = init(n_hidden, n_hidden)
        self.b_h = np.zeros(n_hidden)
        self.n_hidden = n_hidden
        self._cache: List[Tuple] = []
        self._x: np.ndarray | None = None
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.n_hidden))
        states = np.empty((batch, steps, self.n_hidden))
        self._cache = []
        self._x = x
        for t in range(steps):
            xt = x[:, t, :]
            z = sigmoid(xt @ self.w_z + h @ self.u_z + self.b_z)
            r = sigmoid(xt @ self.w_r + h @ self.u_r + self.b_r)
            h_tilde = np.tanh(xt @ self.w_h + (r * h) @ self.u_h + self.b_h)
            h_new = (1.0 - z) * h + z * h_tilde
            self._cache.append((xt, h, z, r, h_tilde))
            h = h_new
            states[:, t, :] = h
        return states

    def backward(self, grad_states: np.ndarray) -> np.ndarray:
        """BPTT given gradients w.r.t. every hidden state."""
        assert self._x is not None
        batch, steps, n_in = self._x.shape
        for name in ("w_z", "u_z", "b_z", "w_r", "u_r", "b_r", "w_h", "u_h", "b_h"):
            self.grads[name] = np.zeros_like(getattr(self, name))
        grad_x = np.zeros_like(self._x)
        grad_h = np.zeros((batch, self.n_hidden))
        for t in reversed(range(steps)):
            xt, h_prev, z, r, h_tilde = self._cache[t]
            grad_h = grad_h + grad_states[:, t, :]
            grad_z = grad_h * (h_tilde - h_prev) * z * (1.0 - z)
            grad_h_tilde = grad_h * z * (1.0 - h_tilde**2)
            grad_r = (grad_h_tilde @ self.u_h.T) * h_prev * r * (1.0 - r)

            self.grads["w_z"] += xt.T @ grad_z
            self.grads["u_z"] += h_prev.T @ grad_z
            self.grads["b_z"] += grad_z.sum(axis=0)
            self.grads["w_r"] += xt.T @ grad_r
            self.grads["u_r"] += h_prev.T @ grad_r
            self.grads["b_r"] += grad_r.sum(axis=0)
            self.grads["w_h"] += xt.T @ grad_h_tilde
            self.grads["u_h"] += (r * h_prev).T @ grad_h_tilde
            self.grads["b_h"] += grad_h_tilde.sum(axis=0)

            grad_x[:, t, :] = (
                grad_z @ self.w_z.T + grad_r @ self.w_r.T + grad_h_tilde @ self.w_h.T
            )
            grad_h = (
                grad_h * (1.0 - z)
                + grad_z @ self.u_z.T
                + grad_r @ self.u_r.T
                + (grad_h_tilde @ self.u_h.T) * r
            )
        return grad_x

    def parameters(self) -> Dict[str, np.ndarray]:
        return {
            name: getattr(self, name)
            for name in (
                "w_z", "u_z", "b_z", "w_r", "u_r", "b_r", "w_h", "u_h", "b_h"
            )
        }


class SGD:
    """SGD with momentum over a list of layers exposing parameters/grads."""

    def __init__(self, layers: List, learning_rate: float = 0.01,
                 momentum: float = 0.9, clip: float = 5.0):
        self.layers = layers
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.clip = clip
        self._velocity: List[Dict[str, np.ndarray]] = [
            {name: np.zeros_like(param) for name, param in layer.parameters().items()}
            for layer in layers
        ]

    def step(self) -> None:
        for layer, velocity in zip(self.layers, self._velocity):
            params = layer.parameters()
            for name, param in params.items():
                grad = layer.grads.get(name)
                if grad is None:
                    continue
                norm = np.linalg.norm(grad)
                if norm > self.clip:
                    grad = grad * (self.clip / norm)
                velocity[name] = (
                    self.momentum * velocity[name] - self.learning_rate * grad
                )
                param += velocity[name]
