"""Spectral Residual baseline (Hou & Zhang [8]).

The SR transform highlights the "salient" parts of a series: the log
amplitude spectrum minus its local average (the spectral residual) is
transformed back to the time domain as a saliency map, and points that
stand out from the saliency map's local level score high.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineDetector
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["SRDetector", "saliency_map"]


def _moving_average(values: np.ndarray, window: int) -> np.ndarray:
    kernel = np.ones(window) / window
    return np.convolve(values, kernel, mode="same")


def saliency_map(series: np.ndarray, spectrum_window: int = 3) -> np.ndarray:
    """The SR transform: time series -> saliency map.

    Parameters
    ----------
    series:
        1-D input series.
    spectrum_window:
        Width of the average filter applied to the log amplitude spectrum.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D series, got {values.shape}")
    if values.size < 4:
        return np.zeros_like(values)
    spectrum = np.fft.fft(values)
    amplitude = np.abs(spectrum)
    # Guard the log against exact zeros.
    log_amplitude = np.log(np.clip(amplitude, 1e-8, None))
    residual = log_amplitude - _moving_average(log_amplitude, spectrum_window)
    phase = np.angle(spectrum)
    saliency = np.abs(np.fft.ifft(np.exp(residual + 1j * phase)))
    return saliency


class SRDetector(BaselineDetector):
    """Spectral-residual scorer.

    Scores each point by the saliency map's relative excursion over its
    local average, the decision statistic of the original SR paper.

    Parameters
    ----------
    spectrum_window:
        Average-filter width on the log spectrum.
    score_window:
        Local-average width on the saliency map.
    """

    name = "SR"
    scores_per_kpi = True

    def __init__(self, spectrum_window: int = 3, score_window: int = 21):
        if spectrum_window < 1 or score_window < 1:
            raise ValueError("window widths must be >= 1")
        self.spectrum_window = spectrum_window
        self.score_window = score_window

    def fit(self, train: Dataset) -> None:
        """SR is training-free; kept for interface uniformity."""

    def _score_series(self, series: np.ndarray) -> np.ndarray:
        saliency = saliency_map(series, self.spectrum_window)
        local = _moving_average(saliency, self.score_window)
        return (saliency - local) / np.clip(local, 1e-8, None)

    def score_unit(self, unit: UnitSeries) -> np.ndarray:
        scores = np.empty_like(unit.values)
        for db in range(unit.n_databases):
            for k in range(unit.n_kpis):
                scores[db, k] = self._score_series(unit.values[db, k])
        return scores
