"""Dataset construction (Section IV-A).

Builders that run the cluster simulator under the three workload families,
inject paper-ratio anomaly mixes, and package the results as labelled
:class:`~repro.datasets.containers.UnitSeries` /
:class:`~repro.datasets.containers.Dataset` objects with the train/test and
periodic/irregular splits the evaluation uses.
"""

from repro.datasets.builder import build_unit_series
from repro.datasets.containers import Dataset, UnitSeries
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.mixed import (
    DATASET_SPECS,
    DatasetSpec,
    build_mixed_dataset,
)
from repro.datasets.splits import (
    split_by_periodicity,
    split_by_metadata,
    train_test_split,
)

__all__ = [
    "UnitSeries",
    "Dataset",
    "build_unit_series",
    "DatasetSpec",
    "DATASET_SPECS",
    "build_mixed_dataset",
    "train_test_split",
    "split_by_periodicity",
    "split_by_metadata",
    "save_dataset",
    "load_dataset",
]
