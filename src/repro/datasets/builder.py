"""Single-unit dataset builder: workload -> simulation -> injection.

The pipeline for one labelled unit series:

1. generate the per-tick demand (:mod:`repro.workloads`);
2. simulate the unit and collect the reported KPI series through the
   bypass monitor, with simulation injectors perturbing causes in flight;
3. apply series injectors to the collected array;
4. package values + merged ground truth as a
   :class:`~repro.datasets.containers.UnitSeries`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.anomalies.catalog import AnomalyPlan, schedule_anomalies
from repro.cluster.kpis import KPI_NAMES
from repro.cluster.monitor import BypassMonitor, MonitorSettings
from repro.cluster.requests import RequestMix
from repro.cluster.unit import Unit
from repro.datasets.containers import UnitSeries
from repro.workloads.sysbench import sysbench_irregular, sysbench_periodic
from repro.workloads.tencent import TENCENT_SCENARIOS, tencent_workload
from repro.workloads.tpcc import tpcc_irregular, tpcc_periodic

__all__ = ["build_unit_series"]

_FAMILIES = ("tencent", "sysbench", "tpcc")

#: Anomaly kinds injected per family.  The Tencent dataset carries the
#: full causal incident mix; Sysbench/TPCC follow the paper's protocol of
#: "proportionally injecting the time series deviations induced by the
#: real Tencent cloud database abnormal issues" (Section IV-A1), i.e.
#: deviation shapes applied to the collected series, plus the throughput
#: stall whose signature survives the benchmark workloads' step changes.
_FAMILY_KINDS = {
    "tencent": None,  # all kinds
    "sysbench": ["spike", "level_shift", "concept_drift", "stall"],
    "tpcc": ["spike", "level_shift", "concept_drift", "stall"],
}


def _demand(
    family: str,
    periodic: bool,
    scenario: Optional[str],
    n_ticks: int,
    rng: np.random.Generator,
) -> List[RequestMix]:
    if family == "tencent":
        names = sorted(TENCENT_SCENARIOS)
        chosen = scenario or names[int(rng.integers(0, len(names)))]
        return tencent_workload(n_ticks, scenario=chosen, periodic=periodic, rng=rng)
    if family == "sysbench":
        build = sysbench_periodic if periodic else sysbench_irregular
        return build(n_ticks, rng)
    if family == "tpcc":
        build = tpcc_periodic if periodic else tpcc_irregular
        return build(n_ticks, rng)
    raise ValueError(f"unknown workload family {family!r}; choose from {_FAMILIES}")


def build_unit_series(
    profile: str = "tencent",
    n_databases: int = 5,
    n_ticks: int = 600,
    seed: Optional[int] = None,
    periodic: bool = False,
    scenario: Optional[str] = None,
    abnormal_ratio: float = 0.04,
    anomaly_kinds: Optional[List[str]] = None,
    include_fluctuations: bool = True,
    monitor_settings: Optional[MonitorSettings] = None,
    plan: Optional[AnomalyPlan] = None,
    name: Optional[str] = None,
) -> UnitSeries:
    """Build one labelled unit series end to end.

    Parameters
    ----------
    profile:
        Workload family: ``"tencent"``, ``"sysbench"`` or ``"tpcc"``.
    n_databases:
        Databases in the unit (1 primary + replicas; the paper uses 5).
    n_ticks:
        Series length in 5-second ticks.
    seed:
        Master seed; all randomness (workload, simulation noise, anomaly
        schedule) derives from it, so equal seeds give equal datasets.
    periodic:
        Use the family's periodic variant (Sysbench II / TPCC II /
        periodic Tencent scenario shape) instead of the irregular one.
    scenario:
        Tencent business scenario; random when omitted.
    abnormal_ratio:
        Target labelled abnormal-point ratio (Table III).
    anomaly_kinds:
        Restrict injected incident types (see
        :data:`repro.anomalies.catalog.ANOMALY_TYPES`).
    include_fluctuations:
        Inject unlabeled temporal fluctuations.
    monitor_settings:
        Bypass-monitor pipeline parameters (collection delays, dropout).
    plan:
        Pre-built anomaly plan; overrides ``abnormal_ratio`` and
        ``anomaly_kinds``.
    name:
        Unit name; derived from profile and seed when omitted.
    """
    master = np.random.default_rng(seed)
    workload_rng = np.random.default_rng(int(master.integers(0, 2**63 - 1)))
    unit_seed = int(master.integers(0, 2**63 - 1))
    monitor_seed = int(master.integers(0, 2**63 - 1))
    plan_rng = np.random.default_rng(int(master.integers(0, 2**63 - 1)))
    inject_rng = np.random.default_rng(int(master.integers(0, 2**63 - 1)))

    mixes = _demand(profile, periodic, scenario, n_ticks, workload_rng)
    if plan is None:
        kinds = anomaly_kinds if anomaly_kinds is not None else _FAMILY_KINDS[profile]
        plan = schedule_anomalies(
            n_databases=n_databases,
            n_ticks=n_ticks,
            rng=plan_rng,
            abnormal_ratio=abnormal_ratio,
            kinds=kinds,
            n_kpis=len(KPI_NAMES),
            include_fluctuations=include_fluctuations,
        )

    unit = Unit(name or f"{profile}-unit", n_databases=n_databases, seed=unit_seed)
    monitor = BypassMonitor(unit, monitor_settings, seed=monitor_seed)
    values = monitor.collect(mixes, injectors=plan.simulation_injectors)
    labels = plan.labels()
    for injector in plan.series_injectors:
        injector.inject(values, labels, inject_rng)

    return UnitSeries(
        name=name or f"{profile}-{seed}",
        values=values,
        labels=labels,
        kpi_names=KPI_NAMES,
        interval_seconds=monitor.settings.interval_seconds,
        metadata={
            "family": profile,
            "periodic": periodic,
            "scenario": scenario,
            "seed": seed,
            "events": [
                (kind, victim, interval.start, interval.end)
                for kind, victim, interval in plan.events
            ],
            "collection_delays": monitor.delays.tolist(),
        },
    )
