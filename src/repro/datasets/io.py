"""Dataset persistence: save/load to compressed ``.npz`` archives.

Datasets are deterministic given their seed, but the larger scales take
minutes to simulate; persisting them lets the benchmark harness build once
and reuse across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Write a dataset to one compressed ``.npz`` archive.

    Metadata dictionaries are JSON-encoded per unit; array payloads are
    stored under ``values_<i>`` / ``labels_<i>`` keys.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "manifest": np.array(
            json.dumps(
                {
                    "name": dataset.name,
                    "n_units": dataset.n_units,
                    "kpi_names": list(dataset.kpi_names),
                    "units": [
                        {
                            "name": unit.name,
                            "interval_seconds": unit.interval_seconds,
                            "metadata": unit.metadata,
                        }
                        for unit in dataset.units
                    ],
                }
            )
        )
    }
    for index, unit in enumerate(dataset.units):
        payload[f"values_{index}"] = unit.values
        payload[f"labels_{index}"] = unit.labels
    np.savez_compressed(target, **payload)
    return target


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    source = Path(path)
    with np.load(source, allow_pickle=False) as archive:
        manifest = json.loads(str(archive["manifest"]))
        units = []
        for index, unit_info in enumerate(manifest["units"]):
            units.append(
                UnitSeries(
                    name=unit_info["name"],
                    values=archive[f"values_{index}"],
                    labels=archive[f"labels_{index}"],
                    kpi_names=tuple(manifest["kpi_names"]),
                    interval_seconds=unit_info["interval_seconds"],
                    metadata=unit_info["metadata"],
                )
            )
    return Dataset(name=manifest["name"], units=tuple(units))
