"""Mixed datasets (Table III).

Builds the three paper datasets — Tencent (100 units, 3.11 % abnormal),
Sysbench (50 units, 4.21 %), TPCC (50 units, 4.06 %) — each mixing 40 %
periodic and 60 % irregular units (Section IV-A2's measured proportions).

Full-paper scale is expensive (millions of points), so every spec takes a
``scale`` factor: ``scale=1.0`` reproduces Table III's point counts, the
default benches run at a reduced scale that preserves unit structure,
anomaly ratios and the periodic/irregular mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.builder import build_unit_series
from repro.datasets.containers import Dataset

__all__ = ["DatasetSpec", "DATASET_SPECS", "build_mixed_dataset"]

#: Fraction of periodic units in every dataset (Section IV-A2).
PERIODIC_FRACTION = 0.4


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale geometry and anomaly ratio of one Table III dataset."""

    name: str
    family: str
    n_units: int
    n_databases: int
    ticks_per_unit: int
    abnormal_ratio: float

    def scaled(self, scale: float) -> "DatasetSpec":
        """Spec with unit count and horizon shrunk by ``sqrt(scale)`` each.

        Splitting the shrink across both axes keeps at least a handful of
        units (cross-unit variance) and a useful horizon per unit.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must lie in (0, 1]")
        if scale == 1.0:
            return self
        axis = float(np.sqrt(scale))
        return DatasetSpec(
            name=self.name,
            family=self.family,
            n_units=max(2, int(round(self.n_units * axis))),
            n_databases=self.n_databases,
            ticks_per_unit=max(300, int(round(self.ticks_per_unit * axis))),
            abnormal_ratio=self.abnormal_ratio,
        )


#: Table III at full scale.  Point counts are units x databases x ticks;
#: the tick horizons are chosen so the totals match the paper's
#: (5 529 600 Tencent, 648 000 Sysbench/TPCC) as closely as the integer
#: geometry allows.
DATASET_SPECS = {
    "tencent": DatasetSpec(
        name="Tencent",
        family="tencent",
        n_units=100,
        n_databases=5,
        ticks_per_unit=11_059,
        abnormal_ratio=0.0311,
    ),
    "sysbench": DatasetSpec(
        name="Sysbench",
        family="sysbench",
        n_units=50,
        n_databases=5,
        ticks_per_unit=2_592,
        abnormal_ratio=0.0421,
    ),
    "tpcc": DatasetSpec(
        name="TPCC",
        family="tpcc",
        n_units=50,
        n_databases=5,
        ticks_per_unit=2_592,
        abnormal_ratio=0.0406,
    ),
}


def build_mixed_dataset(
    which: str,
    scale: float = 0.02,
    seed: Optional[int] = None,
    n_units: Optional[int] = None,
    ticks_per_unit: Optional[int] = None,
    periodic_fraction: Optional[float] = None,
) -> Dataset:
    """Build one mixed dataset (40 % periodic / 60 % irregular units).

    Parameters
    ----------
    which:
        ``"tencent"``, ``"sysbench"`` or ``"tpcc"``.
    scale:
        Fraction of the full-paper point count to build; 1.0 reproduces
        Table III's totals.
    seed:
        Master seed; per-unit seeds derive deterministically.
    n_units, ticks_per_unit:
        Explicit overrides of the scaled geometry.
    periodic_fraction:
        Override of the 40 % periodic share.  ``1.0`` / ``0.0`` build the
        dedicated periodic/irregular variant datasets (the paper's
        "Sysbench II" / "Sysbench I" construction).
    """
    key = which.lower()
    if key not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {which!r}; choose from {sorted(DATASET_SPECS)}"
        )
    spec = DATASET_SPECS[key].scaled(scale)
    units_total = n_units if n_units is not None else spec.n_units
    horizon = ticks_per_unit if ticks_per_unit is not None else spec.ticks_per_unit
    if units_total < 1:
        raise ValueError("need at least one unit")
    share = PERIODIC_FRACTION if periodic_fraction is None else periodic_fraction
    if not 0.0 <= share <= 1.0:
        raise ValueError("periodic_fraction must lie in [0, 1]")
    master = np.random.default_rng(seed)
    n_periodic = int(round(units_total * share))
    units = []
    for index in range(units_total):
        periodic = index < n_periodic
        unit_seed = int(master.integers(0, 2**63 - 1))
        units.append(
            build_unit_series(
                profile=spec.family,
                n_databases=spec.n_databases,
                n_ticks=horizon,
                seed=unit_seed,
                periodic=periodic,
                abnormal_ratio=spec.abnormal_ratio,
                name=f"{spec.name}-u{index:03d}",
            )
        )
    return Dataset(name=spec.name, units=tuple(units))
