"""Dataset containers: labelled unit series and dataset bundles."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

__all__ = ["UnitSeries", "Dataset"]


@dataclass(frozen=True)
class UnitSeries:
    """One unit's labelled multivariate monitoring series.

    Parameters
    ----------
    name:
        Unit identifier.
    values:
        KPI series of shape ``(n_databases, n_kpis, n_ticks)``.
    labels:
        Ground truth of shape ``(n_databases, n_ticks)``; ``True`` marks
        an abnormal (database, tick) point.
    kpi_names:
        KPI names matching the second axis.
    interval_seconds:
        Collection interval between ticks.
    metadata:
        Free-form provenance: workload family, scenario, periodic flag,
        seed, injected event list.
    """

    name: str
    values: np.ndarray
    labels: np.ndarray
    kpi_names: Tuple[str, ...]
    interval_seconds: float = 5.0
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=bool)
        if values.ndim != 3:
            raise ValueError(
                f"values must be (n_databases, n_kpis, n_ticks), got {values.shape}"
            )
        if values.shape[1] != len(self.kpi_names):
            raise ValueError(
                f"values carry {values.shape[1]} KPIs but "
                f"{len(self.kpi_names)} names were given"
            )
        if labels.shape != (values.shape[0], values.shape[2]):
            raise ValueError(
                f"labels must be ({values.shape[0]}, {values.shape[2]}), "
                f"got {labels.shape}"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "labels", labels)

    @property
    def n_databases(self) -> int:
        return self.values.shape[0]

    @property
    def n_kpis(self) -> int:
        return self.values.shape[1]

    @property
    def n_ticks(self) -> int:
        return self.values.shape[2]

    @property
    def total_points(self) -> int:
        """Labelled (database, tick) points."""
        return self.labels.size

    @property
    def abnormal_points(self) -> int:
        return int(self.labels.sum())

    @property
    def abnormal_ratio(self) -> float:
        return self.abnormal_points / self.total_points if self.total_points else 0.0

    def slice_ticks(self, start: int, end: int, suffix: str = "") -> "UnitSeries":
        """Sub-series over ticks ``[start, end)`` (for train/test splits)."""
        if not 0 <= start < end <= self.n_ticks:
            raise ValueError(
                f"invalid slice [{start}, {end}) for {self.n_ticks} ticks"
            )
        return replace(
            self,
            name=self.name + suffix,
            values=self.values[:, :, start:end].copy(),
            labels=self.labels[:, start:end].copy(),
        )


@dataclass(frozen=True)
class Dataset:
    """A named collection of unit series (one paper dataset)."""

    name: str
    units: Tuple[UnitSeries, ...]

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("a dataset needs at least one unit")
        object.__setattr__(self, "units", tuple(self.units))

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def kpi_names(self) -> Tuple[str, ...]:
        return self.units[0].kpi_names

    @property
    def total_points(self) -> int:
        return sum(unit.total_points for unit in self.units)

    @property
    def abnormal_points(self) -> int:
        return sum(unit.abnormal_points for unit in self.units)

    @property
    def abnormal_ratio(self) -> float:
        total = self.total_points
        return self.abnormal_points / total if total else 0.0

    def statistics(self) -> Dict[str, object]:
        """The Table III row for this dataset."""
        return {
            "dataset": self.name,
            "n_units": self.n_units,
            "n_dimensions": len(self.kpi_names),
            "total_points": self.total_points,
            "abnormal_points": self.abnormal_points,
            "abnormal_ratio": self.abnormal_ratio,
        }

    def filter_units(self, predicate) -> "Dataset":
        """Sub-dataset of units satisfying ``predicate(unit)``."""
        kept = tuple(unit for unit in self.units if predicate(unit))
        if not kept:
            raise ValueError("predicate removed every unit")
        return Dataset(name=self.name, units=kept)
