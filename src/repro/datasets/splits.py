"""Dataset splits: train/test and periodic/irregular (Section IV-A2/B).

The paper uses the first 50 % of every series as the training set and the
rest as the testing set, and classifies units into periodic and irregular
subsets — by construction for Sysbench/TPCC (the I and II variants) and
with RobustPeriod on "Requests Per Second" for the Tencent data (our
substitute lives in :mod:`repro.analysis.periodicity`).
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.periodicity import classify_periodicity
from repro.cluster.kpis import KPI_INDEX
from repro.datasets.containers import Dataset, UnitSeries

__all__ = ["train_test_split", "split_by_metadata", "split_by_periodicity"]


def train_test_split(
    dataset: Dataset, train_fraction: float = 0.5
) -> Tuple[Dataset, Dataset]:
    """Time-split every unit: first fraction for training, rest for test."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie in (0, 1)")
    train_units = []
    test_units = []
    for unit in dataset.units:
        cut = int(unit.n_ticks * train_fraction)
        if cut < 1 or cut >= unit.n_ticks:
            raise ValueError(
                f"unit {unit.name} too short ({unit.n_ticks} ticks) to split"
            )
        train_units.append(unit.slice_ticks(0, cut, suffix="-train"))
        test_units.append(unit.slice_ticks(cut, unit.n_ticks, suffix="-test"))
    return (
        Dataset(name=dataset.name + "-train", units=tuple(train_units)),
        Dataset(name=dataset.name + "-test", units=tuple(test_units)),
    )


def split_by_metadata(dataset: Dataset) -> Tuple[Dataset, Dataset]:
    """Periodic/irregular split using each unit's construction metadata.

    Returns
    -------
    (irregular, periodic):
        Two datasets named with the paper's I / II suffixes.
    """
    irregular = [u for u in dataset.units if not u.metadata.get("periodic")]
    periodic = [u for u in dataset.units if u.metadata.get("periodic")]
    if not irregular or not periodic:
        raise ValueError(
            "dataset lacks one of the variants; was it built with the "
            "default 40/60 periodic mix?"
        )
    return (
        Dataset(name=dataset.name + " I", units=tuple(irregular)),
        Dataset(name=dataset.name + " II", units=tuple(periodic)),
    )


def _unit_is_periodic(unit: UnitSeries) -> bool:
    """RobustPeriod-substitute verdict on the unit's RPS series.

    A unit is periodic when the majority of its databases' "Requests Per
    Second" series test periodic.
    """
    kpi = KPI_INDEX["requests_per_second"]
    votes = sum(
        int(classify_periodicity(unit.values[db, kpi, :]).periodic)
        for db in range(unit.n_databases)
    )
    return votes * 2 > unit.n_databases


def split_by_periodicity(dataset: Dataset) -> Tuple[Dataset, Dataset]:
    """Periodic/irregular split by *measuring* RPS periodicity per unit.

    This is the paper's Tencent procedure; for generated datasets prefer
    :func:`split_by_metadata`, which is exact by construction.

    Returns
    -------
    (irregular, periodic):
        Two datasets named with the paper's I / II suffixes.
    """
    periodic_units = []
    irregular_units = []
    for unit in dataset.units:
        (periodic_units if _unit_is_periodic(unit) else irregular_units).append(unit)
    if not periodic_units or not irregular_units:
        raise ValueError(
            "periodicity test put every unit in one class; the dataset may "
            "be too short for the detector to see full cycles"
        )
    return (
        Dataset(name=dataset.name + " I", units=tuple(irregular_units)),
        Dataset(name=dataset.name + " II", units=tuple(periodic_units)),
    )
