"""Detection-performance objective shared by all threshold searchers.

An individual's fitness is the F-Measure DBCatcher achieves with the
individual's thresholds over the most recent labelled period — the paper's
"judgement records of the recent period".  Evaluating a genome therefore
re-runs the streaming detector over the replay data with the candidate
thresholds installed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.detector import DBCatcher
from repro.eval.adjust import adjusted_confusion_from_records
from repro.eval.metrics import ConfusionCounts, scores_from_confusion
from repro.tuning.genome import ThresholdGenome

__all__ = ["DetectionObjective"]


class DetectionObjective:
    """F-Measure of a threshold genome over a labelled replay window.

    Parameters
    ----------
    config:
        Template configuration; window geometry and KPI names come from
        here, only the thresholds vary per genome.
    values:
        Replay KPI data of shape ``(n_databases, n_kpis, n_ticks)``, or a
        list of such arrays (one per unit) to fit thresholds over a whole
        dataset.
    labels:
        Ground truth of shape ``(n_databases, n_ticks)`` (or a matching
        list).

    Notes
    -----
    Evaluations are memoized per genome: the population-based searchers
    re-visit elite individuals every generation, and detection re-runs are
    the dominant cost.
    """

    def __init__(
        self,
        config: DBCatcherConfig,
        values,
        labels,
    ):
        value_list = values if isinstance(values, (list, tuple)) else [values]
        label_list = labels if isinstance(labels, (list, tuple)) else [labels]
        if len(value_list) != len(label_list):
            raise ValueError("values and labels lists must have equal length")
        self._pairs = []
        for raw_values, raw_labels in zip(value_list, label_list):
            data = np.asarray(raw_values, dtype=np.float64)
            truth = np.asarray(raw_labels, dtype=bool)
            if data.ndim != 3:
                raise ValueError(
                    f"values must be (n_databases, n_kpis, n_ticks), got {data.shape}"
                )
            if data.shape[1] != config.n_kpis:
                raise ValueError(
                    f"values carry {data.shape[1]} KPIs but config has {config.n_kpis}"
                )
            if truth.shape != (data.shape[0], data.shape[2]):
                raise ValueError(
                    "labels must be (n_databases, n_ticks) matching values"
                )
            if data.shape[2] < config.initial_window:
                raise ValueError(
                    "replay window shorter than the detector's initial window"
                )
            self._pairs.append((data, truth))
        if not self._pairs:
            raise ValueError("objective needs at least one replay window")
        self._config = config
        self._cache: Dict[Tuple, float] = {}
        #: Number of non-memoized fitness evaluations performed.
        self.evaluations = 0

    @property
    def config(self) -> DBCatcherConfig:
        return self._config

    @property
    def n_kpis(self) -> int:
        return self._config.n_kpis

    def __call__(self, genome: ThresholdGenome) -> float:
        """Fitness of one genome: detection F-Measure on the replay data."""
        key = (genome.alphas, round(genome.theta, 6), genome.tolerance)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        candidate = genome.apply_to(self._config)
        counts = ConfusionCounts()
        for values, labels in self._pairs:
            detector = DBCatcher(candidate, n_databases=values.shape[0])
            detector.process(values, time_axis=-1)
            # Fitness uses the same segment-adjusted convention the
            # evaluation reports, so the GA optimizes what is measured.
            counts = counts + adjusted_confusion_from_records(detector.history, labels)
        fitness = scores_from_confusion(counts).f_measure
        self._cache[key] = fitness
        self.evaluations += 1
        return fitness
