"""Vectorized GA objective: one batched-engine pass per replay window.

:class:`~repro.tuning.objective.DetectionObjective` re-runs the full
streaming detector once per genome, which makes threshold search cost
``O(population x generations)`` detector replays.  The key observation
behind this module: the KCD scores — and therefore the aggregated
per-database peer scores Algorithm 1 thresholds — do not depend on the
genome at all.  Only the score-to-level mapping (``alpha_i``, ``theta``)
and the Fig. 7 state machine (tolerance count) do.

:class:`VectorizedObjective` therefore splits fitness evaluation in two:

1. **Precompute** (once, at construction): enumerate every round start
   reachable from tick 0 under the flexible-window geometry (round ends
   are always ``start + size_e`` for an expansion size ``size_e``), and
   for each ``(start, expansion)`` pair run one shared
   :class:`~repro.engine.batched.BatchedEngine` pass — whose window cache
   reuses normalized rows and prefix sums across the same-start growing
   windows — and store the aggregated peer-score array produced by
   Algorithm 1's ``Search``/aggregate steps (via
   :func:`~repro.core.levels.calculate_levels`, so the arithmetic is the
   detector's own).
2. **Evaluate** (per population): broadcast the whole population's
   thresholds against the cached score tensors to get every genome's
   per-database state at every ``(start, expansion)`` in one numpy pass,
   then walk each genome's round lattice — different thresholds resolve
   rounds at different window sizes, so the cursor path is genome-specific
   — and score the resulting spans with the same segment-adjusted
   convention the replay objective uses.

The result is bit-identical fitness to :class:`DetectionObjective` (the
differential tests pin this) at a per-genome cost of a cheap lattice walk
instead of a full detector replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.core.levels import calculate_levels
from repro.eval.adjust import adjusted_confusion_from_spans
from repro.eval.metrics import ConfusionCounts, scores_from_confusion
from repro.tuning.genome import ThresholdGenome

__all__ = ["VectorizedObjective"]

_HEALTHY = 0
_OBSERVABLE = 1
_ABNORMAL = 2


def _window_sizes(config: DBCatcherConfig) -> Tuple[int, ...]:
    """The flexible window's size ladder ``W, W + Delta, ..., W_M``."""
    sizes = [config.initial_window]
    while sizes[-1] < config.max_window:
        sizes.append(min(sizes[-1] + config.window_step, config.max_window))
    return tuple(sizes)


@dataclass(frozen=True)
class _WindowFacts:
    """Threshold-independent facts about one ``(round start, size)`` window.

    ``scores`` is ``None`` when fewer than two databases have finite data
    over the window — the detector resolves such a round immediately, so
    no correlation pass ever runs for it.
    """

    round_active: np.ndarray
    scores: Optional[np.ndarray]


class _ReplayPlan:
    """Precomputed round-start lattice for one replay window (one unit)."""

    def __init__(self, values: np.ndarray, labels: np.ndarray, config: DBCatcherConfig):
        # Local import: repro.engine imports repro.core.config, and this
        # module is reachable from package inits; mirroring the detector's
        # lazy import keeps the import graph acyclic.
        from repro.engine.base import make_engine

        self.labels = labels
        self.n_databases, _, self.n_ticks = values.shape
        sizes = _window_sizes(config)
        engine = make_engine(config.backend)
        finite = np.isfinite(values)
        #: start tick -> per-expansion facts (shorter than ``sizes`` when
        #: the replay ends before the larger expansions fit).
        self.windows: Dict[int, List[_WindowFacts]] = {}
        frontier = [0]
        seen = {0}
        while frontier:
            start = frontier.pop()
            if start + sizes[0] > self.n_ticks:
                continue
            lattice: List[_WindowFacts] = []
            for size in sizes:
                end = start + size
                if end > self.n_ticks:
                    break
                if end not in seen:
                    seen.add(end)
                    frontier.append(end)
                round_active = finite[:, :, start:end].all(axis=(1, 2))
                if int(round_active.sum()) < 2:
                    lattice.append(_WindowFacts(round_active, None))
                    continue
                matrices = engine.matrices(
                    values[:, :, start:end],
                    config.kpi_names,
                    max_delay=config.max_delay(size),
                    active=round_active,
                    window_start=start,
                )
                # Algorithm 1's own aggregation code produces the scores,
                # so every Search/aggregate subtlety (rr-only KPI masks,
                # peerless databases scoring 1.0, the aggregation rule)
                # matches the detector by construction.  The levels the
                # call also computes depend on the template thresholds and
                # are discarded; only the scores are genome-independent.
                levels = calculate_levels(matrices, config, active=round_active)
                lattice.append(_WindowFacts(round_active, levels.scores))
            self.windows[start] = lattice
        engine.reset()


class VectorizedObjective:
    """Drop-in replacement for ``DetectionObjective`` with batched fitness.

    Accepts the same constructor arguments and exposes the same surface
    (``config``, ``n_kpis``, ``evaluations``, per-genome ``__call__``),
    plus :meth:`evaluate_population` which scores a whole population in
    one broadcast pass over the precomputed score tensors.

    The instance holds only plain arrays and the config after
    construction, so it pickles cheaply across the parallel evaluator's
    process boundary (and fork-based workers inherit the precomputed
    lattice for free).
    """

    def __init__(
        self,
        config: DBCatcherConfig,
        values,
        labels,
    ):
        value_list = values if isinstance(values, (list, tuple)) else [values]
        label_list = labels if isinstance(labels, (list, tuple)) else [labels]
        if len(value_list) != len(label_list):
            raise ValueError("values and labels lists must have equal length")
        self._plans: List[_ReplayPlan] = []
        for raw_values, raw_labels in zip(value_list, label_list):
            data = np.asarray(raw_values, dtype=np.float64)
            truth = np.asarray(raw_labels, dtype=bool)
            if data.ndim != 3:
                raise ValueError(
                    f"values must be (n_databases, n_kpis, n_ticks), got {data.shape}"
                )
            if data.shape[1] != config.n_kpis:
                raise ValueError(
                    f"values carry {data.shape[1]} KPIs but config has {config.n_kpis}"
                )
            if truth.shape != (data.shape[0], data.shape[2]):
                raise ValueError(
                    "labels must be (n_databases, n_ticks) matching values"
                )
            if data.shape[2] < config.initial_window:
                raise ValueError(
                    "replay window shorter than the detector's initial window"
                )
            if data.shape[0] < 2:
                raise ValueError("UKPIC needs at least two databases in a unit")
            self._plans.append(_ReplayPlan(data, truth, config))
        if not self._plans:
            raise ValueError("objective needs at least one replay window")
        self._config = config
        self._sizes = _window_sizes(config)
        self._cache: Dict[Tuple, float] = {}
        #: Number of non-memoized fitness evaluations performed.
        self.evaluations = 0

    @property
    def config(self) -> DBCatcherConfig:
        return self._config

    @property
    def n_kpis(self) -> int:
        return self._config.n_kpis

    @staticmethod
    def _key(genome: ThresholdGenome) -> Tuple:
        # Same memo key as DetectionObjective, so memo behaviour (and the
        # determinism tests built on ``evaluations``) carry over.
        return (genome.alphas, round(genome.theta, 6), genome.tolerance)

    def __call__(self, genome: ThresholdGenome) -> float:
        """Fitness of one genome: detection F-Measure on the replay data."""
        return self.evaluate_population([genome])[0]

    def evaluate_population(self, population: Sequence[ThresholdGenome]) -> List[float]:
        """Fitness of every genome, thresholding all of them in one pass."""
        missing: List[ThresholdGenome] = []
        missing_keys = set()
        for genome in population:
            key = self._key(genome)
            if key not in self._cache and key not in missing_keys:
                missing_keys.add(key)
                missing.append(genome)
        if missing:
            alphas = np.array([g.alphas for g in missing], dtype=np.float64)
            thetas = np.array([g.theta for g in missing], dtype=np.float64)
            tolerances = np.array([g.tolerance for g in missing], dtype=np.int64)
            counts = [ConfusionCounts() for _ in missing]
            for plan in self._plans:
                states = _StateLattice(plan, alphas, thetas, tolerances)
                for index in range(len(missing)):
                    counts[index] = counts[index] + self._replay_confusion(
                        plan, states, index
                    )
            for index, genome in enumerate(missing):
                fitness = scores_from_confusion(counts[index]).f_measure
                self._cache[self._key(genome)] = fitness
                self.evaluations += 1
        return [self._cache[self._key(genome)] for genome in population]

    def _replay_confusion(
        self, plan: _ReplayPlan, states: "_StateLattice", index: int
    ) -> ConfusionCounts:
        """Walk one genome's round lattice; segment-adjusted confusion.

        Mirrors ``DBCatcher._step_round`` exactly: the pending set shrinks
        to databases with finite data, a round with fewer than two usable
        databases (or nothing left to judge) resolves immediately with the
        records already made, OBSERVABLE databases expand the window until
        ``W_M`` forces a verdict, and a round the replay cannot finish
        contributes no records at all.
        """
        sizes = self._sizes
        max_window = self._config.max_window
        forced_abnormal = self._config.resolve_max_window_as_abnormal
        n_ticks = plan.n_ticks
        n_databases = plan.n_databases
        spans: List[List[Tuple[int, int]]] = [[] for _ in range(n_databases)]
        preds: List[List[bool]] = [[] for _ in range(n_databases)]
        cursor = 0
        while cursor + sizes[0] <= n_ticks:
            lattice = plan.windows[cursor]
            pending = list(range(n_databases))
            round_records: List[Tuple[int, int, bool]] = []
            finished_end: Optional[int] = None
            for expansion, size in enumerate(sizes):
                end = cursor + size
                if end > n_ticks:
                    break  # round blocked forever: no records survive
                facts = lattice[expansion]
                active = facts.round_active
                pending = [db for db in pending if active[db]]
                if facts.scores is None or not pending:
                    finished_end = end
                    break
                verdicts = states.at(cursor, expansion)[index]
                still_pending: List[int] = []
                at_max = size >= max_window
                for db in pending:
                    state = verdicts[db]
                    if state == _OBSERVABLE and not at_max:
                        still_pending.append(db)
                        continue
                    predicted = state == _ABNORMAL or (
                        state == _OBSERVABLE and forced_abnormal
                    )
                    round_records.append((db, end, predicted))
                if not still_pending:
                    finished_end = end
                    break
                pending = still_pending
            if finished_end is None:
                break
            for db, end, predicted in round_records:
                spans[db].append((cursor, end))
                preds[db].append(predicted)
            cursor = finished_end
        total = ConfusionCounts()
        for db in range(n_databases):
            if spans[db]:
                total = total + adjusted_confusion_from_spans(
                    spans[db],
                    np.asarray(preds[db], dtype=bool),
                    plan.labels[db],
                )
        return total


class _StateLattice:
    """Lazy per-(start, expansion) state arrays for a genome batch.

    ``at(start, expansion)`` returns an ``(n_genomes, n_databases)`` int
    array of Fig. 7 states, computed on first touch for the whole batch at
    once via broadcasting and cached — genomes whose walks visit the same
    lattice point share the work.
    """

    def __init__(
        self,
        plan: _ReplayPlan,
        alphas: np.ndarray,
        thetas: np.ndarray,
        tolerances: np.ndarray,
    ):
        self._plan = plan
        self._alphas = alphas
        self._lower = alphas - thetas[:, None]
        self._tolerances = tolerances
        self._cache: Dict[Tuple[int, int], np.ndarray] = {}

    def at(self, start: int, expansion: int) -> np.ndarray:
        key = (start, expansion)
        states = self._cache.get(key)
        if states is None:
            scores = self._plan.windows[start][expansion].scores
            assert scores is not None  # callers skip correlation-free windows
            level3 = scores[None, :, :] >= self._alphas[:, None, :]
            level1 = scores[None, :, :] < self._lower[:, None, :]
            level2 = ~level3 & ~level1
            extreme = level1.sum(axis=2)
            slight = level2.sum(axis=2)
            abnormal = (extreme > 0) | (slight > self._tolerances[:, None])
            healthy = (extreme == 0) & (slight == 0)
            states = np.where(
                abnormal, _ABNORMAL, np.where(healthy, _HEALTHY, _OBSERVABLE)
            ).astype(np.int8)
            self._cache[key] = states
        return states
