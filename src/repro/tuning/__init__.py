"""Adaptive threshold learning (Section III-D).

The genome encodes everything the flexible-window judgement depends on:
the per-KPI correlation thresholds ``alpha_i``, the tolerance threshold
``theta`` and the maximum tolerance deviation count.  Three searchers
optimize the same detection-F-Measure objective over recent labelled data:

* :class:`~repro.tuning.genetic.GeneticThresholdLearner` — Algorithm 2,
  DBCatcher's learner;
* :class:`~repro.tuning.annealing.AnnealingThresholdLearner` — the
  simulated-annealing comparator of Figure 11;
* :class:`~repro.tuning.random_search.RandomThresholdLearner` — the
  random-search comparator of Figure 11.
"""

from repro.tuning.annealing import AnnealingThresholdLearner
from repro.tuning.genetic import GeneticThresholdLearner
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective
from repro.tuning.random_search import RandomThresholdLearner

__all__ = [
    "ThresholdGenome",
    "DetectionObjective",
    "GeneticThresholdLearner",
    "AnnealingThresholdLearner",
    "RandomThresholdLearner",
]
