"""Adaptive threshold learning (Section III-D).

The genome encodes everything the flexible-window judgement depends on:
the per-KPI correlation thresholds ``alpha_i``, the tolerance threshold
``theta`` and the maximum tolerance deviation count.  Three searchers
optimize the same detection-F-Measure objective over recent labelled data:

* :class:`~repro.tuning.genetic.GeneticThresholdLearner` — Algorithm 2,
  DBCatcher's learner;
* :class:`~repro.tuning.annealing.AnnealingThresholdLearner` — the
  simulated-annealing comparator of Figure 11;
* :class:`~repro.tuning.random_search.RandomThresholdLearner` — the
  random-search comparator of Figure 11.

Fitness evaluation scales through
:class:`~repro.tuning.vectorized.VectorizedObjective` (one batched-engine
pass per replay window, whole populations thresholded via broadcasting)
and the GA's ``jobs``/checkpoint/resume support
(:class:`~repro.tuning.checkpoint.TuningCheckpoint`).
"""

from repro.tuning.annealing import AnnealingThresholdLearner
from repro.tuning.checkpoint import TuningCheckpoint
from repro.tuning.genetic import GeneticThresholdLearner, PopulationEvaluator
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective
from repro.tuning.random_search import RandomThresholdLearner
from repro.tuning.vectorized import VectorizedObjective

__all__ = [
    "ThresholdGenome",
    "DetectionObjective",
    "VectorizedObjective",
    "PopulationEvaluator",
    "TuningCheckpoint",
    "GeneticThresholdLearner",
    "AnnealingThresholdLearner",
    "RandomThresholdLearner",
]
