"""Random-search threshold searcher (Figure 11 comparator, "Random").

Samples genomes uniformly inside the paper's initial ranges and keeps the
best.  The simplest possible baseline: no exploitation of structure at
all, which is exactly why the genetic algorithm should beat it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig
from repro.tuning.genetic import SearchTrace
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective

__all__ = ["RandomThresholdLearner"]


class RandomThresholdLearner:
    """Uniform random search over threshold genomes.

    Parameters
    ----------
    n_iterations:
        Number of random genomes to evaluate.
    seed:
        Seed for the search's random generator.
    """

    name = "Random"

    def __init__(self, n_iterations: int = 160, seed: Optional[int] = None):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_iterations = n_iterations
        self._seed = seed
        self.last_trace: Optional[SearchTrace] = None

    def __call__(
        self,
        config: DBCatcherConfig,
        values: np.ndarray,
        labels: np.ndarray,
    ) -> DBCatcherConfig:
        genome, _ = self.search(DetectionObjective(config, values, labels))
        return genome.apply_to(config)

    def search(self, objective: DetectionObjective) -> Tuple[ThresholdGenome, float]:
        """Evaluate random genomes; return the best one seen."""
        rng = np.random.default_rng(self._seed)
        best = ThresholdGenome.from_config(objective.config)
        best_fitness = objective(best)
        trace: List[float] = []
        for _ in range(self.n_iterations):
            candidate = ThresholdGenome.random(objective.n_kpis, rng)
            fitness = objective(candidate)
            if fitness > best_fitness:
                best, best_fitness = candidate, fitness
            trace.append(best_fitness)
        self.last_trace = SearchTrace(best_fitness=tuple(trace))
        return best, best_fitness
