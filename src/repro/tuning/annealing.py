"""Simulated-annealing threshold searcher (Figure 11 comparator, "SAA").

Starts from the incumbent thresholds and explores neighbouring genomes; a
worse neighbour is accepted with probability ``exp(delta / T)``, with the
temperature ``T`` decaying geometrically.  Shares the fitness objective
and evaluation budget convention with the genetic learner so the Figure 11
comparison is apples-to-apples.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig, LEARNING_RATE
from repro.tuning.genetic import SearchTrace
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective

__all__ = ["AnnealingThresholdLearner"]


class AnnealingThresholdLearner:
    """Simulated annealing over threshold genomes.

    Parameters
    ----------
    n_iterations:
        Number of annealing steps (one fitness evaluation each).
    initial_temperature:
        Starting temperature for the acceptance rule.
    cooling:
        Geometric decay factor per step, in ``(0, 1)``.
    step_scale:
        Standard deviation of the Gaussian neighbourhood move.
    seed:
        Seed for the search's random generator.
    """

    name = "SAA"

    def __init__(
        self,
        n_iterations: int = 160,
        initial_temperature: float = 0.1,
        cooling: float = 0.95,
        step_scale: float = LEARNING_RATE,
        seed: Optional[int] = None,
    ):
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if initial_temperature <= 0.0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must lie in (0, 1)")
        self.n_iterations = n_iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.step_scale = step_scale
        self._seed = seed
        self.last_trace: Optional[SearchTrace] = None

    def __call__(
        self,
        config: DBCatcherConfig,
        values: np.ndarray,
        labels: np.ndarray,
    ) -> DBCatcherConfig:
        genome, _ = self.search(DetectionObjective(config, values, labels))
        return genome.apply_to(config)

    def search(self, objective: DetectionObjective) -> Tuple[ThresholdGenome, float]:
        """Run the annealing schedule; return the best genome visited."""
        rng = np.random.default_rng(self._seed)
        current = ThresholdGenome.from_config(objective.config)
        current_fitness = objective(current)
        best, best_fitness = current, current_fitness
        temperature = self.initial_temperature
        trace: List[float] = []

        for _ in range(self.n_iterations):
            neighbour = current.perturb(rng, self.step_scale)
            neighbour_fitness = objective(neighbour)
            delta = neighbour_fitness - current_fitness
            if delta >= 0.0 or rng.random() < math.exp(delta / max(temperature, 1e-9)):
                current, current_fitness = neighbour, neighbour_fitness
            if current_fitness > best_fitness:
                best, best_fitness = current, current_fitness
            temperature *= self.cooling
            trace.append(best_fitness)

        self.last_trace = SearchTrace(best_fitness=tuple(trace))
        return best, best_fitness
