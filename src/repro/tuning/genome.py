"""Threshold genome: the individual of the genetic algorithm.

An individual's gene has three components (Section III-D): the ``Q``
correlation thresholds ``alpha_i``, the tolerance threshold ``theta`` and
the maximum tolerance deviation number.  Genes are generated inside the
paper's initial ranges, and the crossover/mutation operators implement the
strategies of Algorithm 2 verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.config import (
    ALPHA_RANGE,
    DBCatcherConfig,
    LEARNING_RATE,
    THETA_RANGE,
    TOLERANCE_RANGE,
)

__all__ = ["ThresholdGenome"]


@dataclass(frozen=True)
class ThresholdGenome:
    """One candidate threshold assignment.

    Parameters
    ----------
    alphas:
        Per-KPI correlation thresholds.
    theta:
        Tolerance threshold.
    tolerance:
        Maximum tolerance deviation count.
    """

    alphas: Tuple[float, ...]
    theta: float
    tolerance: int

    def __post_init__(self) -> None:
        if not self.alphas:
            raise ValueError("genome needs at least one alpha threshold")
        if not all(-1.0 <= a <= 1.0 for a in self.alphas):
            raise ValueError("alpha thresholds must lie in [-1, 1]")
        if self.theta < 0.0:
            raise ValueError("theta must be non-negative")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    @property
    def n_kpis(self) -> int:
        return len(self.alphas)

    @classmethod
    def random(cls, n_kpis: int, rng: np.random.Generator) -> "ThresholdGenome":
        """Fresh random genome inside the paper's initial ranges."""
        alphas = tuple(
            float(rng.uniform(ALPHA_RANGE[0], ALPHA_RANGE[1])) for _ in range(n_kpis)
        )
        theta = float(rng.uniform(THETA_RANGE[0], THETA_RANGE[1]))
        tolerance = int(rng.integers(TOLERANCE_RANGE[0], TOLERANCE_RANGE[1] + 1))
        return cls(alphas=alphas, theta=theta, tolerance=tolerance)

    @classmethod
    def from_config(cls, config: DBCatcherConfig) -> "ThresholdGenome":
        """Genome encoding a detector's current thresholds."""
        return cls(
            alphas=config.alphas,
            theta=config.theta,
            tolerance=config.max_tolerance_deviations,
        )

    def apply_to(self, config: DBCatcherConfig) -> DBCatcherConfig:
        """Config with this genome's thresholds installed."""
        if self.n_kpis != config.n_kpis:
            raise ValueError(
                f"genome covers {self.n_kpis} KPIs but config has {config.n_kpis}"
            )
        return config.with_thresholds(self.alphas, self.theta, self.tolerance)

    def crossover(
        self, other: "ThresholdGenome", rng: np.random.Generator
    ) -> Tuple["ThresholdGenome", "ThresholdGenome"]:
        """Crossover strategy of Algorithm 2.

        A random cut point ``m`` (the list ``a = {1..M}``, ``M in (0, N)``)
        splits the alpha vectors: child one takes ``x[:m] + y[m:]``, child
        two the complement.  ``theta`` and the tolerance count of each
        child are chosen randomly from either parent.
        """
        if self.n_kpis != other.n_kpis:
            raise ValueError("cannot cross genomes of different KPI counts")
        n = self.n_kpis
        m = int(rng.integers(1, n)) if n > 1 else 1
        child_a = self.alphas[:m] + other.alphas[m:]
        child_b = other.alphas[:m] + self.alphas[m:]

        def pick(a_value, b_value):
            return a_value if rng.random() < 0.5 else b_value

        first = ThresholdGenome(
            alphas=child_a,
            theta=pick(self.theta, other.theta),
            tolerance=pick(self.tolerance, other.tolerance),
        )
        second = ThresholdGenome(
            alphas=child_b,
            theta=pick(other.theta, self.theta),
            tolerance=pick(other.tolerance, self.tolerance),
        )
        return first, second

    def mutate(
        self, rng: np.random.Generator, learning_rate: float = LEARNING_RATE
    ) -> "ThresholdGenome":
        """Mutation strategy of Algorithm 2.

        Each alpha randomly increases or decreases by the learning rate
        ``Delta`` (clamped to the valid score range); ``theta`` and the
        tolerance count are regenerated inside their initial ranges.
        """
        alphas = tuple(
            float(
                np.clip(
                    a + learning_rate * (1 if rng.random() < 0.5 else -1),
                    -1.0,
                    1.0,
                )
            )
            for a in self.alphas
        )
        theta = float(rng.uniform(THETA_RANGE[0], THETA_RANGE[1]))
        tolerance = int(rng.integers(TOLERANCE_RANGE[0], TOLERANCE_RANGE[1] + 1))
        return ThresholdGenome(alphas=alphas, theta=theta, tolerance=tolerance)

    def perturb(
        self, rng: np.random.Generator, scale: float = LEARNING_RATE
    ) -> "ThresholdGenome":
        """Small random neighbour (used by simulated annealing).

        Unlike :meth:`mutate`, the perturbation is continuous and keeps
        ``theta``/``tolerance`` close to their current values, which is the
        neighbourhood structure annealing expects.
        """
        alphas = tuple(
            float(np.clip(a + rng.normal(0.0, scale), -1.0, 1.0)) for a in self.alphas
        )
        theta = float(
            np.clip(
                self.theta + rng.normal(0.0, scale / 2),
                THETA_RANGE[0],
                THETA_RANGE[1],
            )
        )
        step = int(rng.integers(-1, 2))
        tolerance = int(
            np.clip(self.tolerance + step, TOLERANCE_RANGE[0], TOLERANCE_RANGE[1])
        )
        return ThresholdGenome(alphas=alphas, theta=theta, tolerance=tolerance)
