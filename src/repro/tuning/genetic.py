"""Genetic threshold learner (Algorithm 2).

The population evolves for ``n_iterations`` generations.  Each generation:

1. every individual's detection performance is computed (fitness);
2. the historically best genome is saved (elitism);
3. the worst-performing fraction is evicted;
4. survivors are selected with probability proportional to fitness
   (Eq. 6), crossed over, and mutated with probability ``beta`` to refill
   the population to its constant size.

Fitness evaluation is pluggable along two axes, both preserving the
exact serial search trajectory:

* objectives exposing ``evaluate_population`` (the vectorized objective)
  are scored a whole population per call instead of genome-by-genome;
* ``jobs > 1`` fans un-memoized genomes out over a process pool.  The GA
  generator never leaves the parent process and pool results come back
  in submission order, so the evolved population — and therefore the
  best genome — is identical for every ``jobs`` value.

Long searches can snapshot to a :class:`~repro.tuning.checkpoint.\
TuningCheckpoint` every ``checkpoint_every`` generations and resume
mid-run; the RNG state rides along, so a split run is bit-identical to
an uninterrupted one.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig, LEARNING_RATE
from repro.obs import runtime as obs
from repro.tuning.checkpoint import TuningCheckpoint
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective
from repro.tuning.vectorized import VectorizedObjective

__all__ = ["GeneticThresholdLearner", "PopulationEvaluator", "SearchTrace"]

#: Fitness callable for a single genome.
Objective = Callable[[ThresholdGenome], float]

# Per-process objective installed by the pool initializer.  Workers are
# forked (or receive the objective through initargs under spawn), so the
# parent's objective — including a vectorized objective's precomputed
# score lattice — is shared without re-serializing it per task.
_WORKER_OBJECTIVE: Optional[Objective] = None


def _init_worker(objective: Objective) -> None:
    global _WORKER_OBJECTIVE
    _WORKER_OBJECTIVE = objective


def _evaluate_chunk(genomes: Sequence[ThresholdGenome]) -> List[float]:
    objective = _WORKER_OBJECTIVE
    assert objective is not None, "worker pool initializer did not run"
    if isinstance(objective, VectorizedObjective):
        return [float(f) for f in objective.evaluate_population(list(genomes))]
    return [float(objective(genome)) for genome in genomes]


def _genome_key(genome: ThresholdGenome) -> Tuple:
    # Mirrors the objectives' internal memo key so the evaluator's
    # parent-side cache and an objective's own cache agree on identity.
    return (genome.alphas, round(genome.theta, 6), genome.tolerance)


class PopulationEvaluator:
    """Order-preserving population fitness with an optional process pool.

    The parent keeps a fitness memo; only genomes never seen before are
    (re-)evaluated.  With ``jobs > 1`` the unseen genomes are split into
    contiguous chunks and mapped over a pool whose workers each hold one
    copy of the objective — ``pool.map`` returns chunks in submission
    order, so results are deterministic regardless of worker scheduling.
    """

    def __init__(self, objective: Objective, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._objective = objective
        self._jobs = jobs
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._cache: Dict[Tuple, float] = {}

    def __enter__(self) -> "PopulationEvaluator":
        if self._jobs > 1:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(
                processes=self._jobs,
                initializer=_init_worker,
                initargs=(self._objective,),
            )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __call__(self, population: Sequence[ThresholdGenome]) -> List[float]:
        missing: List[ThresholdGenome] = []
        missing_keys = set()
        for genome in population:
            key = _genome_key(genome)
            if key not in self._cache and key not in missing_keys:
                missing_keys.add(key)
                missing.append(genome)
        if missing:
            for genome, fitness in zip(missing, self._evaluate(missing)):
                self._cache[_genome_key(genome)] = fitness
        return [self._cache[_genome_key(genome)] for genome in population]

    def _evaluate(self, genomes: List[ThresholdGenome]) -> List[float]:
        if self._pool is None:
            return _run_objective(self._objective, genomes)
        n_chunks = min(self._jobs, len(genomes))
        bounds = np.linspace(0, len(genomes), n_chunks + 1).astype(int)
        chunks = [
            genomes[bounds[i] : bounds[i + 1]]
            for i in range(n_chunks)
            if bounds[i] < bounds[i + 1]
        ]
        results: List[float] = []
        for chunk_result in self._pool.map(_evaluate_chunk, chunks):
            results.extend(chunk_result)
        return results


def _run_objective(objective: Objective, genomes: List[ThresholdGenome]) -> List[float]:
    if isinstance(objective, VectorizedObjective):
        return [float(f) for f in objective.evaluate_population(genomes)]
    return [float(objective(genome)) for genome in genomes]


@dataclass(frozen=True)
class SearchTrace:
    """Best-fitness-so-far after each iteration of a threshold search."""

    best_fitness: Tuple[float, ...]

    @property
    def final(self) -> float:
        return self.best_fitness[-1] if self.best_fitness else 0.0


def _roulette_pick(fitness: np.ndarray, rng: np.random.Generator) -> int:
    """Fitness-proportional selection (Eq. 6).

    Falls back to uniform choice when every individual has zero fitness
    (e.g. no anomalies were caught yet by anyone).
    """
    total = float(fitness.sum())
    if total <= 0.0:
        return int(rng.integers(0, fitness.size))
    return int(rng.choice(fitness.size, p=fitness / total))


class GeneticThresholdLearner:
    """Adaptive threshold learning policy of DBCatcher.

    Parameters
    ----------
    population_size:
        Constant number of individuals ``M``.
    n_iterations:
        Number of generations ``N``.
    eviction_fraction:
        Fraction of the population evicted each generation.
    mutation_probability:
        Per-child mutation probability ``beta``.
    learning_rate:
        Mutation step ``Delta`` (0.1 in the paper).
    seed:
        Seed for the search's random generator.
    jobs:
        Fitness-evaluation worker processes; ``1`` evaluates in-process.
        The search result is identical for every value.
    checkpoint_path:
        When set, the search snapshots its full state here (atomically)
        every ``checkpoint_every`` generations and after the final one.
    checkpoint_every:
        Generations between snapshots (``1`` = after every generation).
    resume:
        When true and ``checkpoint_path`` exists, continue that run
        instead of starting fresh.
    vectorize:
        Build a :class:`~repro.tuning.vectorized.VectorizedObjective`
        (one batched-engine pass per replay window, population-at-a-time
        thresholding) instead of the per-genome replay objective when
        the learner is called with raw ``(config, values, labels)``.

    The instance is callable with the :data:`repro.core.feedback`
    ``ThresholdLearner`` signature, so it can be handed directly to
    :meth:`repro.core.feedback.OnlineFeedback.maybe_retrain`.
    """

    name = "GA"

    def __init__(
        self,
        population_size: int = 16,
        n_iterations: int = 10,
        eviction_fraction: float = 0.5,
        mutation_probability: float = 0.2,
        learning_rate: float = LEARNING_RATE,
        seed: Optional[int] = None,
        jobs: int = 1,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        vectorize: bool = True,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if not 0.0 < eviction_fraction < 1.0:
            raise ValueError("eviction_fraction must lie in (0, 1)")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must lie in [0, 1]")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.population_size = population_size
        self.n_iterations = n_iterations
        self.eviction_fraction = eviction_fraction
        self.mutation_probability = mutation_probability
        self.learning_rate = learning_rate
        self.jobs = jobs
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.vectorize = vectorize
        self._seed = seed
        self.last_trace: Optional[SearchTrace] = None

    def __call__(
        self,
        config: DBCatcherConfig,
        values: np.ndarray,
        labels: np.ndarray,
    ) -> DBCatcherConfig:
        """Learn thresholds over a replay window; return the tuned config."""
        objective: Objective
        if self.vectorize:
            objective = VectorizedObjective(config, values, labels)
        else:
            objective = DetectionObjective(config, values, labels)
        genome, _ = self.search(objective)
        return genome.apply_to(config)

    def search(self, objective: Objective) -> Tuple[ThresholdGenome, float]:
        """Run Algorithm 2 and return the historically best genome."""
        with PopulationEvaluator(objective, jobs=self.jobs) as evaluate:
            with obs.span("tuning.search"):
                return self._search(objective, evaluate)

    def _search(
        self, objective: Objective, evaluate: PopulationEvaluator
    ) -> Tuple[ThresholdGenome, float]:
        state = self._load_checkpoint()
        if state is not None:
            population = list(state.population)
            rng = state.restore_rng()
            best_genome = state.best_genome
            best_fitness = state.best_fitness
            trace = list(state.trace)
            start_generation = state.generation
        else:
            rng = np.random.default_rng(self._seed)
            config = getattr(objective, "config", None)
            n_kpis = getattr(objective, "n_kpis", None)
            if n_kpis is None:
                n_kpis = config.n_kpis
            population = [
                ThresholdGenome.random(n_kpis, rng)
                for _ in range(self.population_size)
            ]
            # Seed the current thresholds into the initial population so
            # learning can never do worse than the incumbent configuration.
            if config is not None:
                population[0] = ThresholdGenome.from_config(config)
            best_genome = population[0]
            best_fitness = evaluate([best_genome])[0]
            trace = []
            start_generation = 0

        for generation in range(start_generation, self.n_iterations):
            fitness = np.array(evaluate(population))
            top = int(np.argmax(fitness))
            if fitness[top] > best_fitness:
                best_fitness = float(fitness[top])
                best_genome = population[top]
            trace.append(best_fitness)
            obs.counter("tuning.generations").increment()
            obs.gauge("tuning.best_fitness").set(best_fitness)

            # Evict the poor performers.
            n_survivors = max(
                2, int(round(self.population_size * (1.0 - self.eviction_fraction)))
            )
            order = np.argsort(fitness)[::-1]
            survivors = [population[i] for i in order[:n_survivors]]
            survivor_fitness = fitness[order[:n_survivors]]

            # Refill via selection + crossover + mutation.
            children: List[ThresholdGenome] = []
            while len(survivors) + len(children) < self.population_size:
                i = _roulette_pick(survivor_fitness, rng)
                j = _roulette_pick(survivor_fitness, rng)
                first, second = survivors[i].crossover(survivors[j], rng)
                for child in (first, second):
                    if rng.random() < self.mutation_probability:
                        child = child.mutate(rng, self.learning_rate)
                    children.append(child)
            population = survivors + children[: self.population_size - n_survivors]

            completed = generation + 1
            if self.checkpoint_path is not None and (
                completed % self.checkpoint_every == 0
                or completed == self.n_iterations
            ):
                TuningCheckpoint.capture(
                    generation=completed,
                    population=tuple(population),
                    best_genome=best_genome,
                    best_fitness=best_fitness,
                    trace=tuple(trace),
                    rng=rng,
                ).save(self.checkpoint_path)
                obs.counter("tuning.checkpoints_written").increment()

        self.last_trace = SearchTrace(best_fitness=tuple(trace))
        return best_genome, best_fitness

    def _load_checkpoint(self) -> Optional[TuningCheckpoint]:
        if not self.resume or self.checkpoint_path is None:
            return None
        import os

        if not os.path.exists(self.checkpoint_path):
            return None
        state = TuningCheckpoint.load(self.checkpoint_path)
        if state.population_size != self.population_size:
            raise ValueError(
                f"checkpoint population size {state.population_size} does not "
                f"match learner population size {self.population_size}"
            )
        if state.generation > self.n_iterations:
            raise ValueError(
                f"checkpoint already ran {state.generation} generations but "
                f"this search stops at {self.n_iterations}"
            )
        obs.counter("tuning.resumes").increment()
        return state
