"""Genetic threshold learner (Algorithm 2).

The population evolves for ``n_iterations`` generations.  Each generation:

1. every individual's detection performance is computed (fitness);
2. the historically best genome is saved (elitism);
3. the worst-performing fraction is evicted;
4. survivors are selected with probability proportional to fitness
   (Eq. 6), crossed over, and mutated with probability ``beta`` to refill
   the population to its constant size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import DBCatcherConfig, LEARNING_RATE
from repro.tuning.genome import ThresholdGenome
from repro.tuning.objective import DetectionObjective

__all__ = ["GeneticThresholdLearner", "SearchTrace"]


@dataclass(frozen=True)
class SearchTrace:
    """Best-fitness-so-far after each iteration of a threshold search."""

    best_fitness: Tuple[float, ...]

    @property
    def final(self) -> float:
        return self.best_fitness[-1] if self.best_fitness else 0.0


def _roulette_pick(
    fitness: np.ndarray, rng: np.random.Generator
) -> int:
    """Fitness-proportional selection (Eq. 6).

    Falls back to uniform choice when every individual has zero fitness
    (e.g. no anomalies were caught yet by anyone).
    """
    total = float(fitness.sum())
    if total <= 0.0:
        return int(rng.integers(0, fitness.size))
    return int(rng.choice(fitness.size, p=fitness / total))


class GeneticThresholdLearner:
    """Adaptive threshold learning policy of DBCatcher.

    Parameters
    ----------
    population_size:
        Constant number of individuals ``M``.
    n_iterations:
        Number of generations ``N``.
    eviction_fraction:
        Fraction of the population evicted each generation.
    mutation_probability:
        Per-child mutation probability ``beta``.
    learning_rate:
        Mutation step ``Delta`` (0.1 in the paper).
    seed:
        Seed for the search's random generator.

    The instance is callable with the :data:`repro.core.feedback`
    ``ThresholdLearner`` signature, so it can be handed directly to
    :meth:`repro.core.feedback.OnlineFeedback.maybe_retrain`.
    """

    name = "GA"

    def __init__(
        self,
        population_size: int = 16,
        n_iterations: int = 10,
        eviction_fraction: float = 0.5,
        mutation_probability: float = 0.2,
        learning_rate: float = LEARNING_RATE,
        seed: Optional[int] = None,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if not 0.0 < eviction_fraction < 1.0:
            raise ValueError("eviction_fraction must lie in (0, 1)")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must lie in [0, 1]")
        self.population_size = population_size
        self.n_iterations = n_iterations
        self.eviction_fraction = eviction_fraction
        self.mutation_probability = mutation_probability
        self.learning_rate = learning_rate
        self._seed = seed
        self.last_trace: Optional[SearchTrace] = None

    def __call__(
        self,
        config: DBCatcherConfig,
        values: np.ndarray,
        labels: np.ndarray,
    ) -> DBCatcherConfig:
        """Learn thresholds over a replay window; return the tuned config."""
        genome, _ = self.search(DetectionObjective(config, values, labels))
        return genome.apply_to(config)

    def search(
        self, objective: DetectionObjective
    ) -> Tuple[ThresholdGenome, float]:
        """Run Algorithm 2 and return the historically best genome."""
        rng = np.random.default_rng(self._seed)
        n_kpis = objective.n_kpis
        population: List[ThresholdGenome] = [
            ThresholdGenome.random(n_kpis, rng) for _ in range(self.population_size)
        ]
        # Seed the current thresholds into the initial population so
        # learning can never do worse than the incumbent configuration.
        population[0] = ThresholdGenome.from_config(objective.config)

        best_genome = population[0]
        best_fitness = objective(best_genome)
        trace: List[float] = []

        for _ in range(self.n_iterations):
            fitness = np.array([objective(genome) for genome in population])
            top = int(np.argmax(fitness))
            if fitness[top] > best_fitness:
                best_fitness = float(fitness[top])
                best_genome = population[top]
            trace.append(best_fitness)

            # Evict the poor performers.
            n_survivors = max(
                2, int(round(self.population_size * (1.0 - self.eviction_fraction)))
            )
            order = np.argsort(fitness)[::-1]
            survivors = [population[i] for i in order[:n_survivors]]
            survivor_fitness = fitness[order[:n_survivors]]

            # Refill via selection + crossover + mutation.
            children: List[ThresholdGenome] = []
            while len(survivors) + len(children) < self.population_size:
                i = _roulette_pick(survivor_fitness, rng)
                j = _roulette_pick(survivor_fitness, rng)
                first, second = survivors[i].crossover(survivors[j], rng)
                for child in (first, second):
                    if rng.random() < self.mutation_probability:
                        child = child.mutate(rng, self.learning_rate)
                    children.append(child)
            population = survivors + children[: self.population_size - n_survivors]

        self.last_trace = SearchTrace(best_fitness=tuple(trace))
        return best_genome, best_fitness
