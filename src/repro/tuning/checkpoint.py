"""Checkpoint/resume for threshold-tuning runs.

A long GA search over fleet-sized judgement records is exactly the kind
of job that gets preempted: the coordinator may cancel it when a unit
drains, a nightly CI job may hit its time budget, an operator may kill
the CLI.  :class:`TuningCheckpoint` serializes everything the search
needs to continue bit-identically — the population, the historically
best genome and fitness, the best-so-far trace, the generation counter
and the *exact* generator state of numpy's PCG64 bit generator — to a
single human-readable JSON document.

Resuming restores the RNG mid-stream, so a run split across any number
of checkpoint/resume cycles draws the same random sequence as an
uninterrupted run and therefore finds the same best genome (pinned by
the determinism tests).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.tuning.genome import ThresholdGenome

__all__ = ["TuningCheckpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _genome_to_dict(genome: ThresholdGenome) -> Dict[str, Any]:
    return {
        "alphas": list(genome.alphas),
        "theta": genome.theta,
        "tolerance": genome.tolerance,
    }


def _genome_from_dict(payload: Dict[str, Any]) -> ThresholdGenome:
    return ThresholdGenome(
        alphas=tuple(float(a) for a in payload["alphas"]),
        theta=float(payload["theta"]),
        tolerance=int(payload["tolerance"]),
    )


@dataclass(frozen=True)
class TuningCheckpoint:
    """Resumable snapshot of a genetic threshold search.

    ``generation`` counts *completed* generations: a checkpoint written
    after generation ``g`` resumes the search at generation ``g + 1``.
    ``rng_state`` is the PCG64 ``bit_generator.state`` dict captured at
    the moment of the snapshot; both of its 128-bit integers round-trip
    losslessly through JSON because Python integers are unbounded.
    """

    generation: int
    population: Tuple[ThresholdGenome, ...]
    best_genome: ThresholdGenome
    best_fitness: float
    trace: Tuple[float, ...]
    rng_state: Dict[str, Any]

    @property
    def population_size(self) -> int:
        return len(self.population)

    def restore_rng(self) -> np.random.Generator:
        """Fresh generator continuing the checkpointed random stream."""
        rng = np.random.default_rng()
        rng.bit_generator.state = self.rng_state
        return rng

    @classmethod
    def capture(
        cls,
        generation: int,
        population: Tuple[ThresholdGenome, ...],
        best_genome: ThresholdGenome,
        best_fitness: float,
        trace: Tuple[float, ...],
        rng: np.random.Generator,
    ) -> "TuningCheckpoint":
        return cls(
            generation=generation,
            population=tuple(population),
            best_genome=best_genome,
            best_fitness=float(best_fitness),
            trace=tuple(float(f) for f in trace),
            rng_state=dict(rng.bit_generator.state),
        )

    def to_json(self) -> str:
        payload = {
            "version": CHECKPOINT_VERSION,
            "generation": self.generation,
            "population": [_genome_to_dict(g) for g in self.population],
            "best_genome": _genome_to_dict(self.best_genome),
            "best_fitness": self.best_fitness,
            "trace": list(self.trace),
            "rng_state": self.rng_state,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TuningCheckpoint":
        payload = json.loads(text)
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return cls(
            generation=int(payload["generation"]),
            population=tuple(
                _genome_from_dict(g) for g in payload["population"]
            ),
            best_genome=_genome_from_dict(payload["best_genome"]),
            best_fitness=float(payload["best_fitness"]),
            trace=tuple(float(f) for f in payload["trace"]),
            rng_state=payload["rng_state"],
        )

    def save(self, path: str) -> None:
        """Atomically write the checkpoint (write-temp-then-rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        fd, temp_path = tempfile.mkstemp(
            prefix=".tuning-checkpoint-", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    @classmethod
    def load(cls, path: str) -> "TuningCheckpoint":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
