"""Temporal fluctuations: benign, unlabeled single-point deviations.

Section II-D distinguishes *temporal fluctuations* from anomalies: brief
deviations at individual points (maintenance tasks, imperfect balancing)
after which the series returns to its normal trend.  They are the false-
positive pressure the flexible time window exists to absorb, so their
ground-truth labels are all ``False`` by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.anomalies.base import SimulationInjector
from repro.cluster.unit import Unit

__all__ = ["TemporalFluctuationInjector"]


class TemporalFluctuationInjector(SimulationInjector):
    """Random short CPU pulses (maintenance tasks) on random databases.

    Parameters
    ----------
    pulse_probability:
        Per-tick chance that a new maintenance pulse starts somewhere.
    pulse_cpu:
        Additive CPU percentage while a pulse is active.
    pulse_duration:
        Pulse length in ticks (kept short: fluctuations are "minor
        deviations at individual points").
    seed:
        Seeds the injector's own generator so fluctuation placement is
        reproducible independently of the unit's noise.
    """

    def __init__(
        self,
        pulse_probability: float = 0.02,
        pulse_cpu: float = 15.0,
        pulse_duration: int = 2,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= pulse_probability <= 1.0:
            raise ValueError("pulse_probability must lie in [0, 1]")
        if pulse_cpu <= 0:
            raise ValueError("pulse_cpu must be positive")
        if pulse_duration < 1:
            raise ValueError("pulse_duration must be >= 1")
        self.pulse_probability = pulse_probability
        self.pulse_cpu = pulse_cpu
        self.pulse_duration = pulse_duration
        self._rng = np.random.default_rng(seed)
        #: database index -> tick the active pulse ends at.
        self._active: dict = {}

    def before_tick(self, unit: Unit, tick: int) -> None:
        # Expire pulses that have run their course.
        for db, end in list(self._active.items()):
            if tick >= end:
                unit.databases[db].condition.cpu_background -= self.pulse_cpu
                del self._active[db]
        # Possibly start a new pulse on a database without one.
        if self._rng.random() < self.pulse_probability:
            db = int(self._rng.integers(0, unit.n_databases))
            if db not in self._active:
                unit.databases[db].condition.cpu_background += self.pulse_cpu
                self._active[db] = tick + self.pulse_duration

    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        """All ``False``: fluctuations are not anomalies."""
        return np.zeros((n_databases, n_ticks), dtype=bool)
