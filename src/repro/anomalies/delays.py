"""Point-in-time delay utilities.

The bypass monitor already assigns each database a stable collection
delay; this module provides the post-hoc variant used by robustness tests
and the delay-search ablation: shift one database's reported series by a
chosen number of ticks without touching the rest.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shift_database_series"]


def shift_database_series(
    values: np.ndarray, database: int, delay: int
) -> np.ndarray:
    """Copy of ``values`` with one database's series delayed.

    Parameters
    ----------
    values:
        Series of shape ``(n_databases, n_kpis, n_ticks)``.
    database:
        Index of the database whose reports arrive late.
    delay:
        Ticks of delay; the first ``delay`` reported points repeat the
        earliest sample (a warming pipeline), matching
        :class:`~repro.cluster.monitor.BypassMonitor` semantics.  A
        negative delay advances the series instead.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(
            f"values must be (n_databases, n_kpis, n_ticks), got {data.shape}"
        )
    if not 0 <= database < data.shape[0]:
        raise IndexError(f"database {database} out of range")
    n_ticks = data.shape[2]
    if abs(delay) >= n_ticks:
        raise ValueError("delay magnitude must be smaller than the series length")
    shifted = data.copy()
    if delay > 0:
        shifted[database, :, delay:] = data[database, :, : n_ticks - delay]
        shifted[database, :, :delay] = data[database, :, :1]
    elif delay < 0:
        lag = -delay
        shifted[database, :, : n_ticks - lag] = data[database, :, lag:]
        shifted[database, :, n_ticks - lag :] = data[database, :, -1:]
    return shifted
