"""Storage fragmentation anomaly (the Figure 12 case).

Heavy delete/insert churn leaves dead space behind.  Two observable
consequences, both injected here:

* the victim's **Real Capacity** climbs away from the peers' capacity
  trend (the leak arrives in bursts — churn is episodic — so the victim's
  capacity develops its own staircase trend rather than a clean ramp);
* rows spread across more pages, so **BufferPool Read Requests** and
  **Innodb Data Writes** inflate, ramping with the accumulated dead space
  — the paper notes level-1 anomalies "mainly occur in critical KPIs such
  as reads, writes, and capacity".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.anomalies.base import InjectionInterval, SimulationInjector
from repro.cluster.unit import Unit

__all__ = ["FragmentationInjector"]


class FragmentationInjector(SimulationInjector):
    """Leaks dead bytes and amplifies page IO on the victim.

    Parameters
    ----------
    victim:
        Database whose storage fragments.
    interval:
        Ticks of active churn.
    leak_bytes_per_tick:
        Average dead space accumulated per tick (delivered in bursts).
    peak_page_amplification:
        Page-IO multiplier once fragmentation has fully developed; ramps
        from 1 at the interval start.
    seed:
        Seeds the burst process.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        leak_bytes_per_tick: float = 5e7,
        peak_page_amplification: float = 2.2,
        seed: Optional[int] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if leak_bytes_per_tick <= 0:
            raise ValueError("leak_bytes_per_tick must be positive")
        if peak_page_amplification < 1.0:
            raise ValueError("peak_page_amplification must be >= 1")
        self.victim = victim
        self.interval = interval
        self.leak_bytes_per_tick = leak_bytes_per_tick
        self.peak_page_amplification = peak_page_amplification
        self._rng = np.random.default_rng(seed)
        self._applied_leak = 0.0
        self._applied_page = 1.0
        self._flap = 1.0

    def before_tick(self, unit: Unit, tick: int) -> None:
        condition = unit.databases[self.victim].condition
        condition.capacity_leak_bytes -= self._applied_leak
        condition.page_amplification /= self._applied_page
        self._applied_leak = 0.0
        self._applied_page = 1.0
        if self.interval.contains(tick):
            # Episodic churn: a minority of ticks leak many times the
            # average (large delete batches), giving the victim's capacity
            # a staircase shape clearly unlike the peers' smooth growth.
            stored = max(condition.stored_bytes, 1.0)
            if self._rng.random() < 0.15:
                burst = self.leak_bytes_per_tick / 0.15 * self._rng.exponential(1.0)
                # Cap a single step at 8% of stored bytes to stay physical.
                self._applied_leak = min(burst, 0.08 * stored)
            # Page amplification rides the churn bursts: queries touching
            # freshly fragmented regions pay, others do not.
            self._flap = float(
                np.clip(0.7 * self._flap + 0.3 * self._rng.uniform(0.1, 1.5), 0.2, 1.0)
            )
            progress = (tick - self.interval.start) / max(self.interval.duration, 1)
            develop = min(1.0, 0.3 + progress)
            self._applied_page = 1.0 + (
                (self.peak_page_amplification - 1.0) * develop * self._flap
            )
            condition.capacity_leak_bytes += self._applied_leak
            condition.page_amplification *= self._applied_page

    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        mask = np.zeros((n_databases, n_ticks), dtype=bool)
        mask[self.victim, self.interval.start : min(self.interval.end, n_ticks)] = True
        return mask
