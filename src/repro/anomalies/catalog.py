"""Anomaly scheduling: paper-ratio mixes of incident types.

Builds the injection plan for a unit's dataset: a sequence of
non-overlapping anomaly events (the paper only considers a single abnormal
database at a time, Section II-C) whose total duration hits a target
abnormal-point ratio (3.11 % for Tencent, ~4.2 % for Sysbench/TPCC,
Table III), plus optional unlabeled temporal fluctuations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.base import (
    InjectionInterval,
    SeriesInjector,
    SimulationInjector,
)
from repro.anomalies.concept_drift import ConceptDriftInjector
from repro.anomalies.fluctuations import TemporalFluctuationInjector
from repro.anomalies.fragmentation import FragmentationInjector
from repro.anomalies.lb_defect import LoadBalanceDefectInjector
from repro.anomalies.level_shift import LevelShiftInjector
from repro.anomalies.slow_query import SlowQueryInjector
from repro.anomalies.spike import SpikeInjector
from repro.anomalies.stall import StallInjector

__all__ = ["AnomalyPlan", "ANOMALY_TYPES", "schedule_anomalies"]

#: Injectable incident types and their duration ranges in ticks.
ANOMALY_TYPES: Tuple[Tuple[str, Tuple[int, int]], ...] = (
    ("spike", (6, 16)),
    ("level_shift", (20, 50)),
    ("concept_drift", (30, 60)),
    ("lb_defect", (20, 50)),
    ("slow_query", (20, 50)),
    ("fragmentation", (25, 60)),
    ("stall", (10, 30)),
)

#: Minimum healthy gap between scheduled events, in ticks.
_EVENT_GAP = 30


@dataclass
class AnomalyPlan:
    """The full injection plan for one unit's dataset.

    ``simulation_injectors`` act during simulation; ``series_injectors``
    act on the collected array afterwards.  :meth:`labels` merges every
    labeled footprint (fluctuations contribute nothing by design).
    """

    n_databases: int
    n_ticks: int
    simulation_injectors: List[SimulationInjector] = field(default_factory=list)
    series_injectors: List[SeriesInjector] = field(default_factory=list)
    events: List[Tuple[str, int, InjectionInterval]] = field(default_factory=list)

    def labels(self) -> np.ndarray:
        """Combined ground truth of shape ``(n_databases, n_ticks)``."""
        mask = np.zeros((self.n_databases, self.n_ticks), dtype=bool)
        for injector in self.simulation_injectors:
            mask |= injector.labels(self.n_databases, self.n_ticks)
        for kind, victim, interval in self.events:
            if kind in _SERIES_KINDS:
                mask[victim, interval.start : min(interval.end, self.n_ticks)] = True
        return mask

    @property
    def abnormal_ratio(self) -> float:
        """Fraction of (database, tick) points labeled abnormal."""
        mask = self.labels()
        return float(mask.sum()) / mask.size


_SERIES_KINDS = frozenset({"spike", "level_shift", "concept_drift"})


def _make_injector(
    kind: str,
    victim: int,
    interval: InjectionInterval,
    n_kpis: int,
    rng: np.random.Generator,
):
    """Instantiate one injector; series kinds pick a random KPI subset."""
    if kind in _SERIES_KINDS:
        n_affected = int(rng.integers(3, max(4, n_kpis // 2) + 1))
        kpis = tuple(
            sorted(rng.choice(n_kpis, size=min(n_affected, n_kpis), replace=False))
        )
        if kind == "spike":
            return SpikeInjector(
                victim, interval, magnitude=float(rng.uniform(1.0, 3.0)),
                kpi_indices=kpis,
            )
        if kind == "level_shift":
            return LevelShiftInjector(
                victim, interval, factor=float(rng.uniform(1.6, 3.0)),
                flatten=float(rng.uniform(0.85, 1.0)), kpi_indices=kpis,
            )
        return ConceptDriftInjector(
            victim, interval, intensity=float(rng.uniform(0.7, 1.0)),
            kpi_indices=kpis,
        )
    child_seed = int(rng.integers(0, 2**31 - 1))
    if kind == "lb_defect":
        return LoadBalanceDefectInjector(
            victim, interval, skew=float(rng.uniform(0.3, 0.55))
        )
    if kind == "slow_query":
        return SlowQueryInjector(
            victim, interval,
            cpu_factor=float(rng.uniform(1.8, 3.0)),
            rows_factor=float(rng.uniform(2.0, 4.0)),
            seed=child_seed,
        )
    if kind == "fragmentation":
        return FragmentationInjector(
            victim, interval,
            leak_bytes_per_tick=float(rng.uniform(3e7, 1e8)),
            seed=child_seed,
        )
    if kind == "stall":
        return StallInjector(
            victim, interval,
            residual_throughput=float(rng.uniform(0.05, 0.3)),
            seed=child_seed,
        )
    raise ValueError(f"unknown anomaly kind {kind!r}")


def schedule_anomalies(
    n_databases: int,
    n_ticks: int,
    rng: Optional[np.random.Generator] = None,
    abnormal_ratio: float = 0.04,
    kinds: Optional[Sequence[str]] = None,
    n_kpis: int = 14,
    include_fluctuations: bool = True,
    warmup_ticks: int = 40,
) -> AnomalyPlan:
    """Schedule a paper-ratio anomaly mix for one unit.

    Parameters
    ----------
    n_databases, n_ticks:
        Unit geometry.
    rng:
        Random generator; a fresh one is created when omitted.
    abnormal_ratio:
        Target fraction of (database, tick) points labeled abnormal; the
        scheduler adds non-overlapping events until the budget is met.
    kinds:
        Restrict event types (names from :data:`ANOMALY_TYPES`).
    n_kpis:
        KPI count, for choosing affected-KPI subsets of series events.
    include_fluctuations:
        Add the unlabeled temporal-fluctuation injector.
    warmup_ticks:
        Anomaly-free head of the series (detectors need healthy context).
    """
    if not 0.0 <= abnormal_ratio < 0.5:
        raise ValueError("abnormal_ratio must lie in [0, 0.5)")
    generator = rng if rng is not None else np.random.default_rng()
    allowed = dict(ANOMALY_TYPES)
    if kinds is not None:
        unknown = set(kinds) - set(allowed)
        if unknown:
            raise ValueError(f"unknown anomaly kinds: {sorted(unknown)}")
        allowed = {k: v for k, v in allowed.items() if k in kinds}
    plan = AnomalyPlan(n_databases=n_databases, n_ticks=n_ticks)
    if include_fluctuations:
        plan.simulation_injectors.append(
            TemporalFluctuationInjector(seed=int(generator.integers(0, 2**31)))
        )
    budget = abnormal_ratio * n_databases * n_ticks
    consumed = 0
    kind_names = sorted(allowed)
    occupied: List[Tuple[int, int]] = []
    failures = 0
    # Events are placed uniformly over the whole horizon (so a later
    # train/test time split leaves anomalies on both sides), keeping a
    # healthy gap between any two events: the paper only considers one
    # abnormal database at a time.
    while consumed < budget and failures < 200:
        kind = kind_names[int(generator.integers(0, len(kind_names)))]
        lo, hi = allowed[kind]
        duration = int(generator.integers(lo, hi + 1))
        latest_start = n_ticks - duration - _EVENT_GAP
        if latest_start <= warmup_ticks:
            break
        start = int(generator.integers(warmup_ticks, latest_start + 1))
        end = start + duration
        if any(
            start < busy_end + _EVENT_GAP and end + _EVENT_GAP > busy_start
            for busy_start, busy_end in occupied
        ):
            failures += 1
            continue
        victim = int(generator.integers(0, n_databases))
        interval = InjectionInterval(start, end)
        injector = _make_injector(kind, victim, interval, n_kpis, generator)
        if isinstance(injector, SimulationInjector):
            plan.simulation_injectors.append(injector)
        else:
            plan.series_injectors.append(injector)
        plan.events.append((kind, victim, interval))
        occupied.append((start, end))
        consumed += duration
    return plan
