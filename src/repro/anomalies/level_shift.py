"""Level-shift anomaly: a sudden sustained offset on one database."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.anomalies.base import InjectionInterval, SeriesInjector, check_series_shapes

__all__ = ["LevelShiftInjector"]


class LevelShiftInjector(SeriesInjector):
    """Shifts the victim's KPIs to a new level for the whole interval.

    The shift flattens the victim's trend toward the segment mean, offsets
    it by a fraction of the KPI's global range, and overlays independent
    measurement wobble.  The flattening + wobble is what breaks UKPIC: any
    affine transform ``a*x + b`` of the shared trend is *exactly* erased
    by min-max normalization, so a detectable level shift must replace the
    trend (a stuck or saturated counter), not rescale it.

    Parameters
    ----------
    victim:
        Database index shifted.
    interval:
        Ticks the shift persists.
    factor:
        Multiplicative level change (e.g. ``2.0`` doubles the level).
    flatten:
        How much of the original trend is removed inside the interval,
        in ``[0, 1]``; ``0.7`` keeps only 30 % of the peer-shared trend.
    kpi_indices:
        Which KPI rows deviate; ``None`` means all of them.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        factor: float = 2.0,
        flatten: float = 0.95,
        kpi_indices: Optional[Sequence[int]] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if factor <= 0:
            raise ValueError("factor must be positive")
        if not 0.0 <= flatten <= 1.0:
            raise ValueError("flatten must lie in [0, 1]")
        self.victim = victim
        self.interval = interval
        self.factor = factor
        self.flatten = flatten
        self.kpi_indices = None if kpi_indices is None else tuple(kpi_indices)

    def inject(
        self, values: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> None:
        check_series_shapes(values, labels)
        start, end = self.interval.start, min(self.interval.end, values.shape[2])
        if start >= values.shape[2] or self.victim >= values.shape[0]:
            return
        rows = (
            range(values.shape[1])
            if self.kpi_indices is None
            else self.kpi_indices
        )
        for k in rows:
            series = values[self.victim, k, :]
            segment = series[start:end]
            mean = segment.mean()
            flattened = (1.0 - self.flatten) * segment + self.flatten * mean
            # The shift itself is sized against the KPI's global range so
            # it remains a *level* change, not a wiggle, under any shared
            # workload transition inside the window.
            scale = float(series.max() - series.min()) or max(
                float(np.abs(series).mean()), 1e-9
            )
            shift = (self.factor - 1.0) * 0.5 * scale
            # Independent wobble so the flattened series carries its own
            # (uncorrelated) micro-trend rather than a scaled shared one.
            wobble = rng.normal(0.0, 0.04 * scale, end - start)
            values[self.victim, k, start:end] = np.clip(
                flattened + shift + wobble, 0.0, None
            )
        labels[self.victim, start:end] = True
