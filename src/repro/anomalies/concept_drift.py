"""Concept-drift anomaly: a gradual divergence of one database's trends."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.anomalies.base import InjectionInterval, SeriesInjector, check_series_shapes

__all__ = ["ConceptDriftInjector"]


class ConceptDriftInjector(SeriesInjector):
    """Gradually replaces the victim's trend with an independent one.

    Over the interval the victim's KPIs blend from their true values
    toward an independent random-walk trend; the blend weight ramps
    linearly, reproducing the slow "concept drift" deviation type.

    Parameters
    ----------
    victim:
        Database index drifting.
    interval:
        Ticks over which the drift develops and persists.
    intensity:
        Final blend weight of the foreign trend, in ``(0, 1]``.
    walk_sigma:
        Step size of the independent random walk (relative units).
    kpi_indices:
        Which KPI rows drift; ``None`` means all of them.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        intensity: float = 0.9,
        walk_sigma: float = 0.08,
        kpi_indices: Optional[Sequence[int]] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must lie in (0, 1]")
        if walk_sigma <= 0:
            raise ValueError("walk_sigma must be positive")
        self.victim = victim
        self.interval = interval
        self.intensity = intensity
        self.walk_sigma = walk_sigma
        self.kpi_indices = None if kpi_indices is None else tuple(kpi_indices)

    def inject(
        self, values: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> None:
        check_series_shapes(values, labels)
        start, end = self.interval.start, min(self.interval.end, values.shape[2])
        if start >= values.shape[2] or self.victim >= values.shape[0]:
            return
        span = end - start
        ramp = np.linspace(0.0, self.intensity, span)
        rows = (
            range(values.shape[1])
            if self.kpi_indices is None
            else self.kpi_indices
        )
        for k in rows:
            series = values[self.victim, k, :]
            segment = series[start:end]
            # The foreign trend roams the KPI's *global* dynamic range: a
            # drifted database follows a genuinely different load pattern,
            # not a perturbation of the local window.
            low = float(series.min())
            high = float(series.max())
            spread = (high - low) or max(abs(high), 1e-9)
            walk = np.cumsum(rng.normal(0.0, self.walk_sigma, span))
            position = 0.5 + walk
            position = (position - position.min()) / max(
                position.max() - position.min(), 1e-9
            )
            foreign = low + spread * position
            values[self.victim, k, start:end] = (
                (1.0 - ramp) * segment + ramp * np.clip(foreign, 0.0, None)
            )
        labels[self.victim, start:end] = True
