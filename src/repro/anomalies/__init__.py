"""Anomaly injection toolkit.

Two injector families, by where they act:

* **Simulation injectors** (:class:`~repro.anomalies.base.SimulationInjector`)
  perturb the *causes* inside the running cluster — routing weights,
  resource-model conditions — so every KPI responds consistently, exactly
  like the paper's real incidents: the defective load-balance strategy of
  Figure 4, the slow-query/hot-database case of Figure 13, the capacity
  fragmentation of Figure 12, throughput stalls, and the unlabeled
  *temporal fluctuations* (maintenance tasks) that stress the flexible
  window.
* **Series injectors** (:class:`~repro.anomalies.base.SeriesInjector`)
  perturb the collected series directly with the classic abnormal trend
  shapes — spike, level shift, concept drift — used to inject the
  Tencent-incident-derived deviations into the Sysbench and TPCC datasets
  "proportionally", as Section IV-A1 describes.

:mod:`repro.anomalies.catalog` schedules a paper-ratio mix of all of the
above for the dataset builders.
"""

from repro.anomalies.base import SeriesInjector, SimulationInjector
from repro.anomalies.concept_drift import ConceptDriftInjector
from repro.anomalies.delays import shift_database_series
from repro.anomalies.fluctuations import TemporalFluctuationInjector
from repro.anomalies.fragmentation import FragmentationInjector
from repro.anomalies.lb_defect import LoadBalanceDefectInjector
from repro.anomalies.level_shift import LevelShiftInjector
from repro.anomalies.slow_query import SlowQueryInjector
from repro.anomalies.spike import SpikeInjector
from repro.anomalies.stall import StallInjector
from repro.anomalies.catalog import AnomalyPlan, schedule_anomalies

__all__ = [
    "SimulationInjector",
    "SeriesInjector",
    "SpikeInjector",
    "LevelShiftInjector",
    "ConceptDriftInjector",
    "LoadBalanceDefectInjector",
    "SlowQueryInjector",
    "FragmentationInjector",
    "StallInjector",
    "TemporalFluctuationInjector",
    "shift_database_series",
    "AnomalyPlan",
    "schedule_anomalies",
]
