"""Throughput stall anomaly: the victim stops keeping up.

Models IO stalls, lock pile-ups or replication hangs: every throughput
KPI of the victim collapses toward zero while its peers carry on, one of
the most serious real incident shapes (requests are being dropped or
queued).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.anomalies.base import InjectionInterval, SimulationInjector
from repro.cluster.unit import Unit

__all__ = ["StallInjector"]


class StallInjector(SimulationInjector):
    """Throttles the victim's throughput over the interval.

    Parameters
    ----------
    victim:
        Database that stalls.
    interval:
        Ticks the stall persists.
    residual_throughput:
        Typical fraction of normal throughput still served, in ``[0, 1)``.
        The actual per-tick residual flaps around this value (stalls come
        and go as locks release and IO queues drain), which keeps the
        victim's trend decoupled from its peers for the whole interval.
    seed:
        Seeds the flapping process.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        residual_throughput: float = 0.15,
        seed: Optional[int] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if not 0.0 <= residual_throughput < 1.0:
            raise ValueError("residual_throughput must lie in [0, 1)")
        self.victim = victim
        self.interval = interval
        self.residual_throughput = residual_throughput
        self._rng = np.random.default_rng(seed)
        self._applied = 1.0

    def before_tick(self, unit: Unit, tick: int) -> None:
        condition = unit.databases[self.victim].condition
        condition.throughput_multiplier /= self._applied
        self._applied = 1.0
        if self.interval.contains(tick):
            flap = self._rng.uniform(0.5, 2.0)
            self._applied = float(np.clip(self.residual_throughput * flap, 0.02, 0.9))
            condition.throughput_multiplier *= self._applied

    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        mask = np.zeros((n_databases, n_ticks), dtype=bool)
        mask[self.victim, self.interval.start : min(self.interval.end, n_ticks)] = True
        return mask
