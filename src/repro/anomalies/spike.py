"""Spike anomaly: a short, sharp deviation on one database's KPIs."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.anomalies.base import InjectionInterval, SeriesInjector, check_series_shapes

__all__ = ["SpikeInjector"]


class SpikeInjector(SeriesInjector):
    """Multiplies the victim's KPIs by a triangular spike envelope.

    Parameters
    ----------
    victim:
        Database index receiving the spike.
    interval:
        Ticks the spike spans; the envelope peaks at the midpoint.
    magnitude:
        Peak relative increase (``1.5`` means 2.5x at the apex).
    kpi_indices:
        Which KPI rows deviate; ``None`` means all of them.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        magnitude: float = 1.5,
        kpi_indices: Optional[Sequence[int]] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.victim = victim
        self.interval = interval
        self.magnitude = magnitude
        self.kpi_indices = None if kpi_indices is None else tuple(kpi_indices)

    def inject(
        self, values: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> None:
        check_series_shapes(values, labels)
        start, end = self.interval.start, min(self.interval.end, values.shape[2])
        if start >= values.shape[2] or self.victim >= values.shape[0]:
            return
        span = end - start
        apex = span / 2.0
        t = np.arange(span, dtype=np.float64)
        envelope = np.clip(1.0 - np.abs(t - apex) / max(apex, 1.0), 0.0, None)
        rows = (
            range(values.shape[1])
            if self.kpi_indices is None
            else self.kpi_indices
        )
        for k in rows:
            series = values[self.victim, k, :]
            # Deviations transplanted from real incidents are sized against
            # the KPI's global dynamic range, so they stay visible even in
            # windows dominated by large workload transitions.
            scale = float(series.max() - series.min()) or max(
                float(np.abs(series).mean()), 1e-9
            )
            values[self.victim, k, start:end] = (
                series[start:end] + self.magnitude * scale * envelope
            )
        labels[self.victim, start:end] = True
