"""Defective load-balance strategy (the Figure 4 incident).

While active, the unit's balancer is wrapped in a
:class:`~repro.cluster.loadbalancer.DefectiveBalancer` that centrally maps
an outsized read share onto the victim; every load-driven KPI of the victim
rises while its peers' fall, breaking UKPIC across many indicators at once.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import InjectionInterval, SimulationInjector
from repro.cluster.loadbalancer import DefectiveBalancer
from repro.cluster.unit import Unit

__all__ = ["LoadBalanceDefectInjector"]


class LoadBalanceDefectInjector(SimulationInjector):
    """Swaps in a skewed balancer over the injection interval.

    Parameters
    ----------
    victim:
        Database that the defective strategy floods.
    interval:
        Ticks the defective strategy stays deployed.
    skew:
        Extra read share (0..1) routed to the victim.
    """

    def __init__(self, victim: int, interval: InjectionInterval, skew: float = 0.4):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        self.victim = victim
        self.interval = interval
        self.skew = skew
        self._saved = None

    def before_tick(self, unit: Unit, tick: int) -> None:
        if self.interval.contains(tick):
            if self._saved is None:
                self._saved = unit.balancer
                unit.balancer = DefectiveBalancer(
                    inner=self._saved,
                    victim=self.victim,
                    skew=self.skew,
                    start_tick=self.interval.start,
                    end_tick=self.interval.end,
                )
        elif self._saved is not None:
            unit.balancer = self._saved
            self._saved = None

    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        mask = np.zeros((n_databases, n_ticks), dtype=bool)
        mask[self.victim, self.interval.start : min(self.interval.end, n_ticks)] = True
        return mask
