"""Slow-query / hot-database anomaly (the Figure 13 case).

Resource-consuming tasks land on one database: its request count stays
in line with its peers, but each request examines far more rows, so CPU
utilization and Innodb Rows Read diverge — exactly the level-2 anomaly the
paper's second case study describes.

The intensity is *time-varying*: heavy queries arrive in their own bursts
(an AR(1) process), so the victim's KPI trend genuinely decouples from the
unit's shared load trend.  A constant multiplier would only rescale the
trend, which min-max normalization — and therefore trend correlation —
cannot see; real incident series wander, and so does this injector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.anomalies.base import InjectionInterval, SimulationInjector
from repro.cluster.unit import Unit

__all__ = ["SlowQueryInjector"]


class SlowQueryInjector(SimulationInjector):
    """Inflates per-request cost on the victim with bursty intensity.

    Parameters
    ----------
    victim:
        Database executing the resource-consuming tasks.
    interval:
        Ticks the slow queries keep arriving.
    cpu_factor:
        Peak multiplier on the victim's CPU utilization (the paper's case
        shows roughly 2x).
    rows_factor:
        Peak multiplier on rows examined per select.
    seed:
        Seeds the injector's burst process.
    """

    def __init__(
        self,
        victim: int,
        interval: InjectionInterval,
        cpu_factor: float = 2.0,
        rows_factor: float = 2.5,
        seed: Optional[int] = None,
    ):
        if victim < 0:
            raise ValueError("victim must be >= 0")
        if cpu_factor <= 1.0 and rows_factor <= 1.0:
            raise ValueError("at least one factor must exceed 1 to be an anomaly")
        self.victim = victim
        self.interval = interval
        self.cpu_factor = cpu_factor
        self.rows_factor = rows_factor
        self._rng = np.random.default_rng(seed)
        self._intensity = 1.0
        self._applied_cpu = 1.0
        self._applied_rows = 1.0

    def _next_intensity(self) -> float:
        """AR(1) burst process in roughly [0.3, 1.0] of peak."""
        self._intensity = 0.5 * self._intensity + 0.5 * self._rng.uniform(0.1, 1.4)
        return float(np.clip(self._intensity, 0.3, 1.0))

    def before_tick(self, unit: Unit, tick: int) -> None:
        condition = unit.databases[self.victim].condition
        # Remove last tick's contribution, then apply this tick's.
        condition.cpu_multiplier /= self._applied_cpu
        condition.rows_read_multiplier /= self._applied_rows
        self._applied_cpu = 1.0
        self._applied_rows = 1.0
        if self.interval.contains(tick):
            level = self._next_intensity()
            self._applied_cpu = 1.0 + (self.cpu_factor - 1.0) * level
            self._applied_rows = 1.0 + (self.rows_factor - 1.0) * level
            condition.cpu_multiplier *= self._applied_cpu
            condition.rows_read_multiplier *= self._applied_rows

    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        mask = np.zeros((n_databases, n_ticks), dtype=bool)
        mask[self.victim, self.interval.start : min(self.interval.end, n_ticks)] = True
        return mask
