"""Injector interfaces and shared interval plumbing."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.cluster.unit import Unit

__all__ = ["InjectionInterval", "SimulationInjector", "SeriesInjector"]


@dataclass(frozen=True)
class InjectionInterval:
    """Half-open tick interval an injector is active over."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.end <= self.start:
            raise ValueError("end must exceed start")

    def contains(self, tick: int) -> bool:
        return self.start <= tick < self.end

    @property
    def duration(self) -> int:
        return self.end - self.start


class SimulationInjector(abc.ABC):
    """Perturbs the simulation's causes while it runs.

    Subclasses adjust routing weights or database conditions in
    :meth:`before_tick`; the monitor calls it ahead of every
    :meth:`~repro.cluster.unit.Unit.step`.  :meth:`labels` declares the
    injector's ground-truth footprint — temporal fluctuations return an
    all-``False`` mask because they are *not* anomalies.
    """

    @abc.abstractmethod
    def before_tick(self, unit: Unit, tick: int) -> None:
        """Adjust the unit's state for this tick."""

    @abc.abstractmethod
    def labels(self, n_databases: int, n_ticks: int) -> np.ndarray:
        """Boolean ground-truth mask of shape ``(n_databases, n_ticks)``."""


class SeriesInjector(abc.ABC):
    """Perturbs a collected KPI series in place.

    Used to transplant the deviation shapes of real Tencent incidents into
    Sysbench/TPCC series (Section IV-A1), and directly by tests that need
    a precisely controlled abnormal trend.
    """

    @abc.abstractmethod
    def inject(
        self, values: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Mutate ``values`` (``(D, K, T)``) and ``labels`` (``(D, T)``)."""


def check_series_shapes(values: np.ndarray, labels: np.ndarray) -> None:
    """Validate the (values, labels) pair every series injector receives."""
    if values.ndim != 3:
        raise ValueError(
            f"values must be (n_databases, n_kpis, n_ticks), got {values.shape}"
        )
    if labels.shape != (values.shape[0], values.shape[2]):
        raise ValueError(
            f"labels must be (n_databases, n_ticks) = "
            f"({values.shape[0]}, {values.shape[2]}), got {labels.shape}"
        )
