"""Periodicity classification (RobustPeriod substitute, Section IV-A2).

The paper splits its datasets into *periodic* and *irregular* subsets with
RobustPeriod applied to the "Requests Per Second" KPI.  RobustPeriod itself
(wavelet-based multi-period detection) is proprietary to its authors'
pipeline; any robust periodicity test preserves the split semantics, so we
combine the two classic detectors it builds on:

1. **Fisher's g-test** on the periodogram — is the dominant spectral peak
   significantly larger than the background?
2. **Autocorrelation validation** — does the autocorrelation at the
   candidate period confirm a genuine repeat, rather than a one-off burst?

A series is declared periodic when both agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["PeriodicityResult", "classify_periodicity"]

#: Significance level for Fisher's g-test.
_G_TEST_ALPHA = 0.01
#: Minimum autocorrelation at the candidate lag to confirm a period.
_MIN_ACF = 0.3
#: A period must repeat at least this many times inside the series.
_MIN_CYCLES = 3


@dataclass(frozen=True)
class PeriodicityResult:
    """Outcome of the periodicity test for one series.

    Parameters
    ----------
    periodic:
        Final verdict.
    period:
        Dominant period in ticks when periodic, else ``None``.
    g_statistic:
        Fisher's g statistic (dominant peak power / total power).
    acf_at_period:
        Autocorrelation at the candidate period lag (``0`` when no
        candidate survived the spectral test).
    """

    periodic: bool
    period: Optional[int]
    g_statistic: float
    acf_at_period: float


def _fisher_g_pvalue(g: float, n_freqs: int) -> float:
    """Right-tail p-value of Fisher's g statistic.

    Uses the standard truncated-series exact formula; for the series
    lengths used here the first term dominates, and we clamp at 1.
    """
    if n_freqs < 1:
        return 1.0
    p_value = 0.0
    max_terms = min(n_freqs, int(np.floor(1.0 / g)) if g > 0 else n_freqs)
    for k in range(1, max_terms + 1):
        term = (
            (-1.0) ** (k - 1)
            * math.comb(n_freqs, k)
            * (1.0 - k * g) ** (n_freqs - 1)
        )
        p_value += term
    return float(min(max(p_value, 0.0), 1.0))


def _autocorrelation(series: np.ndarray, lag: int) -> float:
    """Sample autocorrelation of a centered series at one lag."""
    centered = series - series.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0 or lag >= centered.size:
        return 0.0
    return float(np.dot(centered[lag:], centered[: centered.size - lag]) / denom)


def classify_periodicity(values: np.ndarray) -> PeriodicityResult:
    """Decide whether a KPI series is periodic.

    Parameters
    ----------
    values:
        One-dimensional KPI series (e.g. "Requests Per Second").

    Returns
    -------
    PeriodicityResult
    """
    series = np.asarray(values, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {series.shape}")
    n = series.size
    if n < 4 * _MIN_CYCLES:
        return PeriodicityResult(False, None, 0.0, 0.0)

    # Remove linear trend so slow drifts do not masquerade as low-frequency
    # periodicity.
    t = np.arange(n, dtype=np.float64)
    slope, intercept = np.polyfit(t, series, 1)
    detrended = series - (slope * t + intercept)
    if np.allclose(detrended, 0.0):
        return PeriodicityResult(False, None, 0.0, 0.0)

    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    # Drop the DC term and frequencies whose period would not repeat at
    # least _MIN_CYCLES times.
    freqs = np.arange(spectrum.size)
    valid = freqs >= _MIN_CYCLES
    valid[0] = False
    powers = spectrum[valid]
    if powers.size == 0 or powers.sum() == 0.0:
        return PeriodicityResult(False, None, 0.0, 0.0)
    peak_index = int(np.argmax(powers))
    g_stat = float(powers[peak_index] / powers.sum())
    p_value = _fisher_g_pvalue(g_stat, powers.size)
    peak_freq = int(freqs[valid][peak_index])
    period = int(round(n / peak_freq))
    acf = _autocorrelation(detrended, period) if period < n else 0.0

    periodic = p_value < _G_TEST_ALPHA and acf >= _MIN_ACF and period >= 2
    return PeriodicityResult(
        periodic=periodic,
        period=period if periodic else None,
        g_statistic=g_stat,
        acf_at_period=acf,
    )
