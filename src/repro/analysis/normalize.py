"""Re-export of the normalization primitives.

The implementations live in :mod:`repro.core.normalize` (Eq. 1 belongs to
the correlation-measurement core); this alias keeps them discoverable from
the analysis namespace without creating an import cycle.
"""

from repro.core.normalize import minmax_normalize, zscore_normalize

__all__ = ["minmax_normalize", "zscore_normalize"]
