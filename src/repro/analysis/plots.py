"""ASCII time-series rendering for examples and bench output.

The paper's figures are line charts of normalized KPI trends; these
helpers render the same stories in a terminal: single-series sparklines,
multi-database trend panels (Figure 3(a)/4/12-style), and event-marked
timelines.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["sparkline", "trend_panel", "timeline"]

_BLOCKS = " .:-=+*#%@"


def sparkline(series: np.ndarray, width: int = 60) -> str:
    """One-line intensity chart of a series.

    Parameters
    ----------
    series:
        1-D values; resampled by striding down to ``width`` characters.
    width:
        Output width in characters.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D series, got {values.shape}")
    if values.size == 0:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    stride = max(1, values.size // width)
    resampled = values[::stride][:width]
    low = resampled.min()
    span = (resampled.max() - low) or 1.0
    indices = ((resampled - low) / span * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def trend_panel(
    values: np.ndarray,
    labels: Optional[Sequence[str]] = None,
    width: int = 60,
    highlight: Optional[int] = None,
) -> str:
    """Figure 3(a)-style panel: one sparkline per database.

    Parameters
    ----------
    values:
        ``(n_series, n_ticks)`` array (e.g. one KPI across a unit).
    labels:
        Row labels; defaults to ``D1..Dn``.
    width:
        Sparkline width.
    highlight:
        Optional row index to mark with ``<-``.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"expected (n_series, n_ticks), got {data.shape}")
    names = (
        list(labels) if labels is not None
        else [f"D{i + 1}" for i in range(data.shape[0])]
    )
    if len(names) != data.shape[0]:
        raise ValueError("need one label per series")
    name_width = max(len(name) for name in names)
    lines = []
    for index, name in enumerate(names):
        marker = "  <-" if highlight == index else ""
        lines.append(
            f"{name:>{name_width}} |{sparkline(data[index], width)}|{marker}"
        )
    return "\n".join(lines)


def timeline(
    n_ticks: int,
    events: Sequence[Tuple[int, int, str]],
    width: int = 60,
) -> str:
    """Event band: marks each ``(start, end, symbol)`` span on one line.

    Useful under a :func:`trend_panel` to show where anomalies were
    injected (the paper's red vertical lines).
    """
    if n_ticks < 1:
        raise ValueError("n_ticks must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    band = [" "] * width
    for start, end, symbol in events:
        if end <= start:
            raise ValueError(f"event span [{start}, {end}) is empty")
        mark = (symbol or "!")[0]
        lo = int(np.clip(start / n_ticks * width, 0, width - 1))
        hi = int(np.clip(np.ceil(end / n_ticks * width), lo + 1, width))
        for position in range(lo, hi):
            band[position] = mark
    return "".join(band)
