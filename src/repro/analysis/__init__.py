"""Offline analysis utilities: normalization, periodicity, UKPIC studies.

These helpers are shared by the DBCatcher core (``repro.core``), the dataset
builders (``repro.datasets``) and the benchmark harness.  They implement the
preliminary-study machinery of the paper: Eq. (1) min-max normalization, the
RobustPeriod substitute used to split datasets into periodic and irregular
subsets (Section IV-A2), and the UKPIC correlation-matrix analysis behind
Figure 3.
"""

from repro.analysis.normalize import minmax_normalize, zscore_normalize
from repro.analysis.periodicity import PeriodicityResult, classify_periodicity
from repro.analysis.plots import sparkline, timeline, trend_panel
from repro.analysis.ukpic import (
    correlation_heatmap,
    unit_correlation_matrix,
    unit_correlation_summary,
)

__all__ = [
    "minmax_normalize",
    "zscore_normalize",
    "PeriodicityResult",
    "classify_periodicity",
    "sparkline",
    "trend_panel",
    "timeline",
    "unit_correlation_matrix",
    "unit_correlation_summary",
    "correlation_heatmap",
]
