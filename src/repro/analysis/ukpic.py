"""UKPIC analysis: the preliminary study behind Figures 3 and Table II.

Given a unit's multivariate monitoring series, these helpers compute the
pairwise KCD correlation matrices per KPI, summarize which KPIs exhibit the
Unit KPI Correlation phenomenon, and classify each KPI's correlation type as
P-R (primary-replica) and/or R-R (replica-replica).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.kcd import kcd_matrix

__all__ = [
    "unit_correlation_matrix",
    "KPICorrelationSummary",
    "unit_correlation_summary",
    "correlation_heatmap",
]

#: Mean pairwise KCD above which a KPI is said to exhibit UKPIC.
UKPIC_THRESHOLD = 0.7


def unit_correlation_matrix(
    values: np.ndarray, kpi_index: int, max_delay: int | None = None
) -> np.ndarray:
    """Dense pairwise-KCD matrix of one KPI across a unit's databases.

    Parameters
    ----------
    values:
        Unit series of shape ``(n_databases, n_kpis, n_ticks)``.
    kpi_index:
        Which KPI to correlate.
    max_delay:
        Delay scan bound forwarded to the KCD.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError(
            f"expected (n_databases, n_kpis, n_ticks), got shape {data.shape}"
        )
    return kcd_matrix(data[:, kpi_index, :], max_delay=max_delay)


@dataclass(frozen=True)
class KPICorrelationSummary:
    """UKPIC evidence for one KPI across a unit.

    Parameters
    ----------
    kpi:
        KPI name.
    mean_pr:
        Mean KCD between the primary and each replica.
    mean_rr:
        Mean KCD among replicas.
    correlation_type:
        ``"P-R, R-R"``, ``"R-R"``, ``"P-R"`` or ``""`` depending on which
        pairings clear :data:`UKPIC_THRESHOLD` (Table II's classification).
    """

    kpi: str
    mean_pr: float
    mean_rr: float
    correlation_type: str

    @property
    def has_ukpic(self) -> bool:
        return bool(self.correlation_type)


def unit_correlation_summary(
    values: np.ndarray,
    kpi_names: Sequence[str],
    primary: int = 0,
    max_delay: int | None = None,
    threshold: float = UKPIC_THRESHOLD,
) -> List[KPICorrelationSummary]:
    """Classify every KPI's correlation type over one unit (Table II).

    Parameters
    ----------
    values:
        Unit series of shape ``(n_databases, n_kpis, n_ticks)``.
    kpi_names:
        KPI names matching the second axis.
    primary:
        Index of the primary database inside the unit.
    max_delay:
        Delay scan bound forwarded to the KCD.
    threshold:
        Mean-KCD level that counts as "correlated".
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 3 or data.shape[1] != len(kpi_names):
        raise ValueError(
            "values must be (n_databases, n_kpis, n_ticks) matching kpi_names"
        )
    n_dbs = data.shape[0]
    if not 0 <= primary < n_dbs:
        raise IndexError(f"primary index {primary} out of range for {n_dbs} databases")
    replicas = [d for d in range(n_dbs) if d != primary]
    summaries = []
    for kpi_index, kpi in enumerate(kpi_names):
        matrix = kcd_matrix(data[:, kpi_index, :], max_delay=max_delay)
        pr_scores = [matrix[primary, r] for r in replicas]
        rr_scores = [
            matrix[a, b] for i, a in enumerate(replicas) for b in replicas[i + 1 :]
        ]
        mean_pr = float(np.mean(pr_scores)) if pr_scores else 0.0
        mean_rr = float(np.mean(rr_scores)) if rr_scores else 0.0
        parts = []
        if mean_pr >= threshold:
            parts.append("P-R")
        if mean_rr >= threshold:
            parts.append("R-R")
        summaries.append(
            KPICorrelationSummary(
                kpi=kpi,
                mean_pr=mean_pr,
                mean_rr=mean_rr,
                correlation_type=", ".join(parts),
            )
        )
    return summaries


def correlation_heatmap(matrix: np.ndarray, labels: Sequence[str] | None = None) -> str:
    """ASCII rendering of a correlation matrix (Figure 3(b) style).

    Parameters
    ----------
    matrix:
        Square correlation matrix.
    labels:
        Optional row/column labels; defaults to ``D1..Dn``.
    """
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {dense.shape}")
    n = dense.shape[0]
    names = list(labels) if labels is not None else [f"D{i + 1}" for i in range(n)]
    if len(names) != n:
        raise ValueError("need one label per matrix row")
    width = max(6, max(len(name) for name in names) + 1)
    header = " " * width + "".join(f"{name:>{width}}" for name in names)
    lines = [header]
    for i, name in enumerate(names):
        cells = "".join(f"{dense[i, j]:>{width}.2f}" for j in range(n))
        lines.append(f"{name:>{width}}" + cells)
    return "\n".join(lines)
