#!/usr/bin/env python
"""Bench-trajectory regression gate.

Compares a fresh ``bench-results.json`` (what the CI smoke job writes
via ``REPRO_BENCH_JSON``) against the committed baseline and fails when
any performance metric regresses by more than the tolerance — so the
engine's batched-pass win, the service's fleet throughput, and the
tuning subsystem's vectorized speedup are one failing CI run away from
being noticed instead of one silent merge away from being lost.

Only metrics whose *direction* is inferable from their name are gated:

* higher is better: ``*speedup*``, ``*per_second*``, ``*fitness*``,
  ``*f_measure*``, ``*hits*``;
* lower is better: ``*seconds*``, ``*_ms*``, ``*ms_per*``,
  ``*overhead_ratio*``, ``*misses*``.

Everything else (shapes, counts, scale records) is context, not a gate.
Entries whose ``scale`` differs from the baseline's are skipped with a
warning — a deliberately rescaled bench must regenerate the baseline.
Time-like baselines below the noise floor are skipped too: a 0.4 ms
number doubling on a shared runner is scheduler jitter, not a
regression.

Usage::

    python scripts/bench_compare.py \
        --baseline benchmarks/baselines/bench-baseline.json \
        --current bench-results.json \
        --report bench-comparison.md

Exit status: 0 when every gated metric is within tolerance, 1 on any
regression, 2 on usage errors (missing/corrupt files).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

HIGHER_IS_BETTER = ("speedup", "per_second", "fitness", "f_measure", "hits")
LOWER_IS_BETTER = ("seconds", "_ms", "ms_per", "overhead_ratio", "misses")

#: Lower-is-better baselines under this are scheduler noise, not signal.
NOISE_FLOOR_SECONDS = 1e-3


def metric_direction(name: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` / ``None`` (ungated) for a metric name."""
    lowered = name.lower()
    for token in HIGHER_IS_BETTER:
        if token in lowered:
            return "higher"
    for token in LOWER_IS_BETTER:
        if token in lowered:
            return "lower"
    return None


def compare(
    baseline: Dict[str, Dict[str, object]],
    current: Dict[str, Dict[str, object]],
    tolerance: float,
) -> Tuple[List[dict], List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(rows, warnings)`` where each row describes one gated
    metric (with its verdict) and warnings list skipped comparisons.
    """
    rows: List[dict] = []
    warnings: List[str] = []
    for bench, base_metrics in sorted(baseline.items()):
        fresh_metrics = current.get(bench)
        if fresh_metrics is None:
            warnings.append(f"bench {bench!r} missing from current results")
            continue
        if base_metrics.get("scale") != fresh_metrics.get("scale"):
            warnings.append(
                f"bench {bench!r} ran at a different scale "
                f"({fresh_metrics.get('scale')} vs baseline "
                f"{base_metrics.get('scale')}); skipped — regenerate the "
                "baseline if the rescale is intentional"
            )
            continue
        for name, base_value in sorted(base_metrics.items()):
            direction = metric_direction(name)
            if direction is None or not isinstance(base_value, (int, float)):
                continue
            fresh_value = fresh_metrics.get(name)
            if not isinstance(fresh_value, (int, float)):
                warnings.append(f"{bench}.{name} missing from current results")
                continue
            base = float(base_value)
            fresh = float(fresh_value)
            if direction == "lower" and base < NOISE_FLOOR_SECONDS:
                warnings.append(
                    f"{bench}.{name} baseline {base:g} below noise floor; "
                    "skipped"
                )
                continue
            if direction == "higher":
                regressed = fresh < base * (1.0 - tolerance)
                change = (fresh - base) / base if base else 0.0
            else:
                regressed = fresh > base * (1.0 + tolerance)
                change = (fresh - base) / base if base else 0.0
            rows.append(
                {
                    "bench": bench,
                    "metric": name,
                    "direction": direction,
                    "baseline": base,
                    "current": fresh,
                    "change": change,
                    "regressed": regressed,
                }
            )
    return rows, warnings


def render_report(
    rows: List[dict], warnings: List[str], tolerance: float
) -> str:
    """Markdown comparison report (the CI artifact)."""
    regressions = [row for row in rows if row["regressed"]]
    lines = [
        "# Bench trajectory comparison",
        "",
        f"Tolerance: {tolerance:.0%} regression on any gated metric.",
        f"Gated metrics: {len(rows)}; regressions: {len(regressions)}.",
        "",
        "| bench | metric | better | baseline | current | change | verdict |",
        "|---|---|---|---:|---:|---:|---|",
    ]
    for row in rows:
        verdict = "**REGRESSED**" if row["regressed"] else "ok"
        lines.append(
            f"| {row['bench']} | {row['metric']} | {row['direction']} "
            f"| {row['baseline']:g} | {row['current']:g} "
            f"| {row['change']:+.1%} | {verdict} |"
        )
    if warnings:
        lines.extend(["", "## Skipped / warnings", ""])
        lines.extend(f"- {warning}" for warning in warnings)
    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/bench-baseline.json",
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--current",
        default="bench-results.json",
        help="fresh REPRO_BENCH_JSON output to gate",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression per metric (default 0.30)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the markdown comparison report here",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        current = json.loads(Path(args.current).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2

    rows, warnings = compare(baseline, current, args.tolerance)
    report = render_report(rows, warnings, args.tolerance)
    if args.report is not None:
        Path(args.report).write_text(report)
    print(report)

    regressions = [row for row in rows if row["regressed"]]
    if regressions:
        print(
            f"bench_compare: {len(regressions)} metric(s) regressed beyond "
            f"{args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for row in regressions:
            print(
                f"  {row['bench']}.{row['metric']}: {row['baseline']:g} -> "
                f"{row['current']:g} ({row['change']:+.1%}, "
                f"{row['direction']} is better)",
                file=sys.stderr,
            )
        return 1
    if not rows:
        print(
            "bench_compare: no gated metrics were compared — baseline and "
            "results disagree entirely?",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
