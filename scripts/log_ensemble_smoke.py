#!/usr/bin/env python
"""CI smoke for the log-event channel and KPI/log ensemble.

Replays a seeded KPI-blind scenario end-to-end through the real CLI —
``serve --log-scenario <name> --rca`` with a JSONL alert sink — in a
fresh subprocess, exactly the path an operator runs.  The scenario's
anomalies are invisible to correlation detection by construction, so
every assertion below is evidence the log modality carried the verdict:

* the serve run exits 0 and reports served rounds;
* the alert stream is non-empty and carries at least one alert whose
  provenance tags the seeded victim as ``log``-found;
* at least one incident record made it through RCA;
* a second, identical run produces a byte-identical alert stream —
  the whole channel (emission, masking, counting, judging, fusion,
  alerting) is deterministic under a fixed seed.

Exit status 0 on success; 1 with a description of the first failure.
Run it locally with::

    PYTHONPATH=src python scripts/log_ensemble_smoke.py --workdir /tmp/smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.ensemble import PROVENANCE_BOTH, PROVENANCE_LOG  # noqa: E402
from repro.logs import LOG_SCENARIOS, log_scenario  # noqa: E402


def _serve(scenario: str, seed: int, alerts_path: str) -> str:
    """Run one CLI serve pass; returns captured stderr."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--log-scenario",
        scenario,
        "--seed",
        str(seed),
        "--rca",
        "--sink",
        f"jsonl:{alerts_path}",
    ]
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=300
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"serve exited {completed.returncode}\n"
            f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
        )
    if f"log scenario {scenario}" not in completed.stderr:
        raise SystemExit(
            f"serve never announced the scenario; stderr:\n{completed.stderr}"
        )
    return completed.stderr


def _check_alert_stream(scenario: str, alerts_path: str) -> List[dict]:
    with open(alerts_path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    if not records:
        raise SystemExit(f"{alerts_path} is empty: no alerts were published")

    # Scenario incidents are (label, database, start, end) tuples.
    victims = {
        str(incident[1]) for incident in log_scenario(scenario).incidents
    }
    log_found = [
        record
        for record in records
        if any(
            record.get("provenance", {}).get(victim)
            in (PROVENANCE_LOG, PROVENANCE_BOTH)
            for victim in victims
        )
    ]
    if not log_found:
        raise SystemExit(
            f"no alert tags a seeded victim {sorted(victims)} as log-found "
            f"in {len(records)} records"
        )
    incidents = [r for r in records if r.get("type") == "incident"]
    if not incidents:
        raise SystemExit("no incident record: RCA never correlated the burst")
    print(
        f"  {scenario}: {len(records)} records, "
        f"{len(log_found)} log-provenance alerts, "
        f"{len(incidents)} incident(s)"
    )
    return records


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", default="log-smoke-workdir", help="scratch directory"
    )
    parser.add_argument(
        "--scenario",
        default="error-burst",
        choices=sorted(LOG_SCENARIOS),
        help="KPI-blind preset to replay",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    os.makedirs(args.workdir, exist_ok=True)
    print(f"log-ensemble smoke: scenario={args.scenario} seed={args.seed}")

    streams = []
    for attempt in ("first", "second"):
        alerts_path = os.path.join(args.workdir, f"alerts-{attempt}.jsonl")
        if os.path.exists(alerts_path):
            os.unlink(alerts_path)  # the JSONL sink appends
        _serve(args.scenario, args.seed, alerts_path)
        _check_alert_stream(args.scenario, alerts_path)
        with open(alerts_path, "rb") as handle:
            streams.append(handle.read())

    if streams[0] != streams[1]:
        raise SystemExit(
            "alert streams differ between two identical serve runs — "
            "the log channel is not deterministic"
        )
    print("  identical alert streams across both runs")
    print("log-ensemble smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
