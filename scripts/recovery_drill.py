#!/usr/bin/env python
"""CI recovery drill: SIGKILL a serving process mid-run, restart, compare.

The drill is the executable form of the durability contract in
``repro.persist``: a detection service killed at an arbitrary moment and
restarted from its ``--state-dir`` must end with exactly the verdict
history an uninterrupted run produces.

Three phases, all driven from this one script:

1. *Reference*: a victim subprocess serves a saved dataset to completion
   into ``reference-state/``.
2. *Kill*: a second victim serves the same dataset into ``drill-state/``,
   throttled so the run takes a few seconds; the parent polls the WAL on
   disk and delivers ``SIGKILL`` once recorded progress crosses a
   mid-stream threshold — no cooperation, no cleanup, no flush.
3. *Resume*: a third victim restarts from ``drill-state/`` and runs the
   stream to completion, recovering snapshot + WAL and resuming
   mid-stream.

The drill then loads both state directories' verdict histories and
requires them identical: round spans and judgement records exactly,
correlation matrices (kept only for abnormal rounds) to 1e-9.

``--api`` runs the kill + resume phases over the network ingestion
plane instead of an in-process replay: the victim serves an
:class:`~repro.service.api.IngestServer` on an ephemeral port and
publishes its URL to a file; the parent pushes the dataset over HTTP
with :func:`~repro.service.api.push_dataset`, whose ``url_provider``
re-reads that file before every request.  SIGKILL takes out the server
mid-stream — admitted-but-unprocessed ticks die with the queue — and
the restarted victim binds a fresh port, rewrites the URL file, and the
pusher reconnects, re-registers, and replays from tick zero; stale
dedup on the serving side makes the replay idempotent.  The reference
history stays in-process, so equivalence here pins transport *and*
crash recovery in one sweep.

Exit status 0 on equivalence; 1 with a diff on any mismatch.  Run it
locally with::

    PYTHONPATH=src python scripts/recovery_drill.py --workdir /tmp/drill
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

from repro.datasets import Dataset, build_unit_series, save_dataset  # noqa: E402
from repro.persist.store import UnitStore  # noqa: E402
from repro.presets import default_config  # noqa: E402

KILL_AT_TICK = 96  # deliver SIGKILL once any unit's WAL records this tick
POLL_SECONDS = 0.05
VICTIM_TIMEOUT = 180.0


class _Throttled:
    """Wrap a tick source, sleeping per event so the run spans wall time.

    Without the throttle the whole 240-tick replay finishes in well under
    a second and the parent cannot reliably land a kill mid-stream.
    """

    def __init__(self, source, delay_seconds: float):
        self._source = source
        self._delay = delay_seconds
        self.units = source.units
        self.kpi_names = source.kpi_names
        self.interval_seconds = getattr(source, "interval_seconds", 5.0)

    def __iter__(self):
        for event in self._source:
            time.sleep(self._delay)
            yield event


def _build_service(args: argparse.Namespace):
    from repro.service import DetectionService, ServiceConfig

    return DetectionService(
        default_config(),
        service_config=ServiceConfig(
            n_workers=args.jobs,
            batch_ticks=args.batch_ticks,
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every,
            transport=args.transport,
        ),
        sinks=(),
    )


def _run_victim(args: argparse.Namespace) -> int:
    """Child mode: serve the dataset into ``--state-dir`` and exit."""
    import faulthandler

    # Diagnostics for a wedged victim: `kill -USR1 <pid>` dumps every
    # thread's stack to stderr without disturbing the run.
    faulthandler.register(signal.SIGUSR1)

    if args.url_file:
        return _run_victim_api(args)

    from repro.service.sources import ReplaySource

    service = _build_service(args)
    source = _Throttled(ReplaySource(args.dataset), args.throttle)
    report = service.run(source, collect_results=False)
    print(f"victim done: {report.total_rounds} live rounds", flush=True)
    return 0


def _run_victim_api(args: argparse.Namespace) -> int:
    """Child mode over HTTP: bind a port, publish it, serve the stream.

    The URL file is written atomically *after* the listener is up, so
    the pusher never sees a URL it cannot connect to (only a stale one
    from a killed predecessor, which it retries past).
    """
    from repro.service.api import IngestServer, NetworkSource

    source = NetworkSource(
        capacity=256, handshake_timeout_seconds=VICTIM_TIMEOUT
    )
    service = _build_service(args)
    with IngestServer(source) as server:
        tmp = args.url_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(server.url + "\n")
        os.replace(tmp, args.url_file)
        report = service.run(source, collect_results=False)
    print(f"victim done: {report.total_rounds} live rounds", flush=True)
    return 0


def _unit_dirs(state_dir: str) -> List[str]:
    if not os.path.isdir(state_dir):
        return []
    return sorted(
        name
        for name in os.listdir(state_dir)
        if os.path.isdir(os.path.join(state_dir, name))
    )


def _histories(state_dir: str) -> Dict[str, list]:
    # Unit directory names are already filesystem-safe, and _safe_name is
    # idempotent on them, so they address the stores directly.
    return {
        unit: UnitStore(state_dir, unit).load_history()
        for unit in _unit_dirs(state_dir)
    }


def _progress(state_dir: str) -> int:
    """Highest recorded round end across all units (0 when none)."""
    best = 0
    for history in _histories(state_dir).values():
        for result in history:
            best = max(best, result.end)
    return best


def _spawn_victim(
    dataset: str,
    state_dir: str,
    args: argparse.Namespace,
    url_file: str = "",
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Each victim leads its own process group so SIGKILL can take out the
    # whole service — scheduler *and* pool workers — in one shot, the way
    # an OOM killer or a node reboot would.  Killing only the main
    # process would orphan the workers, and orphans holding the
    # inherited stdout keep CI log capture open forever.
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--victim",
        "--dataset", dataset,
        "--state-dir", state_dir,
        "--jobs", str(args.jobs),
        "--batch-ticks", str(args.batch_ticks),
        "--snapshot-every", str(args.snapshot_every),
        "--throttle", str(args.throttle),
        "--transport", args.transport,
    ]
    if url_file:
        command += ["--url-file", url_file]
    return subprocess.Popen(command, env=env, start_new_session=True)


def _killpg(victim: subprocess.Popen) -> None:
    try:
        os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
    except ProcessLookupError:  # already gone
        pass


def _wait(proc: subprocess.Popen, what: str) -> None:
    code = proc.wait(timeout=VICTIM_TIMEOUT)
    if code != 0:
        raise SystemExit(f"{what} exited with status {code}")


def _compare(reference: Dict[str, list], drilled: Dict[str, list]) -> List[str]:
    problems: List[str] = []
    if sorted(reference) != sorted(drilled):
        problems.append(
            f"unit sets differ: reference={sorted(reference)} "
            f"drill={sorted(drilled)}"
        )
        return problems
    for unit in sorted(reference):
        want, got = reference[unit], drilled[unit]
        want_spans = [(r.start, r.end) for r in want]
        got_spans = [(r.start, r.end) for r in got]
        if want_spans != got_spans:
            problems.append(
                f"{unit}: round spans differ\n"
                f"  reference: {want_spans}\n  drill:     {got_spans}"
            )
            continue
        for w, g in zip(want, got):
            if w.records != g.records:
                problems.append(
                    f"{unit} round [{w.start},{w.end}): judgement records "
                    f"differ"
                )
            if w.matrices is not None and g.matrices is not None:
                for wm, gm in zip(w.matrices, g.matrices):
                    if wm.kpi != gm.kpi or not np.allclose(
                        wm.triangle, gm.triangle,
                        rtol=0.0, atol=1e-9, equal_nan=True,
                    ):
                        problems.append(
                            f"{unit} round [{w.start},{w.end}): matrix "
                            f"{wm.kpi} diverges beyond 1e-9"
                        )
    return problems


def _start_pusher(
    dataset_path: str,
    url_file: str,
    args: argparse.Namespace,
    outcome: Dict[str, object],
) -> threading.Thread:
    """Push the dataset over HTTP from the parent, following the URL file.

    ``url_provider`` re-reads the file before every request, so after
    the kill the pusher's retries land on the restarted victim's fresh
    port as soon as it publishes one.  Reconnect budget and backoff are
    generous — the restart takes a few seconds and the parent's own
    timeout bounds the whole phase.
    """
    from repro.service.api import push_dataset

    def _url() -> str:
        deadline = time.monotonic() + VICTIM_TIMEOUT
        while time.monotonic() < deadline:
            try:
                with open(url_file, encoding="utf-8") as handle:
                    text = handle.read().strip()
            except OSError:
                text = ""
            if text:
                return text
            time.sleep(POLL_SECONDS)
        raise RuntimeError("ingest URL file never appeared")

    def _push() -> None:
        try:
            outcome["stats"] = push_dataset(
                dataset_path,
                url_provider=_url,
                batch_ticks=args.batch_ticks,
                timeout_seconds=5.0,
                max_reconnects=100,
                backoff_seconds=0.1,
                backoff_cap_seconds=1.0,
                throttle_seconds=args.throttle,
            )
        except BaseException as exc:  # surfaced by the parent loop
            outcome["error"] = exc

    thread = threading.Thread(target=_push, daemon=True)
    thread.start()
    return thread


def _run_drill(args: argparse.Namespace) -> int:
    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)
    reference_state = os.path.join(workdir, "reference-state")
    drill_state = os.path.join(workdir, "drill-state")
    for path in (reference_state, drill_state):
        if os.path.exists(path):
            raise SystemExit(
                f"refusing to reuse existing state dir {path}; "
                f"pass a fresh --workdir"
            )

    dataset_path = os.path.join(workdir, "drill-dataset.npz")
    units = tuple(
        build_unit_series(
            profile="tencent",
            n_databases=5,
            n_ticks=args.ticks,
            seed=9100 + index,
            abnormal_ratio=0.08,
            name=f"drill-{index}",
        )
        for index in range(2)
    )
    save_dataset(Dataset(name="recovery-drill", units=units), dataset_path)

    print(f"[drill] reference run -> {reference_state}", flush=True)
    _wait(_spawn_victim(dataset_path, reference_state, args), "reference victim")
    reference = _histories(reference_state)
    final_tick = max(r.end for h in reference.values() for r in h)
    if final_tick <= KILL_AT_TICK:
        raise SystemExit(
            f"reference run only reached tick {final_tick}; the kill "
            f"threshold {KILL_AT_TICK} would not land mid-stream"
        )

    url_file = os.path.join(workdir, "ingest-url") if args.api else ""
    pusher = None
    outcome: Dict[str, object] = {}
    if args.api:
        print(f"[drill] api victim run -> {drill_state} (kill at tick "
              f">={KILL_AT_TICK})", flush=True)
        victim = _spawn_victim(dataset_path, drill_state, args, url_file)
        pusher = _start_pusher(dataset_path, url_file, args, outcome)
    else:
        print(f"[drill] victim run -> {drill_state} (kill at tick "
              f">={KILL_AT_TICK})", flush=True)
        victim = _spawn_victim(dataset_path, drill_state, args)
    deadline = time.monotonic() + VICTIM_TIMEOUT
    try:
        while True:
            if victim.poll() is not None:
                raise SystemExit(
                    "victim finished before the kill landed; raise "
                    "--throttle so the run spans more wall time"
                )
            if "error" in outcome:
                raise SystemExit(f"pusher died early: {outcome['error']!r}")
            if _progress(drill_state) >= KILL_AT_TICK:
                break
            if time.monotonic() > deadline:
                raise SystemExit("timed out waiting for victim progress")
            time.sleep(POLL_SECONDS)
    except BaseException:
        if victim.poll() is None:
            _killpg(victim)
            victim.wait()
        raise
    _killpg(victim)
    code = victim.wait(timeout=VICTIM_TIMEOUT)
    print(f"[drill] victim killed (exit {code}) at recorded tick "
          f"{_progress(drill_state)}", flush=True)
    if code == 0:
        raise SystemExit("victim survived SIGKILL?")
    if _progress(drill_state) >= final_tick:
        raise SystemExit(
            "victim had already recorded the full stream when killed; "
            "the drill proved nothing — raise --throttle"
        )

    print(f"[drill] resume run <- {drill_state}", flush=True)
    resume = _spawn_victim(dataset_path, drill_state, args, url_file)
    _wait(resume, "resume victim")
    if pusher is not None:
        pusher.join(timeout=VICTIM_TIMEOUT)
        if pusher.is_alive():
            raise SystemExit("pusher never finished")
        if "error" in outcome:
            raise SystemExit(f"pusher failed: {outcome['error']!r}")
        stats = outcome["stats"]
        if stats.reconnects < 1:
            raise SystemExit(
                "kill landed but the pusher never reconnected; the "
                "network path was not actually exercised"
            )
        print(f"[drill] pusher survived the kill: {stats.reconnects} "
              f"reconnects, {stats.posted} ticks posted, "
              f"{stats.stale} stale after replay-from-zero", flush=True)

    problems = _compare(reference, _histories(drill_state))
    if problems:
        print("[drill] FAILED: restored history diverges", flush=True)
        for problem in problems:
            print(f"  - {problem}")
        return 1
    rounds = sum(len(h) for h in reference.values())
    print(f"[drill] PASS: {rounds} rounds identical across "
          f"{len(reference)} units after kill + warm restart", flush=True)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="drill-workdir",
                        help="scratch directory for dataset + state dirs")
    parser.add_argument("--jobs", type=int, default=2,
                        help="victim worker processes (0 = serial)")
    parser.add_argument("--batch-ticks", type=int, default=16)
    parser.add_argument("--transport", choices=("pickle", "shm"),
                        default="pickle",
                        help="worker tick transport the victim serves with")
    parser.add_argument("--snapshot-every", type=int, default=8)
    parser.add_argument("--ticks", type=int, default=240,
                        help="stream length per unit")
    parser.add_argument("--throttle", type=float, default=0.004,
                        help="seconds slept per tick event in the victim")
    parser.add_argument("--api", action="store_true",
                        help="run the kill + resume phases over the HTTP "
                             "ingestion plane (the reference run stays "
                             "in-process, so the comparison pins transport "
                             "and crash recovery together)")
    parser.add_argument("--victim", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--dataset", help=argparse.SUPPRESS)
    parser.add_argument("--state-dir", help=argparse.SUPPRESS)
    parser.add_argument("--url-file", default="", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.victim:
        return _run_victim(args)
    return _run_drill(args)


if __name__ == "__main__":
    raise SystemExit(main())
