#!/usr/bin/env python
"""CI recovery drill: SIGKILL a serving process mid-run, restart, compare.

The drill is the executable form of the durability contract in
``repro.persist``: a detection service killed at an arbitrary moment and
restarted from its ``--state-dir`` must end with exactly the verdict
history an uninterrupted run produces.

Three phases, all driven from this one script:

1. *Reference*: a victim subprocess serves a saved dataset to completion
   into ``reference-state/``.
2. *Kill*: a second victim serves the same dataset into ``drill-state/``,
   throttled so the run takes a few seconds; the parent polls the WAL on
   disk and delivers ``SIGKILL`` once recorded progress crosses a
   mid-stream threshold — no cooperation, no cleanup, no flush.
3. *Resume*: a third victim restarts from ``drill-state/`` and runs the
   stream to completion, recovering snapshot + WAL and resuming
   mid-stream.

The drill then loads both state directories' verdict histories and
requires them identical: round spans and judgement records exactly,
correlation matrices (kept only for abnormal rounds) to 1e-9.

Exit status 0 on equivalence; 1 with a diff on any mismatch.  Run it
locally with::

    PYTHONPATH=src python scripts/recovery_drill.py --workdir /tmp/drill
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

from repro.datasets import Dataset, build_unit_series, save_dataset  # noqa: E402
from repro.persist.store import UnitStore  # noqa: E402
from repro.presets import default_config  # noqa: E402

KILL_AT_TICK = 96  # deliver SIGKILL once any unit's WAL records this tick
POLL_SECONDS = 0.05
VICTIM_TIMEOUT = 180.0


class _Throttled:
    """Wrap a tick source, sleeping per event so the run spans wall time.

    Without the throttle the whole 240-tick replay finishes in well under
    a second and the parent cannot reliably land a kill mid-stream.
    """

    def __init__(self, source, delay_seconds: float):
        self._source = source
        self._delay = delay_seconds
        self.units = source.units
        self.kpi_names = source.kpi_names
        self.interval_seconds = getattr(source, "interval_seconds", 5.0)

    def __iter__(self):
        for event in self._source:
            time.sleep(self._delay)
            yield event


def _run_victim(args: argparse.Namespace) -> int:
    """Child mode: serve the dataset into ``--state-dir`` and exit."""
    import faulthandler

    # Diagnostics for a wedged victim: `kill -USR1 <pid>` dumps every
    # thread's stack to stderr without disturbing the run.
    faulthandler.register(signal.SIGUSR1)

    from repro.service import DetectionService, ServiceConfig
    from repro.service.sources import ReplaySource

    service = DetectionService(
        default_config(),
        service_config=ServiceConfig(
            n_workers=args.jobs,
            batch_ticks=args.batch_ticks,
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every,
        ),
        sinks=(),
    )
    source = _Throttled(ReplaySource(args.dataset), args.throttle)
    report = service.run(source, collect_results=False)
    print(f"victim done: {report.total_rounds} live rounds", flush=True)
    return 0


def _unit_dirs(state_dir: str) -> List[str]:
    if not os.path.isdir(state_dir):
        return []
    return sorted(
        name
        for name in os.listdir(state_dir)
        if os.path.isdir(os.path.join(state_dir, name))
    )


def _histories(state_dir: str) -> Dict[str, list]:
    # Unit directory names are already filesystem-safe, and _safe_name is
    # idempotent on them, so they address the stores directly.
    return {
        unit: UnitStore(state_dir, unit).load_history()
        for unit in _unit_dirs(state_dir)
    }


def _progress(state_dir: str) -> int:
    """Highest recorded round end across all units (0 when none)."""
    best = 0
    for history in _histories(state_dir).values():
        for result in history:
            best = max(best, result.end)
    return best


def _spawn_victim(
    dataset: str, state_dir: str, args: argparse.Namespace
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Each victim leads its own process group so SIGKILL can take out the
    # whole service — scheduler *and* pool workers — in one shot, the way
    # an OOM killer or a node reboot would.  Killing only the main
    # process would orphan the workers, and orphans holding the
    # inherited stdout keep CI log capture open forever.
    return subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--victim",
            "--dataset", dataset,
            "--state-dir", state_dir,
            "--jobs", str(args.jobs),
            "--batch-ticks", str(args.batch_ticks),
            "--snapshot-every", str(args.snapshot_every),
            "--throttle", str(args.throttle),
        ],
        env=env,
        start_new_session=True,
    )


def _killpg(victim: subprocess.Popen) -> None:
    try:
        os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
    except ProcessLookupError:  # already gone
        pass


def _wait(proc: subprocess.Popen, what: str) -> None:
    code = proc.wait(timeout=VICTIM_TIMEOUT)
    if code != 0:
        raise SystemExit(f"{what} exited with status {code}")


def _compare(reference: Dict[str, list], drilled: Dict[str, list]) -> List[str]:
    problems: List[str] = []
    if sorted(reference) != sorted(drilled):
        problems.append(
            f"unit sets differ: reference={sorted(reference)} "
            f"drill={sorted(drilled)}"
        )
        return problems
    for unit in sorted(reference):
        want, got = reference[unit], drilled[unit]
        want_spans = [(r.start, r.end) for r in want]
        got_spans = [(r.start, r.end) for r in got]
        if want_spans != got_spans:
            problems.append(
                f"{unit}: round spans differ\n"
                f"  reference: {want_spans}\n  drill:     {got_spans}"
            )
            continue
        for w, g in zip(want, got):
            if w.records != g.records:
                problems.append(
                    f"{unit} round [{w.start},{w.end}): judgement records "
                    f"differ"
                )
            if w.matrices is not None and g.matrices is not None:
                for wm, gm in zip(w.matrices, g.matrices):
                    if wm.kpi != gm.kpi or not np.allclose(
                        wm.triangle, gm.triangle,
                        rtol=0.0, atol=1e-9, equal_nan=True,
                    ):
                        problems.append(
                            f"{unit} round [{w.start},{w.end}): matrix "
                            f"{wm.kpi} diverges beyond 1e-9"
                        )
    return problems


def _run_drill(args: argparse.Namespace) -> int:
    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)
    reference_state = os.path.join(workdir, "reference-state")
    drill_state = os.path.join(workdir, "drill-state")
    for path in (reference_state, drill_state):
        if os.path.exists(path):
            raise SystemExit(
                f"refusing to reuse existing state dir {path}; "
                f"pass a fresh --workdir"
            )

    dataset_path = os.path.join(workdir, "drill-dataset.npz")
    units = tuple(
        build_unit_series(
            profile="tencent",
            n_databases=5,
            n_ticks=args.ticks,
            seed=9100 + index,
            abnormal_ratio=0.08,
            name=f"drill-{index}",
        )
        for index in range(2)
    )
    save_dataset(Dataset(name="recovery-drill", units=units), dataset_path)

    print(f"[drill] reference run -> {reference_state}", flush=True)
    _wait(_spawn_victim(dataset_path, reference_state, args), "reference victim")
    reference = _histories(reference_state)
    final_tick = max(r.end for h in reference.values() for r in h)
    if final_tick <= KILL_AT_TICK:
        raise SystemExit(
            f"reference run only reached tick {final_tick}; the kill "
            f"threshold {KILL_AT_TICK} would not land mid-stream"
        )

    print(f"[drill] victim run -> {drill_state} (kill at tick "
          f">={KILL_AT_TICK})", flush=True)
    victim = _spawn_victim(dataset_path, drill_state, args)
    deadline = time.monotonic() + VICTIM_TIMEOUT
    try:
        while True:
            if victim.poll() is not None:
                raise SystemExit(
                    "victim finished before the kill landed; raise "
                    "--throttle so the run spans more wall time"
                )
            if _progress(drill_state) >= KILL_AT_TICK:
                break
            if time.monotonic() > deadline:
                raise SystemExit("timed out waiting for victim progress")
            time.sleep(POLL_SECONDS)
    except BaseException:
        if victim.poll() is None:
            _killpg(victim)
            victim.wait()
        raise
    _killpg(victim)
    code = victim.wait(timeout=VICTIM_TIMEOUT)
    print(f"[drill] victim killed (exit {code}) at recorded tick "
          f"{_progress(drill_state)}", flush=True)
    if code == 0:
        raise SystemExit("victim survived SIGKILL?")
    if _progress(drill_state) >= final_tick:
        raise SystemExit(
            "victim had already recorded the full stream when killed; "
            "the drill proved nothing — raise --throttle"
        )

    print(f"[drill] resume run <- {drill_state}", flush=True)
    _wait(_spawn_victim(dataset_path, drill_state, args), "resume victim")

    problems = _compare(reference, _histories(drill_state))
    if problems:
        print("[drill] FAILED: restored history diverges", flush=True)
        for problem in problems:
            print(f"  - {problem}")
        return 1
    rounds = sum(len(h) for h in reference.values())
    print(f"[drill] PASS: {rounds} rounds identical across "
          f"{len(reference)} units after kill + warm restart", flush=True)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="drill-workdir",
                        help="scratch directory for dataset + state dirs")
    parser.add_argument("--jobs", type=int, default=2,
                        help="victim worker processes (0 = serial)")
    parser.add_argument("--batch-ticks", type=int, default=16)
    parser.add_argument("--snapshot-every", type=int, default=8)
    parser.add_argument("--ticks", type=int, default=240,
                        help="stream length per unit")
    parser.add_argument("--throttle", type=float, default=0.004,
                        help="seconds slept per tick event in the victim")
    parser.add_argument("--victim", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--dataset", help=argparse.SUPPRESS)
    parser.add_argument("--state-dir", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.victim:
        return _run_victim(args)
    return _run_drill(args)


if __name__ == "__main__":
    raise SystemExit(main())
