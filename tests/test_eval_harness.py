"""Tests for the threshold search, experiment runner and table renderers."""

import numpy as np
import pytest

from repro.baselines import FFTDetector, SRDetector
from repro.datasets import Dataset, build_unit_series, train_test_split
from repro.eval.runner import (
    MethodSummary,
    TrialResult,
    repeat,
    run_baseline_trial,
    run_dbcatcher_trial,
    summarize,
)
from repro.eval.search import evaluate_rule, search_threshold_rule
from repro.eval.metrics import DetectionScores
from repro.eval.tables import (
    render_performance_figure,
    render_table,
    render_timing_table,
    render_window_table,
)
from repro.presets import default_config
from repro.tuning import GeneticThresholdLearner


@pytest.fixture(scope="module")
def tiny_split():
    units = tuple(
        build_unit_series(profile="sysbench", n_ticks=400, seed=seed,
                          abnormal_ratio=0.05)
        for seed in (21, 22, 23)
    )
    return train_test_split(Dataset(name="tiny", units=units))


class TestSearch:
    def test_search_returns_valid_rule(self, tiny_split):
        train, _ = tiny_split
        detector = SRDetector()
        detector.fit(train)
        result = search_threshold_rule(
            detector, train, n_candidates=20, rng=np.random.default_rng(0)
        )
        assert result.rule.window_size >= 20
        assert 0.0 <= result.train_f_measure <= 1.0

    def test_search_deterministic_given_rng(self, tiny_split):
        train, _ = tiny_split
        detector = FFTDetector()
        detector.fit(train)
        scores = detector.score_dataset(train)
        a = search_threshold_rule(
            detector, train, n_candidates=15,
            rng=np.random.default_rng(5), scores_per_unit=scores,
        )
        b = search_threshold_rule(
            detector, train, n_candidates=15,
            rng=np.random.default_rng(5), scores_per_unit=scores,
        )
        assert a.rule == b.rule

    def test_window_grid_too_large_rejected(self, tiny_split):
        train, _ = tiny_split
        detector = FFTDetector()
        detector.fit(train)
        with pytest.raises(ValueError):
            search_threshold_rule(detector, train, window_grid=[10_000])

    def test_evaluate_rule_scores(self, tiny_split):
        train, _ = tiny_split
        detector = FFTDetector()
        detector.fit(train)
        scores = detector.score_dataset(train)
        result = search_threshold_rule(
            detector, train, n_candidates=30,
            rng=np.random.default_rng(1), scores_per_unit=scores,
        )
        replay = evaluate_rule(result.rule, scores, train)
        assert replay.f_measure == pytest.approx(result.train_f_measure)


class TestRunner:
    def test_baseline_trial_fields(self, tiny_split):
        train, test = tiny_split
        trial = run_baseline_trial(
            FFTDetector(), train, test,
            rng=np.random.default_rng(0), n_candidates=15,
        )
        assert trial.method == "FFT"
        assert trial.train_seconds > 0
        assert trial.window_size >= 20

    def test_dbcatcher_trial(self, tiny_split):
        train, test = tiny_split
        trial = run_dbcatcher_trial(
            default_config(), train, test,
            learner=GeneticThresholdLearner(population_size=4, n_iterations=2,
                                            seed=0),
        )
        assert trial.method == "DBCatcher"
        assert trial.window_size >= default_config().initial_window - 1e-9
        assert 0.0 <= trial.scores.f_measure <= 1.0

    def test_repeat_and_summarize(self):
        def trial(rng):
            f = float(rng.uniform(0.4, 0.6))
            return TrialResult(
                method="stub",
                scores=DetectionScores(precision=f, recall=f, f_measure=f),
                window_size=20.0,
                train_seconds=1.0,
            )

        results = repeat(trial, n_trials=5, seed=0)
        summary = summarize(results)
        assert summary.n_trials == 5
        assert summary.minimum.f_measure <= summary.mean.f_measure
        assert summary.mean.f_measure <= summary.maximum.f_measure

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTables:
    @pytest.fixture
    def summaries(self):
        scores = DetectionScores(precision=0.8, recall=0.7, f_measure=0.75)
        summary = MethodSummary(
            method="DBCatcher", mean=scores, minimum=scores, maximum=scores,
            window_size=20.0, train_seconds=12.5, n_trials=3,
        )
        return {"Tencent": [summary], "Sysbench": [summary]}

    def test_render_table_alignment(self):
        text = render_table(["A", "Blong"], [[1, 2.5], ["xy", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Blong" in lines[1]
        assert len(lines) == 5

    def test_render_table_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["A"], [[1, 2]])

    def test_performance_figure(self, summaries):
        text = render_performance_figure(summaries, "Figure 8")
        assert "Figure 8" in text
        assert "DBCatcher" in text
        assert "75.0" in text

    def test_window_table(self, summaries):
        text = render_window_table(summaries, "Table V")
        assert "Tencent" in text and "Sysbench" in text
        assert "20" in text

    def test_timing_table(self, summaries):
        text = render_timing_table(summaries, "Table VI")
        assert "12.5" in text
